"""Exception hierarchy for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ShapeError(ReproError, ValueError):
    """An array or matrix has an incompatible shape."""


class NonConvexError(ReproError, ValueError):
    """The quadratic objective matrix is not positive semi-definite."""


class FactorizationError(ReproError, ArithmeticError):
    """A matrix factorization broke down (e.g. zero pivot in LDL^T)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative method failed to converge within its iteration budget."""


class EncodingError(ReproError, ValueError):
    """A sparsity string or MAC-structure description is malformed."""


class ScheduleError(ReproError, RuntimeError):
    """The pack scheduler produced an inconsistent schedule."""


class SimulationError(ReproError, RuntimeError):
    """The hardware simulator reached an invalid machine state."""


class FaultDetectedError(ReproError, RuntimeError):
    """A solve was detected as corrupted by an injected (or real) fault.

    Raised when recovery inside the accelerator is exhausted (rollback
    budget spent) or a host-side solution check rejects a returned
    iterate. Carries the injector's fault ``events`` so callers can
    account every injected fault even on the failure path.
    """

    def __init__(self, message: str, events=()):
        super().__init__(message)
        self.events = tuple(events)


class DeadlineExceededError(ReproError, TimeoutError):
    """A solve overran its per-request deadline (cooperative check)."""


class ShmIntegrityError(ReproError, RuntimeError):
    """A shared-memory artifact segment failed its integrity check.

    Raised by :mod:`repro.serving.shm_store` when a segment's header is
    malformed (bad magic/version), its publish generation does not match
    the reference the reader was handed (torn or stale publish), or the
    payload's blake2b digest disagrees with the header (bit rot, partial
    write, or injected ``shm-corrupt`` fault). A segment that raises
    this is quarantined and rebuilt from the cold path — never served.
    ``reason`` is a stable short code (``"magic"``, ``"version"``,
    ``"generation"``, ``"length"``, ``"checksum"``, ``"missing"``).
    """

    def __init__(self, message: str, reason: str = "checksum"):
        super().__init__(message)
        self.reason = reason


class ShardCrashedError(ReproError, RuntimeError):
    """A worker shard died (crash/SIGKILL/stall-kill) with this request
    in flight and the request could not be retried or degraded."""


class VerificationError(ReproError, RuntimeError):
    """A static verification pass rejected an artifact.

    Carries the full :class:`repro.verify.VerificationReport` on
    ``report`` so callers (serving / fleet guards) can surface the
    individual diagnostics instead of a bare message.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report
