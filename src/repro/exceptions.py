"""Exception hierarchy for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ShapeError(ReproError, ValueError):
    """An array or matrix has an incompatible shape."""


class NonConvexError(ReproError, ValueError):
    """The quadratic objective matrix is not positive semi-definite."""


class FactorizationError(ReproError, ArithmeticError):
    """A matrix factorization broke down (e.g. zero pivot in LDL^T)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative method failed to converge within its iteration budget."""


class EncodingError(ReproError, ValueError):
    """A sparsity string or MAC-structure description is malformed."""


class ScheduleError(ReproError, RuntimeError):
    """The pack scheduler produced an inconsistent schedule."""


class SimulationError(ReproError, RuntimeError):
    """The hardware simulator reached an invalid machine state."""
