"""Static verification of RSQP artifacts (programs, schedules, CVBs).

Three passes over statically decidable invariants, with a shared
diagnostic vocabulary and pre-execution guard entry points:

* :func:`verify_program` — CFG walk of an ISA program: def-before-use,
  ScalarOp/VectorOp arity, loop-exit reachability, unreachable code,
  and RAW hazards inside the compiled backend's fusion windows;
* :func:`verify_schedule` / :func:`verify_cvb` /
  :func:`verify_customization` — re-derive the pack/lane/bank
  invariants and the E_p/E_c -> eta bookkeeping from the schedule and
  CVB layout alone;
* :func:`program_bounds` / :func:`verify_compiled` — static per-block
  min/max cycle bounds and a cross-check of the compiled program's
  cached analytic section costs, including the whole-loop fused tier's
  CT charge-table decomposition;
* :func:`verify_codegen` / :func:`ensure_codegen_verified` — the
  generated-C tier: lift every unit the compiled backends would fuse
  into effect IR and prove bounds/aliasing, write-set soundness,
  instruction-by-instruction expression equivalence, and cycle-charge
  consistency — statically, with no C toolchain required.

``python -m repro.verify`` runs every pass over compiler-emitted
programs and customizations for the problem suite — the CI gate.
Guards in :class:`~repro.hw.RSQPAccelerator`,
:func:`~repro.serving.pool.solve_job` and the fleet dispatch path call
:func:`ensure_artifact_verified` so malformed artifacts are rejected
with structured diagnostics before they reach an accelerator.
"""

from .artifact import (ensure_artifact_verified, verify_artifact,
                       verify_compiled_program)
from .batch import ensure_batch_verified, verify_batch
from .codegen import (codegen_report_for_artifact, ensure_codegen_verified,
                      verify_codegen, verify_effect_ir)
from .cycles import (CycleBounds, block_bounds, loop_charge_slots,
                     program_bounds, verify_compiled)
from .diagnostics import (DIAGNOSTIC_CODES, Diagnostic, Location, Severity,
                          VerificationReport, diagnostics_table)
from .program import (ProgramContract, accelerator_contract,
                      contract_for_algorithm, pdqp_contract,
                      verify_program)
from .schedule_check import (verify_customization, verify_cvb,
                             verify_matrix, verify_schedule)

__all__ = [
    "Severity",
    "Location",
    "Diagnostic",
    "VerificationReport",
    "ProgramContract",
    "accelerator_contract",
    "pdqp_contract",
    "contract_for_algorithm",
    "verify_program",
    "verify_schedule",
    "verify_cvb",
    "verify_matrix",
    "verify_customization",
    "CycleBounds",
    "block_bounds",
    "program_bounds",
    "verify_compiled",
    "verify_compiled_program",
    "verify_artifact",
    "ensure_artifact_verified",
    "verify_batch",
    "ensure_batch_verified",
    "verify_effect_ir",
    "verify_codegen",
    "ensure_codegen_verified",
    "codegen_report_for_artifact",
    "loop_charge_slots",
    "DIAGNOSTIC_CODES",
    "diagnostics_table",
]
