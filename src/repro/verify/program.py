"""Pass 1: static verification of RSQP ISA programs.

The verifier walks the structured program (a straight-line prologue
plus a loop nest, the same shape the interpreter executes) and checks,
without running anything:

* **def-before-use** — every scalar register, vector buffer, and CVB
  bank is written before it is read, starting from the host's download
  contract (which HBM vectors and scalar registers the host provides);
* **ScalarOp arity** — binary ops carry ``src2``, unary ops don't.
  Construction already validates this, but decoded or mutated
  artifacts bypass ``__post_init__``, so the invariant is re-checked
  on the artifact itself;
* **loop-exit reachability** — a ``Control`` must sit inside a loop;
  a loop should contain one (else it can only terminate by exhausting
  ``max_iter``); and the exit condition should be recomputed inside
  the loop body (a loop-invariant condition either fires on iteration
  one or never);
* **unreachable code** — loops with ``max_iter < 1`` never run their
  bodies;
* **fusion RAW hazards** — inside each fusion window (the maximal runs
  of chunkable instructions that :mod:`repro.hw.compiled` fuses into
  one C call), an ``SpMV`` must not read a CVB bank that is only
  duplicated *later* in the window: on a first iteration the bank is
  missing (interpreter crash), on later iterations the SpMV silently
  consumes the previous iteration's stale duplicate.

Loop bodies are analyzed against their *first-iteration* entry state,
the conservative choice: anything a later iteration could rely on must
already be defined on the first trip. Definitions that survive a loop
are those made before the loop's first ``Control`` — the earliest
point an iteration can exit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.isa import (BINARY_SCALAR_OPS, Control, DataTransfer, Loop,
                      Program, ScalarOp, SpMV, VecDup, VectorOp,
                      VectorOpKind)
from .diagnostics import Location, VerificationReport

__all__ = ["ProgramContract", "accelerator_contract", "verify_program"]

#: Required source counts per vector op (the machine indexes srcs).
_VECTOR_ARITY = {
    VectorOpKind.AXPBY: 2,
    VectorOpKind.EWMUL: 2,
    VectorOpKind.CLIP: 3,
    VectorOpKind.DOT: 2,
    VectorOpKind.COPY: 1,
    VectorOpKind.SCALE_ADD: 2,
}

#: Vector ops the compiled backend may pull into a fusion window
#: (mirror of ``repro.hw.compiled._CHUNKABLE_VECTOR_OPS``).
_CHUNKABLE_VECTOR_OPS = frozenset({
    VectorOpKind.AXPBY, VectorOpKind.EWMUL, VectorOpKind.SCALE_ADD,
    VectorOpKind.COPY, VectorOpKind.DOT,
})


@dataclass(frozen=True)
class ProgramContract:
    """What the host provides before the program starts.

    ``hbm``
        Vector names resident in HBM when execution begins (the host
        download).
    ``scalars``
        Scalar registers the host initializes.
    ``matrices``
        Streamed-matrix names; each owns a CVB bank group and may be
        named by ``SpMV``/``VecDup``.
    """

    hbm: frozenset = frozenset()
    scalars: frozenset = frozenset()
    matrices: frozenset = frozenset()


def accelerator_contract() -> ProgramContract:
    """The download contract of :class:`repro.hw.RSQPAccelerator`.

    Mirrors ``RSQPAccelerator._download`` — the vectors written to HBM
    and the scalar registers set before the program runs.
    """
    return ProgramContract(
        hbm=frozenset({"q", "l", "u", "rho", "rho_inv", "minv",
                       "x", "z", "y"}),
        scalars=frozenset({"sigma", "alpha_relax", "one_m_alpha",
                           "eps_rel", "eps_abs_m", "eps_abs_n",
                           "nq", "one", "tiny", "pcg_eps2"}),
        matrices=frozenset({"P", "A", "At"}),
    )


def pdqp_contract() -> ProgramContract:
    """The download contract of :class:`repro.hw.PDQPAccelerator`.

    Mirrors ``PDQPAccelerator._download`` — no KKT-derived vectors
    (``rho``/``minv``), instead the Halpern anchors ``x0``/``y0`` and
    the PDHG step-size scalar registers.
    """
    return ProgramContract(
        hbm=frozenset({"q", "l", "u", "x", "y", "x0", "y0"}),
        scalars=frozenset({"neg_tau", "sigma", "sigma_inv", "neg_sigma",
                           "hk", "one", "eps_rel", "eps_abs_m",
                           "eps_abs_n", "nq"}),
        matrices=frozenset({"P", "A", "At"}),
    )


def contract_for_algorithm(algorithm: str) -> ProgramContract:
    """Pick the host download contract by algorithm name."""
    if algorithm == "pdqp":
        return pdqp_contract()
    return accelerator_contract()


@dataclass
class _State:
    """Definedness environment at one program point."""

    scalars: set
    vb: set
    cvb: set
    hbm: set

    def copy(self) -> "_State":
        return _State(set(self.scalars), set(self.vb), set(self.cvb),
                      set(self.hbm))

    def vec_defined(self, name: str) -> bool:
        """Matches ``Machine._vector``: VB first, then CVB."""
        return name in self.vb or name in self.cvb


class _ProgramChecker:
    def __init__(self, contract: ProgramContract,
                 artifact: str) -> None:
        self.contract = contract
        self.artifact = artifact
        self.report = VerificationReport(subject=artifact,
                                         passes=["program"])

    # -- helpers --------------------------------------------------------
    def _loc(self, path: str, instr: object = None) -> Location:
        return Location(self.artifact, path,
                        getattr(instr, "site", None))

    def _read_scalar(self, ref: object, state: _State, path: str,
                     instr: object, role: str) -> None:
        if not isinstance(ref, str):
            return  # numeric literal
        if ref not in state.scalars:
            self.report.error(
                "use-before-def",
                f"scalar register {ref!r} read as {role} before any "
                f"definition",
                self._loc(path, instr),
                hint="initialize the register in the host contract or "
                     "with an earlier ScalarOp/DOT")

    def _read_vector(self, name: str, state: _State, path: str,
                     instr: object, role: str) -> None:
        if not state.vec_defined(name):
            self.report.error(
                "use-before-def",
                f"vector buffer {name!r} read as {role} before any "
                f"definition",
                self._loc(path, instr),
                hint="load the vector from HBM or compute it before "
                     "this instruction")

    # -- block walk -----------------------------------------------------
    def check_program(self, program: Program,
                      state: _State) -> VerificationReport:
        self._check_block(program.instructions, state, trail="",
                          loop_depth=0)
        self._scan_fusion_windows(program.instructions, trail="")
        return self.report

    def _check_block(self, items: list, state: _State, trail: str,
                     loop_depth: int) -> None:
        for index, item in enumerate(items):
            path = f"{trail}[{index}]"
            if isinstance(item, Loop):
                self._check_loop(item, state, path, loop_depth)
            else:
                self._check_instruction(item, state, path, loop_depth)

    def _check_loop(self, loop: Loop, state: _State, path: str,
                    loop_depth: int) -> None:
        trail = f"{path}.{loop.name}" if loop.name else path
        loc = Location(self.artifact, trail)
        if loop.max_iter < 1:
            self.report.warning(
                "unreachable-code",
                f"loop {loop.name!r} has max_iter={loop.max_iter}; its "
                f"body never executes",
                loc, hint="remove the loop or give it a positive bound")
            return  # body contributes nothing; don't analyze defs
        if not loop.body:
            self.report.warning(
                "empty-loop",
                f"loop {loop.name!r} has an empty body", loc)
            return

        controls = [it for it in loop.body if isinstance(it, Control)]
        if not controls:
            self.report.warning(
                "no-loop-exit",
                f"loop {loop.name!r} contains no Control at its own "
                f"level; it can only terminate by exhausting "
                f"max_iter={loop.max_iter}",
                loc, hint="add a Control exit test to the loop body")
        else:
            body_scalar_defs = _scalar_defs(loop.body)
            for control in controls:
                invariant = (control.reg not in body_scalar_defs
                             and (not isinstance(control.threshold_reg,
                                                 str)
                                  or control.threshold_reg
                                  not in body_scalar_defs))
                if invariant:
                    self.report.warning(
                        "static-exit-condition",
                        f"loop {loop.name!r} exit condition "
                        f"({control.reg!r} < "
                        f"{control.threshold_reg!r}) is never "
                        f"recomputed inside the loop; it either fires "
                        f"on the first iteration or never",
                        self._loc(path, control),
                        hint="recompute the residual register inside "
                             "the loop body")

        # Analyze the body against first-iteration entry state.
        body_state = state.copy()
        # Record defs visible after the earliest possible exit: those
        # made before the first same-level Control.
        guaranteed: _State | None = None
        for index, item in enumerate(loop.body):
            item_path = f"{trail}[{index}]"
            if guaranteed is None and isinstance(item, Control):
                guaranteed = body_state.copy()
            if isinstance(item, Loop):
                self._check_loop(item, body_state, item_path,
                                 loop_depth + 1)
            else:
                self._check_instruction(item, body_state, item_path,
                                        loop_depth + 1)
        if guaranteed is None:
            guaranteed = body_state  # no exit: full body always runs
        state.scalars |= guaranteed.scalars
        state.vb |= guaranteed.vb
        state.cvb |= guaranteed.cvb
        state.hbm |= guaranteed.hbm

    def _check_instruction(self, instr: object, state: _State, path: str,
                           loop_depth: int) -> None:
        if isinstance(instr, ScalarOp):
            self._check_scalar_op(instr, state, path)
        elif isinstance(instr, VectorOp):
            self._check_vector_op(instr, state, path)
        elif isinstance(instr, DataTransfer):
            self._check_transfer(instr, state, path)
        elif isinstance(instr, VecDup):
            self._check_vecdup(instr, state, path)
        elif isinstance(instr, SpMV):
            self._check_spmv(instr, state, path)
        elif isinstance(instr, Control):
            if loop_depth == 0:
                self.report.error(
                    "control-outside-loop",
                    "Control has no enclosing loop to exit",
                    self._loc(path, instr),
                    hint="wrap the exit test in a Loop")
            self._read_scalar(instr.reg, state, path, instr,
                              "exit-test value")
            self._read_scalar(instr.threshold_reg, state, path, instr,
                              "exit-test threshold")
        else:
            self.report.error(
                "unknown-instruction",
                f"unrecognized instruction {instr!r}",
                self._loc(path, instr))

    def _check_scalar_op(self, instr: ScalarOp, state: _State,
                         path: str) -> None:
        if instr.op in BINARY_SCALAR_OPS:
            if instr.src2 is None:
                self.report.error(
                    "scalar-arity",
                    f"binary scalar op {instr.op.value!r} is missing "
                    f"src2",
                    self._loc(path, instr),
                    hint="binary ops (add/sub/mul/div/max) take two "
                         "operands")
        elif instr.src2 is not None:
            self.report.error(
                "scalar-arity",
                f"unary scalar op {instr.op.value!r} carries a spurious "
                f"src2 ({instr.src2!r})",
                self._loc(path, instr),
                hint="unary ops (mov/sqrt) take a single operand")
        self._read_scalar(instr.src1, state, path, instr, "src1")
        if instr.src2 is not None:
            self._read_scalar(instr.src2, state, path, instr, "src2")
        state.scalars.add(instr.dst)

    def _check_vector_op(self, instr: VectorOp, state: _State,
                         path: str) -> None:
        expected = _VECTOR_ARITY.get(instr.op)
        if expected is None:
            self.report.error(
                "unknown-instruction",
                f"unknown vector op {instr.op!r}", self._loc(path, instr))
            return
        if len(instr.srcs) != expected:
            self.report.error(
                "vector-arity",
                f"vector op {instr.op.value!r} takes {expected} "
                f"source(s), got {len(instr.srcs)}",
                self._loc(path, instr))
        if instr.op is VectorOpKind.AXPBY and (instr.alpha is None
                                               or instr.beta is None):
            self.report.error(
                "missing-coefficient",
                "axpby requires both alpha and beta",
                self._loc(path, instr))
        if instr.op is VectorOpKind.SCALE_ADD and instr.alpha is None:
            self.report.error(
                "missing-coefficient",
                "scale_add requires alpha", self._loc(path, instr))
        for src in instr.srcs:
            self._read_vector(src, state, path, instr, "source")
        self._read_scalar(instr.alpha, state, path, instr, "alpha")
        self._read_scalar(instr.beta, state, path, instr, "beta")
        if instr.op is VectorOpKind.DOT:
            state.scalars.add(instr.dst)
        else:
            state.vb.add(instr.dst)

    def _check_transfer(self, instr: DataTransfer, state: _State,
                        path: str) -> None:
        if instr.direction == "load":
            if instr.name not in state.hbm:
                self.report.error(
                    "use-before-def",
                    f"load of HBM vector {instr.name!r} which the host "
                    f"contract does not provide and no store produced",
                    self._loc(path, instr),
                    hint="add the vector to the host download or store "
                         "it first")
            state.vb.add(instr.name)
        elif instr.direction == "store":
            self._read_vector(instr.name, state, path, instr,
                              "store source")
            state.hbm.add(instr.name)
        else:
            self.report.error(
                "bad-transfer-direction",
                f"transfer direction must be 'load' or 'store', got "
                f"{instr.direction!r}",
                self._loc(path, instr))

    def _check_vecdup(self, instr: VecDup, state: _State,
                      path: str) -> None:
        self._read_vector(instr.src, state, path, instr,
                          "duplication source")
        if instr.cvb not in self.contract.matrices:
            self.report.error(
                "unknown-cvb-bank",
                f"VecDup targets CVB bank {instr.cvb!r} but no streamed "
                f"matrix of that name exists (cycle cost is undefined)",
                self._loc(path, instr),
                hint=f"known banks: "
                     f"{sorted(self.contract.matrices)}")
        state.cvb.add(instr.cvb)

    def _check_spmv(self, instr: SpMV, state: _State, path: str) -> None:
        if instr.matrix not in self.contract.matrices:
            self.report.error(
                "unknown-matrix",
                f"SpMV names streamed matrix {instr.matrix!r} which the "
                f"machine does not hold",
                self._loc(path, instr),
                hint=f"known matrices: {sorted(self.contract.matrices)}")
        if instr.src in state.cvb:
            pass
        elif instr.src in state.vb:
            self.report.error(
                "spmv-src-not-in-cvb",
                f"SpMV source {instr.src!r} lives in the vector buffers; "
                f"the SpMV engine reads only CVB banks",
                self._loc(path, instr),
                hint="duplicate the vector into the bank with VecDup "
                     "first")
        else:
            self.report.error(
                "use-before-def",
                f"SpMV source bank {instr.src!r} read before any VecDup "
                f"populated it",
                self._loc(path, instr),
                hint="emit VecDup into the bank before the SpMV")
        state.vb.add(instr.dst)

    # -- fusion-window hazard scan --------------------------------------
    def _scan_fusion_windows(self, items: list, trail: str) -> None:
        run: list = []  # (index, instr) pairs of the current window
        for index, item in enumerate(items):
            if isinstance(item, Loop):
                self._flush_window(run, trail)
                run = []
                self._scan_fusion_windows(
                    item.body,
                    f"{trail}[{index}].{item.name}" if item.name
                    else f"{trail}[{index}]")
            elif self._window_candidate(item):
                run.append((index, item))
            else:
                self._flush_window(run, trail)
                run = []
        self._flush_window(run, trail)

    def _window_candidate(self, instr: object) -> bool:
        """Conservative mirror of ``repro.hw.compiled._chunkable``.

        SpMV fusability depends on whether the C kernel compiled in this
        environment; assume it did (the superset), so hazards are
        flagged regardless of which backend will run the program.
        """
        if isinstance(instr, VecDup):
            return True
        if isinstance(instr, VectorOp):
            return instr.op in _CHUNKABLE_VECTOR_OPS
        if isinstance(instr, SpMV):
            return instr.matrix in self.contract.matrices
        return False

    def _flush_window(self, run: list, trail: str) -> None:
        if len(run) < 2:
            return  # the backend only fuses runs of >= 2
        dup_positions: dict[str, list[int]] = {}
        for pos, (_, instr) in enumerate(run):
            if isinstance(instr, VecDup):
                dup_positions.setdefault(instr.cvb, []).append(pos)
        for pos, (index, instr) in enumerate(run):
            if not isinstance(instr, SpMV):
                continue
            positions = dup_positions.get(instr.src, [])
            written_before = any(p < pos for p in positions)
            written_after = any(p > pos for p in positions)
            if written_after and not written_before:
                self.report.error(
                    "fusion-raw-hazard",
                    f"SpMV reads CVB bank {instr.src!r} before the "
                    f"VecDup that populates it in the same fusion "
                    f"window; the multiply would consume a stale "
                    f"duplicate from a previous iteration (or crash "
                    f"on the first)",
                    self._loc(f"{trail}[{index}]", instr),
                    hint="move the VecDup ahead of the SpMV")

    # ------------------------------------------------------------------


def _scalar_defs(items: list) -> set:
    """All scalar registers written anywhere inside ``items``."""
    defs: set = set()
    for item in items:
        if isinstance(item, Loop):
            defs |= _scalar_defs(item.body)
        elif isinstance(item, ScalarOp):
            defs.add(item.dst)
        elif (isinstance(item, VectorOp)
              and item.op is VectorOpKind.DOT):
            defs.add(item.dst)
    return defs


def verify_program(program: Program,
                   contract: ProgramContract | None = None,
                   *, artifact: str = "program") -> VerificationReport:
    """Statically verify an ISA program against a host contract.

    Returns a :class:`VerificationReport`; the program is safe to
    execute (under this contract) when ``report.ok``.
    """
    if contract is None:
        contract = accelerator_contract()
    checker = _ProgramChecker(contract, artifact)
    state = _State(scalars=set(contract.scalars), vb=set(),
                   cvb=set(), hbm=set(contract.hbm))
    return checker.check_program(program, state)
