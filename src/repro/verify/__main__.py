"""CLI gate: statically verify suite artifacts end to end.

For every problem in the (bounded) benchmark suite this builds the
full serving artifact — customization search, schedules, CVB layouts,
compiled program — and runs every pass in :mod:`repro.verify` over it.
Optionally also verifies the paper's baseline (structure-oblivious)
customization. Exit status 1 when any artifact produces an
ERROR-severity diagnostic, so CI can run this as a gate::

    python -m repro.verify --count 2
    python -m repro.verify --families control,lasso --count 1 --baseline
    python -m repro.verify --c 8 --show info
    python -m repro.verify --codegen --count 2
    python -m repro.verify --codes

``--codegen`` additionally lifts every generated-C unit (solo chunk,
whole-loop, and lane-minor batch tiers) of each artifact's program —
for the default ADMM program *and* a PDQP build of the same problem —
and runs the effect-IR analyses of :mod:`repro.verify.codegen` over
them. ``--codes`` prints the registered diagnostic-code table and
exits (used by the docs drift test).
"""

from __future__ import annotations

import argparse
import time

from ..customization import baseline_customization
from ..experiments.runner import choose_width
from ..problems import FAMILIES, benchmark_suite
from ..serving.arch_cache import build_artifact
from .artifact import verify_artifact
from .codegen import codegen_report_for_artifact
from .diagnostics import Severity, VerificationReport, diagnostics_table
from .schedule_check import verify_customization

_SHOW = {"error": Severity.ERROR, "warning": Severity.WARNING,
         "info": Severity.INFO}


def _print_report(report: VerificationReport, threshold: Severity) -> None:
    for diag in report.diagnostics:
        if diag.severity >= threshold:
            print(f"  {diag.render()}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Statically verify compiler-emitted programs, SpMV "
                    "schedules and CVB layouts for the problem suite.")
    parser.add_argument("--families", default=None,
                        help="comma-separated subset (default: all six; "
                             f"available: {','.join(sorted(FAMILIES))})")
    parser.add_argument("--count", type=int, default=2,
                        help="instances per family (default 2; the full "
                             "suite is 20)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="size multiplier on the suite instances")
    parser.add_argument("--c", type=int, default=None,
                        help="datapath width (default: auto by nnz)")
    parser.add_argument("--baseline", action="store_true",
                        help="also verify the structure-oblivious "
                             "baseline customization per problem")
    parser.add_argument("--show", choices=sorted(_SHOW),
                        default="warning",
                        help="minimum severity to print (default "
                             "warning; errors always count toward the "
                             "exit status)")
    parser.add_argument("--codegen", action="store_true",
                        help="also lift and verify the generated-C tier "
                             "(effect-IR bounds/write-set/equivalence/"
                             "cycle analyses) for ADMM and PDQP builds "
                             "of every suite problem")
    parser.add_argument("--batch", type=int, default=2,
                        help="batch width for the --codegen lane-minor "
                             "tier (default 2)")
    parser.add_argument("--codes", action="store_true",
                        help="print the diagnostic-code table and exit")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    if args.codes:
        print(diagnostics_table())
        return 0

    families = None
    if args.families:
        families = [f.strip() for f in args.families.split(",")
                    if f.strip()]
        unknown = sorted(set(families) - set(FAMILIES))
        if unknown:
            parser.error(f"unknown families {', '.join(unknown)} "
                         f"(available: {','.join(sorted(FAMILIES))})")

    threshold = _SHOW[args.show]
    entries = list(benchmark_suite(scale=args.scale, seed=args.seed,
                                   families=families, count=args.count))
    print(f"verifying {len(entries)} suite artifact(s)"
          f"{' + baselines' if args.baseline else ''} ...")
    t0 = time.perf_counter()
    total_errors = total_warnings = 0
    for entry in entries:
        c = args.c if args.c is not None else choose_width(entry.problem.nnz)
        artifact = build_artifact(entry.problem, c)
        report = verify_artifact(artifact)
        if args.baseline:
            base = baseline_customization(entry.problem, c)
            report.extend(verify_customization(base))
        if args.codegen:
            report.extend(codegen_report_for_artifact(
                artifact, entry.problem, batch=args.batch))
            pdqp = build_artifact(entry.problem, c, algorithm="pdqp")
            report.extend(codegen_report_for_artifact(
                pdqp, entry.problem, batch=args.batch))
        n_err, n_warn = len(report.errors), len(report.warnings)
        total_errors += n_err
        total_warnings += n_warn
        status = "FAIL" if n_err else "ok"
        arch = artifact.customization.architecture
        print(f"{entry.name:<16s} C={c:<3d} arch={arch} "
              f"eta={artifact.customization.eta:.3f} "
              f"[{status}: {n_err} error(s), {n_warn} warning(s)]")
        _print_report(report, threshold)
    elapsed = time.perf_counter() - t0
    print(f"\n{len(entries)} artifact(s) verified in {elapsed:.1f} s: "
          f"{total_errors} error(s), {total_warnings} warning(s)")
    return 1 if total_errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
