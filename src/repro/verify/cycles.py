"""Pass 3: static cycle bounds and cost-model cross-checking.

Every RSQP instruction has a state-independent cycle cost (a function
of vector lengths, schedule pack counts and CVB depths only), so a
whole program has computable min/max cycle bounds:

* a straight-line block costs the fixed sum of its instructions;
* a loop's **minimum** is one trip that exits at its first ``Control``
  (the earliest legal exit — everything before the Control, plus the
  Control's own test cycle, did execute);
* a loop's **maximum** is ``max_iter`` full-body trips, with nested
  loops at their own maxima.

The bounds bracket the interpreter's dynamic count for *any* input —
the property the differential tests assert against
:class:`~repro.hw.machine.ExecutionStats` — and
:func:`verify_compiled` additionally recomputes the per-section
analytic costs that ``charge_block``/``estimate_cycles`` rely on,
flagging a :class:`~repro.hw.compiler.CompiledProgram` whose cached
section cycles disagree with its own instruction stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.compiler import CompiledProgram, StaticCostContext
from ..hw.isa import Control, Loop, Program
from .diagnostics import Location, VerificationReport

__all__ = ["CycleBounds", "block_bounds", "program_bounds",
           "verify_compiled"]

#: The sections every compiled OSQP program carries (see
#: ``repro.hw.compiler.compile_osqp_program``).
#: Section names an ADMM program must carry; other algorithms declare
#: their own tables and are checked against ``expected_sections``.
_SECTIONS = ("prologue", "admm_body", "pcg_body", "epilogue")


def expected_sections(compiled: CompiledProgram) -> tuple:
    """Required section names for a compiled program's algorithm."""
    if getattr(compiled, "algorithm", "admm") == "pdqp":
        return ("prologue", "pdhg_body", "epilogue")
    return _SECTIONS


@dataclass(frozen=True)
class CycleBounds:
    """Inclusive static bounds on a block's total cycle count."""

    min_cycles: int
    max_cycles: int

    def contains(self, cycles: int) -> bool:
        return self.min_cycles <= cycles <= self.max_cycles


def block_bounds(items: list, context: StaticCostContext) -> CycleBounds:
    """Min/max cycles of a block (instructions + loop nests)."""
    lo = 0
    hi = 0
    for item in items:
        if isinstance(item, Loop):
            inner = _loop_bounds(item, context)
            lo += inner.min_cycles
            hi += inner.max_cycles
        else:
            cost = int(item.cycles(context))
            lo += cost
            hi += cost
    return CycleBounds(lo, hi)


def _loop_bounds(loop: Loop, context: StaticCostContext) -> CycleBounds:
    if loop.max_iter < 1 or not loop.body:
        return CycleBounds(0, 0)
    full = block_bounds(loop.body, context)
    # Earliest exit: the prefix up to and including the first Control
    # at this level, nested loops at their own minima.
    first_control = next((i for i, it in enumerate(loop.body)
                          if isinstance(it, Control)), None)
    if first_control is None:
        min_trip = full.min_cycles
    else:
        min_trip = block_bounds(loop.body[:first_control + 1],
                                context).min_cycles
    return CycleBounds(min_trip, loop.max_iter * full.max_cycles)


def program_bounds(program: Program,
                   context: StaticCostContext) -> CycleBounds:
    """Static cycle bounds for a whole program under a cost context."""
    return block_bounds(program.instructions, context)


def _section_cost(items: list, context: StaticCostContext) -> int:
    """Fixed cost of a section, skipping nested loops (costed apart) —
    mirrors ``repro.hw.compiler._section_cycles``."""
    return sum(int(item.cycles(context)) for item in items
               if not isinstance(item, Loop))


def verify_compiled(compiled: CompiledProgram) -> VerificationReport:
    """Cross-check a compiled program's cached analytic costs.

    Recomputes each section's fixed cycle count from the instruction
    stream and the cost context; a mismatch means ``estimate_cycles``
    (and the compiled backend's ``charge_block`` accounting seeded from
    it) would mis-report performance.
    """
    report = VerificationReport(subject="cycles", passes=["cycles"])
    sections = getattr(compiled, "_sections", None)
    if not sections:
        report.error(
            "missing-sections",
            "compiled program carries no section table; per-section "
            "costs cannot be recomputed",
            Location("cycles"))
        return report
    claimed = dict(getattr(compiled, "section_cycles", None) or {
        "prologue": compiled.prologue_cycles,
        "admm_body": compiled.admm_body_cycles,
        "pcg_body": compiled.pcg_body_cycles,
        "epilogue": compiled.epilogue_cycles,
    })
    for name in expected_sections(compiled):
        if name not in sections:
            report.error(
                "missing-sections",
                f"compiled program's section table lacks {name!r}",
                Location("cycles", name))
            continue
        recomputed = _section_cost(sections[name], compiled.context)
        if recomputed != claimed.get(name, 0):
            report.error(
                "cycle-cost-mismatch",
                f"section {name!r} sums to {recomputed} cycles but the "
                f"compiled program claims {claimed.get(name, 0)}; "
                f"estimate_cycles would be wrong by the difference",
                Location("cycles", name),
                hint="re-run attach_costs after changing the program "
                     "or its cost context")
    return report
