"""Pass 3: static cycle bounds and cost-model cross-checking.

Every RSQP instruction has a state-independent cycle cost (a function
of vector lengths, schedule pack counts and CVB depths only), so a
whole program has computable min/max cycle bounds:

* a straight-line block costs the fixed sum of its instructions;
* a loop's **minimum** is one trip that exits at its first ``Control``
  (the earliest legal exit — everything before the Control, plus the
  Control's own test cycle, did execute);
* a loop's **maximum** is ``max_iter`` full-body trips, with nested
  loops at their own maxima.

The bounds bracket the interpreter's dynamic count for *any* input —
the property the differential tests assert against
:class:`~repro.hw.machine.ExecutionStats` — and
:func:`verify_compiled` additionally recomputes the per-section
analytic costs that ``charge_block``/``estimate_cycles`` rely on,
flagging a :class:`~repro.hw.compiler.CompiledProgram` whose cached
section cycles disagree with its own instruction stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.compiler import CompiledProgram, StaticCostContext
from ..hw.isa import Control, Loop, Program
from .diagnostics import Location, VerificationReport

__all__ = ["CycleBounds", "block_bounds", "program_bounds",
           "loop_charge_slots", "verify_compiled"]

#: The sections every compiled OSQP program carries (see
#: ``repro.hw.compiler.compile_osqp_program``).
#: Section names an ADMM program must carry; other algorithms declare
#: their own tables and are checked against ``expected_sections``.
_SECTIONS = ("prologue", "admm_body", "pcg_body", "epilogue")


def expected_sections(compiled: CompiledProgram) -> tuple:
    """Required section names for a compiled program's algorithm."""
    if getattr(compiled, "algorithm", "admm") == "pdqp":
        return ("prologue", "pdhg_body", "epilogue")
    return _SECTIONS


@dataclass(frozen=True)
class CycleBounds:
    """Inclusive static bounds on a block's total cycle count."""

    min_cycles: int
    max_cycles: int

    def contains(self, cycles: int) -> bool:
        return self.min_cycles <= cycles <= self.max_cycles


def block_bounds(items: list, context: StaticCostContext) -> CycleBounds:
    """Min/max cycles of a block (instructions + loop nests)."""
    lo = 0
    hi = 0
    for item in items:
        if isinstance(item, Loop):
            inner = _loop_bounds(item, context)
            lo += inner.min_cycles
            hi += inner.max_cycles
        else:
            cost = int(item.cycles(context))
            lo += cost
            hi += cost
    return CycleBounds(lo, hi)


def _loop_bounds(loop: Loop, context: StaticCostContext) -> CycleBounds:
    if loop.max_iter < 1 or not loop.body:
        return CycleBounds(0, 0)
    full = block_bounds(loop.body, context)
    # Earliest exit: the prefix up to and including the first Control
    # at this level, nested loops at their own minima.
    first_control = next((i for i, it in enumerate(loop.body)
                          if isinstance(it, Control)), None)
    if first_control is None:
        min_trip = full.min_cycles
    else:
        min_trip = block_bounds(loop.body[:first_control + 1],
                                context).min_cycles
    return CycleBounds(min_trip, loop.max_iter * full.max_cycles)


def program_bounds(program: Program,
                   context: StaticCostContext) -> CycleBounds:
    """Static cycle bounds for a whole program under a cost context."""
    return block_bounds(program.instructions, context)


def _section_cost(items: list, context: StaticCostContext) -> int:
    """Fixed cost of a section, skipping nested loops (costed apart) —
    mirrors ``repro.hw.compiler._section_cycles``."""
    return sum(int(item.cycles(context)) for item in items
               if not isinstance(item, Loop))


def loop_charge_slots(items: list, context,
                      _depth: int = 0) -> list:
    """Static charge-slot decomposition of a fused loop body.

    Mirrors exactly how ``repro.hw.compiled._LoopBuilder`` assigns
    ``CT`` charge slots when it fuses a whole loop body into one C
    function: maximal straight-line runs get one slot each (flushed at
    every ``Control``/``Loop`` boundary), a ``Control`` gets its own
    one-cycle slot, and a nested ``Loop`` contributes no slot itself —
    its body's slots follow inline. Returns flat, emission-ordered
    ``(cycles, by_class, n_instructions, depth)`` tuples; the first
    three fields match the builder's charge table entry for the same
    slot, so :mod:`repro.verify.codegen` compares them directly, and
    ``verify_compiled`` reconciles the depth-0 mass against the
    per-section analytic costs.

    ``context`` is any machine-like cost context (a
    :class:`~repro.hw.compiler.StaticCostContext` or a live machine).
    """
    slots: list = []

    def flush(run: list) -> None:
        if not run:
            return
        cycles = 0
        by_class: dict = {}
        for instr in run:
            kind = type(instr).__name__
            c = int(instr.cycles(context))
            cycles += c
            by_class[kind] = by_class.get(kind, 0) + c
        slots.append((cycles, by_class, len(run), _depth))

    run: list = []
    for item in items:
        if isinstance(item, (Loop, Control)):
            flush(run)
            run = []
            if isinstance(item, Control):
                slots.append((int(item.cycles(context)),
                              {"Control": int(item.cycles(context))},
                              1, _depth))
            else:
                slots.extend(loop_charge_slots(item.body, context,
                                               _depth + 1))
        else:
            run.append(item)
    flush(run)
    return slots


def _charged_trip_max(items: list, context) -> int:
    """Max cycles of one body trip, aggregated from the charge-slot
    view (nested loops at ``max_iter`` full trips)."""
    slots = loop_charge_slots(items, context)
    total = sum(c for c, _bc, _n, d in slots if d == 0)
    for item in items:
        if isinstance(item, Loop) and item.max_iter >= 1 and item.body:
            total += item.max_iter * _charged_trip_max(item.body,
                                                      context)
    return total


def _collect_loops(items: list, out: dict) -> None:
    for item in items:
        if isinstance(item, Loop):
            out[item.name] = item
            _collect_loops(item.body, out)


def verify_compiled(compiled: CompiledProgram) -> VerificationReport:
    """Cross-check a compiled program's cached analytic costs.

    Recomputes each section's fixed cycle count from the instruction
    stream and the cost context; a mismatch means ``estimate_cycles``
    (and the compiled backend's ``charge_block`` accounting seeded from
    it) would mis-report performance.
    """
    report = VerificationReport(subject="cycles", passes=["cycles"])
    sections = getattr(compiled, "_sections", None)
    if not sections:
        report.error(
            "missing-sections",
            "compiled program carries no section table; per-section "
            "costs cannot be recomputed",
            Location("cycles"))
        return report
    claimed = dict(getattr(compiled, "section_cycles", None) or {
        "prologue": compiled.prologue_cycles,
        "admm_body": compiled.admm_body_cycles,
        "pcg_body": compiled.pcg_body_cycles,
        "epilogue": compiled.epilogue_cycles,
    })
    for name in expected_sections(compiled):
        if name not in sections:
            report.error(
                "missing-sections",
                f"compiled program's section table lacks {name!r}",
                Location("cycles", name))
            continue
        recomputed = _section_cost(sections[name], compiled.context)
        if recomputed != claimed.get(name, 0):
            report.error(
                "cycle-cost-mismatch",
                f"section {name!r} sums to {recomputed} cycles but the "
                f"compiled program claims {claimed.get(name, 0)}; "
                f"estimate_cycles would be wrong by the difference",
                Location("cycles", name),
                hint="re-run attach_costs after changing the program "
                     "or its cost context")
    _verify_fused_sections(compiled, report, sections, claimed)
    return report


def _verify_fused_sections(compiled: CompiledProgram,
                           report: VerificationReport,
                           sections: dict, claimed: dict) -> None:
    """Reconcile the whole-loop-fused tier's analytic charges.

    The fused tier (``repro.hw.compiled._fuse_loop``) does not charge
    per section — it applies a static charge-slot table per loop body
    trip. Prove that table's decomposition consistent with the
    per-section costs ``estimate_cycles`` uses (depth-0 slot mass ==
    the loop section's claimed cycles) and with the
    :func:`program_bounds` bracket (one full trip, aggregated from the
    charge view, == the body's static ``block_bounds`` maximum). A
    mismatch means the fused backend and the analytic model would
    report different performance for the same solve — the blind spot
    left when whole-loop fusion landed after this pass.
    """
    loops: dict = {}
    _collect_loops(compiled.program.instructions, loops)
    for loop_name, section in sorted(compiled.loop_sections.items()):
        loop = loops.get(loop_name)
        body = sections.get(section)
        if loop is None or body is None:
            continue  # expected_sections already flags missing tables
        slots = loop_charge_slots(loop.body, compiled.context)
        flat = sum(c for c, _bc, _n, d in slots if d == 0)
        if flat != claimed.get(section, 0):
            report.error(
                "fused-cycle-mismatch",
                f"loop {loop_name!r}: fused charge slots sum to {flat} "
                f"cycles per trip at depth 0 but section {section!r} "
                f"claims {claimed.get(section, 0)}; the fused tier and "
                f"estimate_cycles would disagree",
                Location("cycles", f"loop {loop_name}"),
                hint="the charge-slot decomposition must mirror "
                     "_LoopBuilder._flush_run exactly")
        charged = _charged_trip_max(loop.body, compiled.context)
        bracket = block_bounds(loop.body, compiled.context).max_cycles
        if charged != bracket:
            report.error(
                "fused-cycle-mismatch",
                f"loop {loop_name!r}: one full trip aggregates to "
                f"{charged} cycles from the charge-slot view but the "
                f"static bound brackets it at {bracket}",
                Location("cycles", f"loop {loop_name}"),
                hint="a nested loop or Control is charged differently "
                     "by the fused tier than by block_bounds")
        counted = sum(n for _c, _bc, n, _d in slots)
        expected = _count_chargeable(loop.body)
        if counted != expected:
            report.error(
                "fused-cycle-mismatch",
                f"loop {loop_name!r}: charge slots cover {counted} "
                f"instructions but the loop nest holds {expected}; "
                f"some instruction's cost would never be charged",
                Location("cycles", f"loop {loop_name}"))


def _count_chargeable(items: list) -> int:
    total = 0
    for item in items:
        if isinstance(item, Loop):
            total += _count_chargeable(item.body)
        else:
            total += 1
    return total
