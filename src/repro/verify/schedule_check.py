"""Pass 2: static verification of SpMV schedules and CVB layouts.

Everything here is re-derived from the artifacts alone — the
:class:`~repro.customization.scheduler.Schedule` (pack/slot lane
assignment) and the :class:`~repro.customization.cvb.CVBLayout`
(depth-row placement) — never trusted from their cached properties:

* every pack's structure is a member of the architecture's dictionary
  (a pack using a structure the MAC tree was not built with cannot be
  routed);
* slot lane ranges stay inside ``[0, C)``, respect their structure's
  segment layout, and never overlap — two overlapping slots would
  issue two reads on one bank in the same cycle;
* the schedule covers the encoded chunk stream exactly once, in
  stream order (the SpMV engine consumes matrix values sequentially);
* the CVB index translation is total (every requested element has a
  depth row) and no depth row holds two elements requested by the
  same bank — the single-read-port-per-bank constraint of MILP (5);
* the zero-padding ``E_p`` and duplication overhead ``E_c`` recomputed
  from the packs and the layout reproduce the claimed match score η
  through :func:`repro.customization.metric.match_score`.
"""

from __future__ import annotations

import numpy as np

from ..customization.cvb import CVBLayout, access_requests
from ..customization.customize import (MatrixCustomization,
                                       ProblemCustomization)
from ..customization.metric import match_score
from ..customization.scheduler import Schedule
from .diagnostics import Location, VerificationReport

__all__ = ["verify_schedule", "verify_cvb", "verify_matrix",
           "verify_customization"]

#: Tolerance for recomputed-vs-claimed match scores (pure float
#: arithmetic on both sides; anything beyond rounding noise is a bug).
_ETA_TOL = 1e-9


def verify_schedule(sched: Schedule,
                    *, artifact: str = "schedule"
                    ) -> VerificationReport:
    """Check a pack schedule against its encoding and architecture."""
    report = VerificationReport(subject=artifact, passes=["schedule"])
    encoding = sched.encoding
    architecture = sched.architecture
    c = architecture.c
    if encoding.c != c:
        report.error(
            "width-mismatch",
            f"encoding was built for C={encoding.c} but the "
            f"architecture has C={c}",
            Location(artifact))
        return report  # lane math below would be meaningless

    structures = set(architecture.structures)
    streamed: list = []
    for index, pack in enumerate(sched.packs):
        pack_loc = Location(artifact, f"pack {index}")
        if pack.structure not in structures:
            report.error(
                "dictionary-gap",
                f"pack uses structure {pack.structure.pattern!r} which "
                f"is not in the architecture's dictionary "
                f"{architecture}",
                pack_loc,
                hint="add the structure to S or re-schedule on this "
                     "architecture")
            # Slot geometry below still applies against the claimed
            # structure, so keep checking.
        segments = list(zip(pack.structure.lane_offsets,
                            pack.structure.capacities))
        segment_index = -1
        prev_end = 0
        for slot_no, slot in enumerate(pack.slots):
            loc = Location(artifact, f"pack {index}, slot {slot_no}")
            length = slot.chunk.length
            if slot.lane_start < 0 or slot.lane_start + length > c:
                report.error(
                    "lane-overflow",
                    f"slot occupies lanes [{slot.lane_start}, "
                    f"{slot.lane_start + length}) outside the C={c} "
                    f"datapath",
                    loc)
                continue
            if slot.lane_start < prev_end:
                report.error(
                    "bank-oversubscription",
                    f"slot lanes [{slot.lane_start}, "
                    f"{slot.lane_start + length}) overlap the previous "
                    f"slot (ends at lane {prev_end}); two reads would "
                    f"hit one bank in the same cycle",
                    loc,
                    hint="slots within a pack must occupy disjoint, "
                         "increasing lane ranges")
            prev_end = max(prev_end, slot.lane_start + length)
            if length > slot.capacity:
                report.error(
                    "slot-overflow",
                    f"chunk of {length} non-zeros exceeds the slot's "
                    f"segment capacity {slot.capacity}",
                    loc)
            # The slot must sit on one of the structure's segments, in
            # segment order (trailing/middle segments may be skipped —
            # they are fed zeros).
            placed = None
            for k in range(segment_index + 1, len(segments)):
                if segments[k] == (slot.lane_start, slot.capacity):
                    placed = k
                    break
            if placed is None:
                report.error(
                    "slot-structure-mismatch",
                    f"slot at lane {slot.lane_start} (capacity "
                    f"{slot.capacity}) does not correspond to any "
                    f"remaining segment of structure "
                    f"{pack.structure.pattern!r}",
                    loc,
                    hint="slots must use the structure's segment "
                         "offsets/capacities in order")
            else:
                segment_index = placed
            streamed.append(slot.chunk)

    chunks = list(encoding.chunks)
    if len(streamed) != len(chunks):
        report.error(
            "coverage-gap",
            f"schedule streams {len(streamed)} chunks but the encoding "
            f"has {len(chunks)}",
            Location(artifact),
            hint="every encoded chunk must be scheduled exactly once")
    else:
        for index, (got, want) in enumerate(zip(streamed, chunks)):
            if got is not want:
                report.error(
                    "stream-order",
                    f"chunk #{index} out of stream order (got the "
                    f"chunk of row {got.row}, expected row {want.row}); "
                    f"the SpMV engine consumes matrix values "
                    f"sequentially",
                    Location(artifact, f"chunk {index}"))
                break

    nnz_static = sum(chunk.length for chunk in chunks)
    if nnz_static != encoding.nnz:
        report.error(
            "nnz-mismatch",
            f"encoded chunks hold {nnz_static} non-zeros but the "
            f"encoding claims nnz={encoding.nnz}",
            Location(artifact))
    ep_static = c * len(sched.packs) - nnz_static
    if ep_static < 0:
        report.error(
            "negative-padding",
            f"recomputed E_p = {ep_static} < 0: the schedule claims to "
            f"stream more non-zeros than {len(sched.packs)} cycles can "
            f"carry at C={c}",
            Location(artifact))
    return report


def verify_cvb(sched: Schedule, layout: CVBLayout,
               *, artifact: str = "cvb") -> VerificationReport:
    """Check a CVB layout against the schedule's access requests."""
    report = VerificationReport(subject=artifact, passes=["cvb"])
    c = sched.architecture.c
    length = sched.encoding.vector_length
    if layout.requests.shape != (length, c):
        report.error(
            "request-shape",
            f"layout request matrix has shape {layout.requests.shape}, "
            f"expected ({length}, {c})",
            Location(artifact))
        return report

    derived = access_requests(sched)
    missing = derived & ~layout.requests
    if missing.any():
        j, k = (int(x[0]) for x in np.nonzero(missing))
        report.error(
            "translation-gap",
            f"the schedule reads vector element {j} on bank {k} but "
            f"the layout's request matrix never records it — the "
            f"index-translation map is not total",
            Location(artifact, f"element {j}, bank {k}"),
            hint="rebuild the layout from this schedule's "
                 "access_requests")

    location = np.asarray(layout.location)
    requested = np.flatnonzero(derived.any(axis=1))
    unplaced = requested[location[requested] < 0]
    if unplaced.size:
        j = int(unplaced[0])
        report.error(
            "translation-gap",
            f"requested vector element {j} has no CVB depth row "
            f"(location -1); an SpMV reading it would fetch garbage",
            Location(artifact, f"element {j}"),
            hint="every element the schedule requests needs a depth "
                 "row")

    too_deep = np.flatnonzero(location >= layout.depth)
    if too_deep.size:
        j = int(too_deep[0])
        report.error(
            "depth-undercount",
            f"element {j} is placed at depth row {int(location[j])} "
            f"but the layout claims depth={layout.depth}; VecDup would "
            f"be under-charged",
            Location(artifact, f"element {j}"))

    # Single read port per bank: within one depth row, at most one
    # element may be requested by any given bank.
    placed = np.flatnonzero(location >= 0)
    for row in np.unique(location[placed]):
        members = np.flatnonzero(location == row)
        bank_load = layout.requests[members].sum(axis=0)
        over = np.flatnonzero(bank_load > 1)
        if over.size:
            k = int(over[0])
            report.error(
                "bank-oversubscription",
                f"depth row {int(row)} stores "
                f"{int(bank_load[k])} elements requested by bank {k}; "
                f"each bank has a single read port per cycle",
                Location(artifact, f"row {int(row)}, bank {k}"),
                hint="move one of the conflicting elements to another "
                     "depth row")

    used_rows = int(location[placed].max()) + 1 if placed.size else 0
    if layout.depth > used_rows:
        report.info(
            "over-provisioned-depth",
            f"layout claims depth={layout.depth} but only {used_rows} "
            f"rows hold elements (naive/uncompressed duplication "
            f"charges the full depth)",
            Location(artifact))
    return report


def verify_matrix(custom: MatrixCustomization) -> VerificationReport:
    """Schedule + CVB checks plus the E_p/E_c -> eta bookkeeping."""
    name = custom.name
    report = verify_schedule(custom.schedule,
                             artifact=f"schedule:{name}")
    report.extend(verify_cvb(custom.schedule, custom.cvb,
                             artifact=f"cvb:{name}"))

    chunks = custom.encoding.chunks
    nnz_static = sum(chunk.length for chunk in chunks)
    length = custom.encoding.vector_length
    c = custom.schedule.architecture.c
    ep_static = c * len(custom.schedule.packs) - nnz_static
    ec_static = (custom.cvb.depth * c / length) if length else 1.0
    eta_static = match_score(nnz_static, length, ep_static, ec_static)
    if abs(eta_static - custom.eta) > _ETA_TOL:
        report.error(
            "eta-mismatch",
            f"statically recomputed match score {eta_static:.12f} "
            f"(E_p={ep_static}, E_c={ec_static:.4f}) disagrees with "
            f"the claimed eta {custom.eta:.12f}",
            Location(f"customization:{name}"),
            hint="the schedule/CVB artifacts and the metric bookkeeping "
                 "have diverged")
    return report


def verify_customization(custom: ProblemCustomization
                         ) -> VerificationReport:
    """Verify every streamed matrix plus the aggregate match score."""
    report = VerificationReport(subject="customization",
                                passes=["schedule", "cvb"])
    for name in sorted(custom.matrices):
        m = custom.matrices[name]
        report.extend(verify_matrix(m))
        if m.schedule.architecture != custom.architecture:
            report.error(
                "architecture-mismatch",
                f"matrix {name!r} was scheduled on "
                f"{m.schedule.architecture}, not the customization's "
                f"{custom.architecture}",
                Location(f"schedule:{name}"))

    num = sum(m.nnz + m.vector_length for m in custom.matrices.values())
    den = sum(m.nnz + m.ep + m.ec * m.vector_length
              for m in custom.matrices.values())
    eta_static = num / den if den else 1.0
    if abs(eta_static - custom.eta) > _ETA_TOL:
        report.error(
            "eta-mismatch",
            f"aggregate match score recomputed as {eta_static:.12f}, "
            f"claimed {custom.eta:.12f}",
            Location("customization"))
    return report
