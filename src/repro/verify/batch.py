"""Pre-execution verification of batched lockstep solves.

A batched run binds ONE cached artifact to B problem instances, so the
static guard splits in two: the artifact's own passes run once per
batch (memoized on the artifact, exactly like the solo path — see
:func:`ensure_artifact_verified`), and a cheap per-lane compatibility
pass checks that every instance really shares the structure the
artifact was customized for. A lane with a different sparsity pattern
would silently execute the wrong SpMV schedule for its data; the
fingerprint check rejects the batch before any cycle is simulated.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from .artifact import ensure_artifact_verified, verify_artifact
from .diagnostics import Location, VerificationReport

if TYPE_CHECKING:  # runtime imports would be circular via repro.serving
    from ..qp.problem import QProblem
    from ..serving.arch_cache import ArchArtifact

__all__ = ["verify_batch", "ensure_batch_verified"]


def _lane_report(artifact: "ArchArtifact",
                 problems: Sequence["QProblem"]) -> VerificationReport:
    """Per-lane structural compatibility checks (no program passes)."""
    from ..serving.fingerprint import fingerprint_problem

    key = artifact.fingerprint.key
    report = VerificationReport(
        subject=f"batch:{key[:12]}x{len(problems)}")
    report.passes.append("batch-lanes")
    if len(problems) < 1:
        report.error("batch-empty", "a batch needs at least one lane",
                     Location("batch"))
        return report
    for lane, problem in enumerate(problems):
        fp = fingerprint_problem(problem, c=artifact.c)
        if fp.key != key:
            report.error(
                "lane-mismatch",
                f"lane {lane} has structure {fp.key[:12]} "
                f"(n={fp.n}, m={fp.m}) but the artifact was built for "
                f"{key[:12]} (n={artifact.fingerprint.n}, "
                f"m={artifact.fingerprint.m})",
                Location("batch", f"lane {lane}"),
                hint="batch only same-fingerprint requests — the "
                     "coalescer groups by fingerprint key for this "
                     "reason")
    return report


def verify_batch(artifact: "ArchArtifact",
                 problems: Sequence["QProblem"]) -> VerificationReport:
    """All passes for a batched bind: artifact passes + lane checks.

    Unlike :func:`ensure_batch_verified` this always re-runs the full
    artifact verification (no memoization) and returns the merged
    report instead of raising.
    """
    report = verify_artifact(artifact)
    report.extend(_lane_report(artifact, problems))
    return report


def ensure_batch_verified(artifact: "ArchArtifact",
                          problems: Sequence["QProblem"], *,
                          context: str = "") -> None:
    """Guard one batched solve: artifact passes once (memoized on the
    artifact), lane compatibility every time (the lanes change per
    batch even when the artifact does not).

    Raises :class:`~repro.exceptions.VerificationError` on rejection.
    """
    ensure_artifact_verified(artifact,
                             context=context or "batch artifact rejected")
    report = _lane_report(artifact, problems)
    report.raise_if_failed(context or "batch lanes rejected")
    if problems and not getattr(artifact, "codegen_verified", False):
        # Codegen pass once per artifact: lift every unit the batched
        # backend would fuse (at this batch width) and prove bounds,
        # write-set and expression equivalence before any lane binds.
        from .codegen import codegen_report_for_artifact

        codegen = codegen_report_for_artifact(artifact, problems[0],
                                              batch=len(problems))
        codegen.raise_if_failed(context or "batch codegen rejected")
        artifact.codegen_verified = True
