"""Shared diagnostic types for the static verification passes.

Every pass in :mod:`repro.verify` reports problems through the same
vocabulary: a :class:`Diagnostic` pins a *severity*, a stable *code*
(machine-matchable, e.g. ``use-before-def``), a human message, a
:class:`Location` inside the artifact being checked, and an optional
fix hint. Passes accumulate diagnostics into a
:class:`VerificationReport`, which renders them for the CLI and can be
escalated into a :class:`~repro.exceptions.VerificationError` by the
pre-execution guards.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..exceptions import VerificationError

__all__ = [
    "Severity",
    "Location",
    "Diagnostic",
    "VerificationReport",
    "DIAGNOSTIC_CODES",
    "diagnostics_table",
]

#: Registry of every stable diagnostic code any pass may emit, with a
#: one-line description. :meth:`VerificationReport.add` refuses codes
#: missing from this table, so a new check cannot ship an unregistered
#: (and undocumented) code — the table in ``docs/VERIFY.md`` is
#: generated from this dict by :func:`diagnostics_table` and a CI test
#: asserts the two never drift.
DIAGNOSTIC_CODES: dict[str, str] = {
    # --- program pass (repro.verify.program) ---
    "use-before-def": "an operand is read before any instruction "
                      "defines it",
    "scalar-arity": "a ScalarOp has the wrong number of operands for "
                    "its opcode",
    "vector-arity": "a VectorOp has the wrong number of sources for "
                    "its opcode",
    "missing-coefficient": "an AXPBY/SCALE_ADD lacks a required "
                           "alpha/beta coefficient",
    "unknown-instruction": "an opcode outside the ISA reached the "
                           "verifier",
    "control-outside-loop": "a Control exit test appears outside any "
                            "Loop body",
    "unknown-cvb-bank": "a VecDup targets a CVB bank the machine does "
                        "not provision",
    "unknown-matrix": "an SpMV names a matrix the machine does not "
                      "hold",
    "spmv-src-not-in-cvb": "an SpMV reads a vector that was never "
                           "duplicated into its CVB bank",
    "bad-transfer-direction": "a DataTransfer direction is not "
                              "load/store",
    "fusion-raw-hazard": "a fused run would read a value written "
                         "earlier in the same run out of order",
    "unreachable-code": "instructions follow an unconditional loop "
                        "exit",
    "empty-loop": "a Loop has no body",
    "no-loop-exit": "a Loop body contains no Control exit test",
    "static-exit-condition": "a Control condition compares registers "
                             "no loop iteration can change",
    # --- schedule/CVB pass (repro.verify.schedule_check) ---
    "width-mismatch": "a schedule row's lane width disagrees with the "
                      "architecture",
    "dictionary-gap": "a sparsity-string codeword is missing from the "
                      "dictionary",
    "lane-overflow": "a scheduled lane index exceeds the architecture "
                     "width",
    "bank-oversubscription": "more vectors are packed into a CVB bank "
                             "than it has room for",
    "slot-overflow": "a pack slot index exceeds the pack capacity",
    "slot-structure-mismatch": "a pack slot's nnz structure disagrees "
                               "with the matrix",
    "coverage-gap": "schedule rows do not cover every matrix row "
                    "exactly once",
    "stream-order": "streamed values are out of schedule order",
    "nnz-mismatch": "scheduled nonzero count disagrees with the "
                    "matrix nnz",
    "negative-padding": "a schedule claims negative padding",
    "request-shape": "a gather request shape disagrees with its "
                     "segment",
    "translation-gap": "a matrix column has no CVB translation entry",
    "depth-undercount": "provisioned CVB depth is too small for the "
                        "packed vectors",
    "over-provisioned-depth": "provisioned CVB depth exceeds what the "
                              "packing needs (info)",
    "eta-mismatch": "recomputed efficiency eta disagrees with the "
                    "artifact's claim",
    "architecture-mismatch": "artifact architecture parameters "
                             "disagree with the schedule",
    # --- cycle pass (repro.verify.cycles) ---
    "missing-sections": "a compiled program lacks the per-section "
                        "cycle table",
    "cycle-cost-mismatch": "a section's claimed cycles fall outside "
                           "the analytic min/max bracket",
    "fused-cycle-mismatch": "a whole-loop-fused section's charge "
                            "table disagrees with the analytic cost "
                            "decomposition",
    # --- artifact/batch binding passes ---
    "context-mismatch": "artifact dimensions disagree with the bound "
                        "problem context",
    "batch-empty": "a batch bind carries zero lanes",
    "lane-mismatch": "a batch lane's structure fingerprint disagrees "
                     "with the artifact",
    # --- codegen pass (repro.verify.codegen) ---
    "codegen-shape-mismatch": "an effect-IR statement's operand "
                              "lengths disagree with the machine "
                              "buffers",
    "codegen-index-out-of-bounds": "a generated loop bound or index "
                                   "array exceeds its buffer length",
    "codegen-alias-hazard": "a generated gather/reduce writes a "
                            "buffer it also reads indirectly",
    "codegen-order-mismatch": "generated statements execute in a "
                              "different order than the source "
                              "instructions",
    "codegen-stale-scalar-read": "generated code reads a scalar "
                                 "table entry that an earlier "
                                 "statement already overwrote",
    "codegen-scalar-slot-mismatch": "a scalar-table slot binds a "
                                    "different register/literal than "
                                    "the emitted token claims",
    "codegen-write-set-miss": "the effect IR writes a buffer missing "
                              "from the static snapshot write-set",
    "codegen-expression-mismatch": "an emitted per-element expression "
                                   "differs from the ISA semantics "
                                   "of its instruction",
    "codegen-kernel-body-drift": "an embedded kernel body differs "
                                 "from the canonical cjit template",
    "codegen-cycle-mismatch": "an effect-IR charge table entry "
                              "disagrees with the static cost model",
    "codegen-coverage": "summary of generated units the codegen pass "
                        "analyzed (info)",
}


def diagnostics_table() -> str:
    """Render :data:`DIAGNOSTIC_CODES` as a markdown table.

    ``docs/VERIFY.md`` embeds this output between generated-table
    markers; a test regenerates it and fails on drift.
    """
    lines = ["| code | meaning |", "| --- | --- |"]
    for code in sorted(DIAGNOSTIC_CODES):
        desc = " ".join(DIAGNOSTIC_CODES[code].split())
        lines.append(f"| `{code}` | {desc} |")
    return "\n".join(lines) + "\n"


class Severity(enum.IntEnum):
    """How bad a finding is; only ERROR makes a report fail."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Where inside an artifact a diagnostic points.

    ``artifact``
        Which artifact the pass was looking at (``"program"``,
        ``"schedule:P"``, ``"cvb:A"``, ``"cycles"`` ...).
    ``path``
        Position within the artifact — an instruction path like
        ``"admm[12].pcg[3]"`` or a pack/slot index like
        ``"pack 7, slot 2"``. Empty when the finding is global.
    ``site``
        Source-location metadata carried by the instruction itself
        (set by :mod:`repro.hw.compiler`), naming the generating
        site rather than just an index.
    """

    artifact: str
    path: str = ""
    site: str | None = None

    def __str__(self) -> str:
        text = self.artifact
        if self.path:
            text += f"@{self.path}"
        if self.site:
            text += f" ({self.site})"
        return text


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a verification pass."""

    severity: Severity
    code: str
    message: str
    location: Location
    hint: str = ""

    def render(self) -> str:
        text = f"{self.severity.label()}[{self.code}] {self.location}: " \
               f"{self.message}"
        if self.hint:
            text += f"\n  hint: {self.hint}"
        return text


@dataclass
class VerificationReport:
    """Accumulated findings of one or more passes over one artifact."""

    subject: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)
    passes: list[str] = field(default_factory=list)

    def add(self, severity: Severity, code: str, message: str,
            location: Location, hint: str = "") -> Diagnostic:
        if code not in DIAGNOSTIC_CODES:
            raise ValueError(
                f"unregistered diagnostic code {code!r}: add it to "
                "repro.verify.diagnostics.DIAGNOSTIC_CODES (and "
                "regenerate the docs table)")
        diag = Diagnostic(severity, code, message, location, hint)
        self.diagnostics.append(diag)
        return diag

    def error(self, code: str, message: str, location: Location,
              hint: str = "") -> Diagnostic:
        return self.add(Severity.ERROR, code, message, location, hint)

    def warning(self, code: str, message: str, location: Location,
                hint: str = "") -> Diagnostic:
        return self.add(Severity.WARNING, code, message, location, hint)

    def info(self, code: str, message: str, location: Location,
             hint: str = "") -> Diagnostic:
        return self.add(Severity.INFO, code, message, location, hint)

    def extend(self, other: "VerificationReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.passes.extend(p for p in other.passes if p not in self.passes)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostics were recorded."""
        return not self.errors

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def render(self) -> str:
        head = self.subject or "artifact"
        lines = [f"verify {head}: "
                 f"{len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s) "
                 f"[{', '.join(self.passes) or 'no passes'}]"]
        lines.extend(d.render() for d in self.diagnostics)
        return "\n".join(lines)

    def raise_if_failed(self, context: str = "") -> None:
        """Raise :class:`VerificationError` when any ERROR was found."""
        if self.ok:
            return
        first = self.errors[0]
        prefix = f"{context}: " if context else ""
        raise VerificationError(
            f"{prefix}static verification failed with "
            f"{len(self.errors)} error(s); first: {first.render()}",
            report=self)
