"""Shared diagnostic types for the static verification passes.

Every pass in :mod:`repro.verify` reports problems through the same
vocabulary: a :class:`Diagnostic` pins a *severity*, a stable *code*
(machine-matchable, e.g. ``use-before-def``), a human message, a
:class:`Location` inside the artifact being checked, and an optional
fix hint. Passes accumulate diagnostics into a
:class:`VerificationReport`, which renders them for the CLI and can be
escalated into a :class:`~repro.exceptions.VerificationError` by the
pre-execution guards.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..exceptions import VerificationError

__all__ = [
    "Severity",
    "Location",
    "Diagnostic",
    "VerificationReport",
]


class Severity(enum.IntEnum):
    """How bad a finding is; only ERROR makes a report fail."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Where inside an artifact a diagnostic points.

    ``artifact``
        Which artifact the pass was looking at (``"program"``,
        ``"schedule:P"``, ``"cvb:A"``, ``"cycles"`` ...).
    ``path``
        Position within the artifact — an instruction path like
        ``"admm[12].pcg[3]"`` or a pack/slot index like
        ``"pack 7, slot 2"``. Empty when the finding is global.
    ``site``
        Source-location metadata carried by the instruction itself
        (set by :mod:`repro.hw.compiler`), naming the generating
        site rather than just an index.
    """

    artifact: str
    path: str = ""
    site: str | None = None

    def __str__(self) -> str:
        text = self.artifact
        if self.path:
            text += f"@{self.path}"
        if self.site:
            text += f" ({self.site})"
        return text


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a verification pass."""

    severity: Severity
    code: str
    message: str
    location: Location
    hint: str = ""

    def render(self) -> str:
        text = f"{self.severity.label()}[{self.code}] {self.location}: " \
               f"{self.message}"
        if self.hint:
            text += f"\n  hint: {self.hint}"
        return text


@dataclass
class VerificationReport:
    """Accumulated findings of one or more passes over one artifact."""

    subject: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)
    passes: list[str] = field(default_factory=list)

    def add(self, severity: Severity, code: str, message: str,
            location: Location, hint: str = "") -> Diagnostic:
        diag = Diagnostic(severity, code, message, location, hint)
        self.diagnostics.append(diag)
        return diag

    def error(self, code: str, message: str, location: Location,
              hint: str = "") -> Diagnostic:
        return self.add(Severity.ERROR, code, message, location, hint)

    def warning(self, code: str, message: str, location: Location,
                hint: str = "") -> Diagnostic:
        return self.add(Severity.WARNING, code, message, location, hint)

    def info(self, code: str, message: str, location: Location,
             hint: str = "") -> Diagnostic:
        return self.add(Severity.INFO, code, message, location, hint)

    def extend(self, other: "VerificationReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.passes.extend(p for p in other.passes if p not in self.passes)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostics were recorded."""
        return not self.errors

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def render(self) -> str:
        head = self.subject or "artifact"
        lines = [f"verify {head}: "
                 f"{len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s) "
                 f"[{', '.join(self.passes) or 'no passes'}]"]
        lines.extend(d.render() for d in self.diagnostics)
        return "\n".join(lines)

    def raise_if_failed(self, context: str = "") -> None:
        """Raise :class:`VerificationError` when any ERROR was found."""
        if self.ok:
            return
        first = self.errors[0]
        prefix = f"{context}: " if context else ""
        raise VerificationError(
            f"{prefix}static verification failed with "
            f"{len(self.errors)} error(s); first: {first.render()}",
            report=self)
