"""Pass 4: static verification of the generated-C (codegen) tier.

The compiled backends in :mod:`repro.hw.compiled` (solo chunk fusion
and whole-loop fusion) and :mod:`repro.hw.batched` (lane-minor batch
chunk fusion) generate C source at runtime. Each builder emits an
:class:`~repro.hw.effect_ir.EffectIR` alongside that source — a
per-statement record of effects — and this pass proves, before a
generated kernel ever runs, four independent properties:

**Equivalence** (``codegen-expression-mismatch`` /
``codegen-kernel-body-drift``)
    Every emitted statement is re-derived from its source ISA
    instruction: the per-element expression must match the closure
    fold table verbatim (no reassociation or FMA-shaped rewrites —
    the source-level half of the ``-ffp-contract=off`` bit-exactness
    contract), operand buffers must be the instruction's operands in
    order, and embedded DOT/SpMV/CLIP kernel bodies must match the
    canonical :mod:`repro.hw.cjit` templates after table-token
    normalization.

**Bounds and aliasing** (``codegen-index-out-of-bounds`` /
``codegen-shape-mismatch`` / ``codegen-alias-hazard``)
    Every loop bound is proven to stay within every operand buffer it
    indexes (including the flattened ``len * B`` and row/lane bounds of
    lane-minor batch buffers), CSR gathers are proven in-bounds from
    the actual ``col``/``indptr`` arrays the kernel will walk, and a
    gather may not write a buffer it reads.

**Ordering and scalar-table soundness** (``codegen-order-mismatch`` /
``codegen-stale-scalar-read`` / ``codegen-scalar-slot-mismatch`` /
``codegen-write-set-miss``)
    Generated statements must execute in exactly the order the solo
    interpreter would execute the instructions; a chunk that reads a
    scalar register an earlier in-chunk DOT wrote must read the fresh
    ``O`` slot, never the stale pre-call ``S`` table; and the effect
    IR's write-set must be covered by the static write-set
    (:func:`repro.hw.batched.static_write_set`) that the batch
    snapshot-restore machinery relies on.

**Cycle-accounting consistency** (``codegen-cycle-mismatch``)
    The whole-loop tier's ``CT`` charge table must reconcile, slot by
    slot, with the static decomposition
    (:func:`repro.verify.cycles.loop_charge_slots`) of the same loop
    body under the same cost context, and its ``IT`` trip-counter
    table must name the nested loops in emission order.

Entry points: :func:`ensure_codegen_verified` is the compile-time
guard the builders call (memoized per IR digest);
:func:`verify_codegen` lifts every unit the backends would fuse for a
compiled program *statically* — no C toolchain needed — and verifies
them all; :func:`codegen_report_for_artifact` adapts that to a served
:class:`~repro.serving.arch_cache.ArchArtifact`.
"""

from __future__ import annotations

import re
from typing import Any

import numpy as np

from ..hw import cjit
from ..hw.batched import (BatchExecutor, BatchMachine, _BatchChunkBuilder,
                          _batch_chunkable, static_write_set)
from ..hw.compiled import (CompiledExecutor, _ChunkBuilder, _LoopBuilder,
                           _chunkable, literal_operand)
from ..hw.effect_ir import EFFECT_IR_VERSION, EffectIR, EffectStatement
from ..hw.isa import (Control, DataTransfer, Loop, ScalarOp, ScalarOpKind,
                      SpMV, VecDup, VectorOp, VectorOpKind)
from ..hw.machine import Machine
from .cycles import loop_charge_slots
from .diagnostics import Location, VerificationReport
from .program import contract_for_algorithm

__all__ = ["ensure_codegen_verified", "verify_effect_ir",
           "verify_codegen", "codegen_report_for_artifact"]

#: Accepted verdicts, memoized per :meth:`EffectIR.digest` — two units
#: with equal digests are verdict-equivalent by construction (the
#: digest covers every field the analyses read). Only successes are
#: cached: a failing unit raises and must keep raising.
_VERIFIED: dict[str, bool] = {}
_VERIFIED_CAP = 4096


# ---------------------------------------------------------------------------
# canonical kernel-body templates (token-normalized)

#: Operand-table tokens (``B[0]``, ``IA[2]``, ``L[1]``, ``S[3]``,
#: ``O[0]``, ``W[4]``) are slot-numbered per unit; normalize them to a
#: fixed placeholder so one template matches every unit.
_TOKEN_RE = re.compile(r"\b(?:B|IA|L|S|O|W)\[\d+\]")


def _norm(text: str) -> str:
    return _TOKEN_RE.sub("T", text)


def _embed(body: str) -> str:
    """Indent a cjit kernel body exactly like the builders do."""
    return "".join("    " + line + "\n" if line.strip() else line
                   for line in body.splitlines())


_CHUNK_DOT = ("    {\n"
              "        const double *a = T;\n"
              "        const double *b = T;\n"
              "        const long n = T;\n"
              + _embed(cjit.DOT_BODY) +
              "        T = acc;\n"
              "    }\n")

_LOOP_DOT = ("    {\n"
             "        const double *a = T;\n"
             "        const double *b = T;\n"
             "        const long n = T;\n"
             + _embed(cjit.DOT_BODY) +
             "        T = acc;\n"
             "        T = 1;\n"
             "    }\n")

_SOLO_SPMV = ("    {\n"
              "        const double *val = T;\n"
              "        const long *col = T;\n"
              "        const long *ip = T;\n"
              "        const double *x = T;\n"
              "        double *y = T;\n"
              "        const long nrows = T;\n"
              + _embed(cjit.CSR_MATVEC_BODY) +
              "    }\n")

_LOOP_CLIP = ("    {\n"
              "        const double *a = T;\n"
              "        const double *lo = T;\n"
              "        const double *hi = T;\n"
              "        double *d = T;\n"
              "        const long n = T;\n"
              "        for (long i = 0; i < n; ++i) {\n"
              "            const double av = a[i];\n"
              "            const double t = isnan(av) ? av"
              " : (av > lo[i] ? av : lo[i]);\n"
              "            d[i] = isnan(t) ? t : (t < hi[i] ? t : hi[i]);\n"
              "        }\n"
              "    }\n")

_BATCH_DOT = ("    {\n"
              "        const double *a = T;\n"
              "        const double *b = T;\n"
              "        double * restrict o = T;\n"
              "        const long n = T;\n"
              "        const long bt = T;\n"
              "        for (long j = 0; j < bt; ++j)\n"
              "            o[j] = 0.0;\n"
              "        for (long i = 0; i < n; ++i) {\n"
              "            const double *ai = a + i * bt;\n"
              "            const double *bi = b + i * bt;\n"
              "            for (long j = 0; j < bt; ++j)\n"
              "                o[j] += ai[j] * bi[j];\n"
              "        }\n"
              "    }\n")

_BATCH_SPMV = ("    {\n"
               "        const double * restrict v = T;\n"
               "        const long *col = T;\n"
               "        const long *ip = T;\n"
               "        const double * restrict xx = T;\n"
               "        double * restrict yy = T;\n"
               "        const long nrows = T;\n"
               "        const long bt = T;\n"
               "        for (long r = 0; r < nrows; ++r) {\n"
               "            double * restrict yr = yy + r * bt;\n"
               "            for (long j = 0; j < bt; ++j)\n"
               "                yr[j] = 0.0;\n"
               "            for (long k = ip[r]; k < ip[r + 1]; ++k) {\n"
               "                const double * restrict vk = v + k * bt;\n"
               "                const double * restrict xk"
               " = xx + col[k] * bt;\n"
               "                for (long j = 0; j < bt; ++j)\n"
               "                    yr[j] += vk[j] * xk[j];\n"
               "            }\n"
               "        }\n"
               "    }\n")


# ---------------------------------------------------------------------------
# expected-form tables (the verifier's independent re-derivation of the
# builder fold tables; a builder change that is not mirrored here is a
# verification failure, which is the point)

def _expected_op(instr: Any) -> str | None:
    if isinstance(instr, VecDup):
        return "vecdup"
    if isinstance(instr, SpMV):
        return "spmv"
    if isinstance(instr, VectorOp):
        return instr.op.value
    if isinstance(instr, ScalarOp):
        return f"scalar:{instr.op.value}"
    if isinstance(instr, Control):
        return "control"
    if isinstance(instr, Loop):
        return "loop"
    return None


def _solo_vector_plan(instr: VectorOp) -> tuple[str, list] | None:
    """``(expr, scalar_operands)`` of the solo elementwise fold table."""
    kind = instr.op
    if kind is VectorOpKind.COPY:
        return "d[i] = a[i]", []
    if kind is VectorOpKind.EWMUL:
        return "d[i] = a[i] * b[i]", []
    if kind is VectorOpKind.SCALE_ADD:
        al = literal_operand(instr.alpha)
        if al == 1.0:
            return "d[i] = a[i] + b[i]", []
        if al == -1.0:
            return "d[i] = a[i] - b[i]", []
        return "d[i] = a[i] + b[i] * s0", [instr.alpha]
    if kind is VectorOpKind.AXPBY:
        al = literal_operand(instr.alpha)
        be = literal_operand(instr.beta)
        if al == 1.0 and be == 1.0:
            return "d[i] = a[i] + b[i]", []
        if al == 1.0 and be == -1.0:
            return "d[i] = a[i] - b[i]", []
        if al == 1.0:
            return "d[i] = a[i] + b[i] * s0", [instr.beta]
        if be == 1.0:
            return "d[i] = a[i] * s0 + b[i]", [instr.alpha]
        if be == -1.0:
            return "d[i] = a[i] * s0 - b[i]", [instr.alpha]
        if al == -1.0:
            return "d[i] = b[i] * s0 - a[i]", [instr.beta]
        return "d[i] = a[i] * s0 + b[i] * s1", [instr.alpha, instr.beta]
    return None


def _batch_vector_plan(instr: VectorOp) -> tuple[str, str, list] | None:
    """``(index_kind, expr_template, scalar_operands)`` of the batched
    fold table; ``{0}``/``{1}`` substitute the emitted scalar tokens."""
    kind = instr.op
    if kind is VectorOpKind.COPY:
        return "flat", "d[i] = a[i]", []
    if kind is VectorOpKind.EWMUL:
        return "flat", "d[i] = a[i] * b[i]", []
    if kind is VectorOpKind.SCALE_ADD:
        al = literal_operand(instr.alpha)
        if al == 1.0:
            return "flat", "d[i] = a[i] + b[i]", []
        if al == -1.0:
            return "flat", "d[i] = a[i] - b[i]", []
        return "laned", "di[j] = ai[j] + bi[j] * {0}", [instr.alpha]
    if kind is VectorOpKind.AXPBY:
        al = literal_operand(instr.alpha)
        be = literal_operand(instr.beta)
        if al == 1.0 and be == 1.0:
            return "flat", "d[i] = a[i] + b[i]", []
        if al == 1.0 and be == -1.0:
            return "flat", "d[i] = a[i] - b[i]", []
        if al == 1.0:
            return "laned", "di[j] = ai[j] + bi[j] * {0}", [instr.beta]
        if be == 1.0:
            return "laned", "di[j] = ai[j] * {0} + bi[j]", [instr.alpha]
        if be == -1.0:
            return "laned", "di[j] = ai[j] * {0} - bi[j]", [instr.alpha]
        if al == -1.0:
            return "laned", "di[j] = bi[j] * {0} - ai[j]", [instr.beta]
        return ("laned", "di[j] = ai[j] * {0} + bi[j] * {1}",
                [instr.alpha, instr.beta])
    return None


def _loop_scalar_expr(op: ScalarOpKind, a: str,
                      b: str | None) -> tuple[str, str] | None:
    """Expected C expression of a loop-tier ScalarOp, given the emitted
    operand tokens; returns ``(guard, expr)`` or None."""
    if op is ScalarOpKind.ADD:
        return "", f"{a} + {b}"
    if op is ScalarOpKind.SUB:
        return "", f"{a} - {b}"
    if op is ScalarOpKind.MUL:
        return "", f"{a} * {b}"
    if op is ScalarOpKind.DIV:
        return f"    if ({b} == 0.0) return 1;\n", f"{a} / {b}"
    if op is ScalarOpKind.MAX:
        return "", f"({b} > {a}) ? {b} : {a}"
    if op is ScalarOpKind.SQRT:
        return f"    if ({a} < 0.0) return 2;\n", f"sqrt({a})"
    if op is ScalarOpKind.MOV:
        return "", a
    return None


def _batch_scalar_expr(op: ScalarOpKind, a: str,
                       b: str | None) -> str | None:
    if op is ScalarOpKind.MOV:
        return f"d[j] = {a}"
    if op is ScalarOpKind.MAX:
        return f"d[j] = ({b} > {a}) ? {b} : {a}"
    if op is ScalarOpKind.ADD:
        return f"d[j] = {a} + {b}"
    if op is ScalarOpKind.SUB:
        return f"d[j] = {a} - {b}"
    if op is ScalarOpKind.MUL:
        return f"d[j] = {a} * {b}"
    return None


# ---------------------------------------------------------------------------
# expected emission walk

def _loop_walk(items: list) -> tuple[list, list]:
    """Mirror ``_LoopBuilder._emit_body``: the exact statement order and
    ``CT`` charge-slot assignment of a fused loop body.

    Returns ``(entries, loop_meta)`` where entries are
    ``(instr_or_marker, charge_slot)`` in emission order (a nested
    ``Loop`` appears as its own entry with slot ``None``, followed
    inline by its body) and ``loop_meta`` is the expected
    ``(IT slot, name, max_iter)`` trip-counter table in pre-order.
    """
    entries: list = []
    loop_meta: list = []
    n_charges = 0

    def walk(block: list) -> None:
        nonlocal n_charges
        run: list = []

        def flush() -> None:
            nonlocal n_charges
            if not run:
                return
            slot = n_charges
            n_charges += 1
            for ins in run:
                entries.append((ins, slot))
            run.clear()

        for item in block:
            if isinstance(item, Control):
                flush()
                slot = n_charges
                n_charges += 1
                entries.append((item, slot))
            elif isinstance(item, Loop):
                flush()
                loop_meta.append((1 + len(loop_meta), item.name,
                                  int(item.max_iter)))
                entries.append((item, None))
                walk(item.body)
            else:
                run.append(item)
        flush()

    walk(items)
    return entries, loop_meta


# ---------------------------------------------------------------------------
# per-unit checker

_SLOT_RE = re.compile(r"^S\[(\d+)\]$")
_BATCH_REG_RE = re.compile(r"^s(\d+)\[j\]$")


class _UnitChecker:
    """Check one EffectIR against its source instructions."""

    def __init__(self, ir: EffectIR, instrs: list, machine: Any,
                 report: VerificationReport):
        self.ir = ir
        self.instrs = list(instrs)
        self.machine = machine
        self.report = report
        # chunk tier: registers written by in-chunk DOTs -> O slot, the
        # running getter count (S table), and the DOT counter.
        self.dot_slots: dict = {}
        self.dot_count = 0
        self.s_count = 0
        # batch tier: running sreg-pointer and S-constant counters.
        self.sreg_count = 0
        self.const_count = 0
        # loop tier: S-slot table (register name -> slot).
        self.reg_slots: dict = {}

    # -- helpers ---------------------------------------------------------
    def _loc(self, stmt: EffectStatement) -> Location:
        return Location(f"codegen[{self.ir.tier}]",
                        f"stmt {stmt.instr_index} ({stmt.op})",
                        stmt.site)

    def _err(self, code: str, stmt: EffectStatement, message: str,
             hint: str = "") -> None:
        self.report.error(code, message, self._loc(stmt), hint)

    # -- entry -----------------------------------------------------------
    def check(self) -> None:
        ir = self.ir
        report = self.report
        if ir.version != EFFECT_IR_VERSION:
            report.error(
                "codegen-shape-mismatch",
                f"effect IR schema version {ir.version!r} does not match "
                f"the verifier's {EFFECT_IR_VERSION!r}",
                Location(f"codegen[{ir.tier}]"))
            return
        if ir.tier not in ("chunk", "loop", "batch-chunk"):
            report.error(
                "codegen-shape-mismatch",
                f"unknown effect IR tier {ir.tier!r}",
                Location("codegen"))
            return
        if ir.tier == "loop":
            entries, loop_meta = _loop_walk(self.instrs)
            self._load_reg_slots()
        else:
            entries = [(ins, None) for ins in self.instrs]
            loop_meta = []
        stmts = list(ir.statements)
        if len(stmts) != len(entries):
            report.error(
                "codegen-order-mismatch",
                f"effect IR records {len(stmts)} statement(s) but the "
                f"instruction walk emits {len(entries)}",
                Location(f"codegen[{ir.tier}]"),
                hint="a builder emitted code without recording it (or "
                     "vice versa)")
            return
        for pos, ((instr, slot), stmt) in enumerate(zip(entries, stmts)):
            if stmt.instr_index != pos:
                self._err(
                    "codegen-order-mismatch", stmt,
                    f"statement records walk position "
                    f"{stmt.instr_index} but executes at {pos}; the "
                    f"generated code would reorder effects the solo "
                    f"interpreter sequences")
            if ir.tier == "loop" and stmt.charge_slot != slot:
                self._err(
                    "codegen-cycle-mismatch", stmt,
                    f"statement charges CT slot {stmt.charge_slot} but "
                    f"the static decomposition assigns slot {slot}")
            self._check_statement(instr, stmt)
            self._check_bounds(stmt)
        self._check_writes()
        if ir.tier == "loop":
            self._check_charges(loop_meta)

    def _load_reg_slots(self) -> None:
        for slot, entry in enumerate(self.ir.s_entries):
            kind, value = entry
            if kind != "reg":
                continue
            if value in self.reg_slots:
                self.report.error(
                    "codegen-scalar-slot-mismatch",
                    f"scalar register {value!r} owns two S slots "
                    f"({self.reg_slots[value]} and {slot}); in-loop "
                    f"writes through one would be invisible through "
                    f"the other",
                    Location("codegen[loop]"))
                continue
            self.reg_slots[value] = slot

    # -- scalar-token resolution -----------------------------------------
    def _resolve_operands(self, stmt: EffectStatement,
                          refs: list) -> list:
        """Consume the statement's recorded scalar reads against the
        expected operand list; returns emitted tokens (None entries on
        failure) and flags stale/misbound table slots."""
        sregs = list(stmt.sreg_reads)
        lits = list(stmt.lit_reads)
        tokens: list = []
        for ref in refs:
            lit = literal_operand(ref)
            if lit is None:
                if not sregs:
                    self._err(
                        "codegen-expression-mismatch", stmt,
                        f"scalar register operand {ref!r} was never "
                        f"read by the generated code")
                    tokens.append(None)
                    continue
                reg, token = sregs.pop(0)
                if reg != ref:
                    self._err(
                        "codegen-expression-mismatch", stmt,
                        f"generated code reads scalar register {reg!r} "
                        f"where the instruction names {ref!r}")
                    tokens.append(None)
                    continue
                self._check_reg_token(stmt, reg, token)
                tokens.append(token)
            else:
                if not lits:
                    self._err(
                        "codegen-expression-mismatch", stmt,
                        f"literal operand {lit!r} was never read by "
                        f"the generated code")
                    tokens.append(None)
                    continue
                value, token = lits.pop(0)
                if value != lit:
                    self._err(
                        "codegen-expression-mismatch", stmt,
                        f"generated code binds literal {value!r} where "
                        f"the instruction carries {lit!r}")
                self._check_lit_token(stmt, lit, token)
                tokens.append(token)
        for reg, token in sregs:
            self._err(
                "codegen-scalar-slot-mismatch", stmt,
                f"generated code reads scalar register {reg!r} "
                f"(token {token}) that no instruction operand names")
        for value, token in lits:
            self._err(
                "codegen-scalar-slot-mismatch", stmt,
                f"generated code reads literal {value!r} (token "
                f"{token}) that no instruction operand carries")
        return tokens

    def _check_reg_token(self, stmt: EffectStatement, reg: str,
                         token: str) -> None:
        tier = self.ir.tier
        if tier == "loop":
            match = _SLOT_RE.match(token)
            slot = self.reg_slots.get(reg)
            if match is None or slot is None or int(match.group(1)) != slot:
                self._err(
                    "codegen-scalar-slot-mismatch", stmt,
                    f"register {reg!r} read through token {token} but "
                    f"its S slot is {slot}")
            return
        if tier == "chunk":
            if reg in self.dot_slots:
                expected = f"O[{self.dot_slots[reg]}]"
                if token.startswith("S["):
                    self._err(
                        "codegen-stale-scalar-read", stmt,
                        f"register {reg!r} was written by an earlier "
                        f"DOT in this chunk but is read through the "
                        f"pre-call S table ({token}); the generated "
                        f"code would observe the stale pre-chunk value",
                        hint="in-chunk DOT results must be read from "
                             "their O slot")
                elif token != expected:
                    self._err(
                        "codegen-scalar-slot-mismatch", stmt,
                        f"register {reg!r} read through {token} but "
                        f"the freshest in-chunk DOT wrote {expected}")
                return
            expected = f"S[{self.s_count}]"
            if token != expected:
                self._err(
                    "codegen-scalar-slot-mismatch", stmt,
                    f"register {reg!r} read through {token} but its "
                    f"getter occupies {expected}")
            self.s_count += 1
            return
        # batch-chunk: registers are (B,) buffers bound as sN pointers.
        match = _BATCH_REG_RE.match(token)
        if match is None or int(match.group(1)) != self.sreg_count:
            self._err(
                "codegen-scalar-slot-mismatch", stmt,
                f"register {reg!r} read through token {token!r} but "
                f"the emitted pointer sequence expects "
                f"s{self.sreg_count}[j]")
        self.sreg_count += 1

    def _check_lit_token(self, stmt: EffectStatement, value: float,
                         token: str) -> None:
        tier = self.ir.tier
        match = _SLOT_RE.match(token)
        if tier == "loop":
            entries = self.ir.s_entries
            if (match is None or int(match.group(1)) >= len(entries)
                    or tuple(entries[int(match.group(1))])
                    != ("lit", value)):
                self._err(
                    "codegen-scalar-slot-mismatch", stmt,
                    f"literal {value!r} read through token {token} but "
                    f"that S slot holds a different entry")
            return
        if tier == "chunk":
            expected = f"S[{self.s_count}]"
            if token != expected:
                self._err(
                    "codegen-scalar-slot-mismatch", stmt,
                    f"literal {value!r} read through {token} but its "
                    f"getter occupies {expected}")
            self.s_count += 1
            return
        consts = self.ir.consts
        if (match is None or int(match.group(1)) != self.const_count
                or self.const_count >= len(consts)
                or consts[self.const_count] != value):
            self._err(
                "codegen-scalar-slot-mismatch", stmt,
                f"literal {value!r} read through {token!r} but the S "
                f"constant table holds "
                f"{consts[self.const_count] if self.const_count < len(consts) else '<missing>'!r} "
                f"at slot {self.const_count}")
        self.const_count += 1

    # -- per-statement equivalence ---------------------------------------
    def _check_statement(self, instr: Any, stmt: EffectStatement) -> None:
        expected_op = _expected_op(instr)
        if expected_op is None or stmt.op != expected_op:
            self._err(
                "codegen-expression-mismatch", stmt,
                f"statement claims op {stmt.op!r} but the instruction "
                f"at this position lowers to {expected_op!r}")
            return
        if isinstance(instr, VecDup):
            self._check_vecdup(instr, stmt)
        elif isinstance(instr, SpMV):
            self._check_spmv(instr, stmt)
        elif isinstance(instr, VectorOp):
            if instr.op is VectorOpKind.DOT:
                self._check_dot(instr, stmt)
            elif instr.op is VectorOpKind.CLIP:
                self._check_clip(instr, stmt)
            else:
                self._check_elementwise(instr, stmt)
        elif isinstance(instr, ScalarOp):
            self._check_scalar(instr, stmt)
        elif isinstance(instr, Control):
            self._check_control(instr, stmt)
        elif isinstance(instr, Loop):
            self._check_loop_marker(instr, stmt)

    def _check_dst(self, stmt: EffectStatement, space: str,
                   name: str) -> bool:
        dst = stmt.dst
        if dst is None or dst.space != space or dst.name != name:
            self._err(
                "codegen-expression-mismatch", stmt,
                f"statement writes "
                f"{(dst.space, dst.name) if dst else None} but the "
                f"instruction destination is {(space, name)}")
            return False
        return True

    def _check_srcs(self, stmt: EffectStatement, names: tuple) -> bool:
        got = tuple(ref.name for ref in stmt.srcs)
        if got != tuple(names):
            self._err(
                "codegen-expression-mismatch", stmt,
                f"statement reads buffers {got} but the instruction "
                f"sources are {tuple(names)}")
            return False
        return True

    def _check_index_kind(self, stmt: EffectStatement,
                          expected: str) -> bool:
        if stmt.index != expected:
            self._err(
                "codegen-expression-mismatch", stmt,
                f"statement iterates as {stmt.index!r} but this "
                f"instruction lowers to a {expected!r} loop")
            return False
        return True

    def _check_template(self, stmt: EffectStatement,
                        template: str) -> None:
        if _norm(stmt.text) != template:
            self._err(
                "codegen-kernel-body-drift", stmt,
                "embedded kernel body differs from the canonical "
                "template; the generated loop would not be the "
                "bit-exactness-pinned kernel shape")

    def _check_vecdup(self, instr: VecDup, stmt: EffectStatement) -> None:
        batch = self.ir.tier == "batch-chunk"
        self._check_index_kind(stmt, "flat" if batch else "elementwise")
        self._check_dst(stmt, "cvb", instr.cvb)
        self._check_srcs(stmt, (instr.src,))
        self._resolve_operands(stmt, [])
        if stmt.expr != "d[i] = a[i]":
            self._err(
                "codegen-expression-mismatch", stmt,
                f"VecDup must copy verbatim; generated {stmt.expr!r}")

    def _check_elementwise(self, instr: VectorOp,
                           stmt: EffectStatement) -> None:
        if self.ir.tier == "batch-chunk":
            plan = _batch_vector_plan(instr)
            if plan is None:
                self._err("codegen-expression-mismatch", stmt,
                          f"vector op {instr.op.value!r} has no batched "
                          f"codegen lowering")
                return
            index_kind, template, scalar_refs = plan
            self._check_index_kind(stmt, index_kind)
            tokens = self._resolve_operands(stmt, scalar_refs)
            if any(t is None for t in tokens):
                return
            expected = template.format(*tokens)
        else:
            plan = _solo_vector_plan(instr)
            if plan is None:
                self._err("codegen-expression-mismatch", stmt,
                          f"vector op {instr.op.value!r} has no solo "
                          f"codegen lowering")
                return
            expected, scalar_refs = plan
            self._check_index_kind(stmt, "elementwise")
            self._resolve_operands(stmt, scalar_refs)
        self._check_dst(stmt, "vb", instr.dst)
        self._check_srcs(stmt, tuple(instr.srcs[:2]))
        if stmt.expr != expected:
            self._err(
                "codegen-expression-mismatch", stmt,
                f"generated expression {stmt.expr!r} differs from the "
                f"ISA fold {expected!r}",
                hint="reassociation/contraction at the source level "
                     "breaks the bit-exactness contract")

    def _check_clip(self, instr: VectorOp, stmt: EffectStatement) -> None:
        if self.ir.tier != "loop":
            self._err("codegen-expression-mismatch", stmt,
                      "CLIP is only loop-fusable; no other tier may "
                      "emit it")
            return
        self._check_index_kind(stmt, "elementwise")
        self._check_dst(stmt, "vb", instr.dst)
        self._check_srcs(stmt, tuple(instr.srcs[:3]))
        self._resolve_operands(stmt, [])
        self._check_template(stmt, _LOOP_CLIP)

    def _check_dot(self, instr: VectorOp, stmt: EffectStatement) -> None:
        tier = self.ir.tier
        self._check_index_kind(stmt, "reduce")
        self._check_srcs(stmt, tuple(instr.srcs[:2]))
        self._resolve_operands(stmt, [])
        writes = tuple(stmt.sreg_writes)
        if tier == "chunk":
            expected = ((instr.dst, f"O[{self.dot_count}]"),)
            if writes != expected:
                self._err(
                    "codegen-scalar-slot-mismatch", stmt,
                    f"DOT writes {writes} but emission order assigns "
                    f"{expected}")
            self.dot_slots[instr.dst] = self.dot_count
            self.dot_count += 1
            self._check_template(stmt, _CHUNK_DOT)
        elif tier == "loop":
            slot = self.reg_slots.get(instr.dst)
            expected = ((instr.dst, f"S[{slot}]"),)
            if slot is None or writes != expected:
                self._err(
                    "codegen-scalar-slot-mismatch", stmt,
                    f"DOT writes {writes} but register {instr.dst!r} "
                    f"owns S slot {slot}")
            self._check_template(stmt, _LOOP_DOT)
        else:
            if writes != ((instr.dst, "o"),):
                self._err(
                    "codegen-scalar-slot-mismatch", stmt,
                    f"batched DOT writes {writes} but must accumulate "
                    f"into the {instr.dst!r} register buffer")
            self._check_template(stmt, _BATCH_DOT)

    def _check_spmv(self, instr: SpMV, stmt: EffectStatement) -> None:
        self._check_index_kind(stmt, "gather")
        self._check_dst(stmt, "vb", instr.dst)
        self._check_srcs(stmt, (instr.matrix, instr.src))
        self._resolve_operands(stmt, [])
        if stmt.matrix != instr.matrix:
            self._err(
                "codegen-expression-mismatch", stmt,
                f"statement streams matrix {stmt.matrix!r} but the "
                f"instruction names {instr.matrix!r}")
        batch = self.ir.tier == "batch-chunk"
        self._check_template(stmt, _BATCH_SPMV if batch else _SOLO_SPMV)

    def _check_scalar(self, instr: ScalarOp, stmt: EffectStatement) -> None:
        tier = self.ir.tier
        if tier == "chunk":
            self._err("codegen-expression-mismatch", stmt,
                      "ScalarOps are not chunk-fusable; the chunk tier "
                      "may not emit them")
            return
        self._check_index_kind(stmt, "scalar")
        refs = [instr.src1]
        if instr.src2 is not None:
            refs.append(instr.src2)
        tokens = self._resolve_operands(stmt, refs)
        if any(t is None for t in tokens):
            return
        a = tokens[0]
        b = tokens[1] if len(tokens) > 1 else None
        writes = tuple(stmt.sreg_writes)
        if tier == "loop":
            plan = _loop_scalar_expr(instr.op, a, b)
            if plan is None:
                self._err("codegen-expression-mismatch", stmt,
                          f"scalar op {instr.op.value!r} has no loop "
                          f"codegen lowering")
                return
            guard, expected = plan
            slot = self.reg_slots.get(instr.dst)
            if slot is None or writes != ((instr.dst, f"S[{slot}]"),):
                self._err(
                    "codegen-scalar-slot-mismatch", stmt,
                    f"scalar op writes {writes} but register "
                    f"{instr.dst!r} owns S slot {slot}")
            elif stmt.text != (guard + f"    S[{slot}] = {expected}; "
                               f"W[{slot}] = 1;\n"):
                self._err(
                    "codegen-expression-mismatch", stmt,
                    f"emitted scalar statement {stmt.text!r} differs "
                    f"from the expected lowering")
        else:
            expected = _batch_scalar_expr(instr.op, a, b)
            if expected is None:
                self._err("codegen-expression-mismatch", stmt,
                          f"scalar op {instr.op.value!r} is not batch-"
                          f"chunkable")
                return
            if writes != ((instr.dst, "d[j]"),):
                self._err(
                    "codegen-scalar-slot-mismatch", stmt,
                    f"batched scalar op writes {writes} but must "
                    f"target the {instr.dst!r} register buffer lanes")
        if stmt.expr != expected:
            self._err(
                "codegen-expression-mismatch", stmt,
                f"generated expression {stmt.expr!r} differs from the "
                f"ISA fold {expected!r}")

    def _check_control(self, instr: Control, stmt: EffectStatement) -> None:
        self._check_index_kind(stmt, "control")
        tokens = self._resolve_operands(stmt,
                                        [instr.reg, instr.threshold_reg])
        if any(t is None for t in tokens):
            return
        expected = f"{tokens[0]} < {tokens[1]}"
        if stmt.expr != expected:
            self._err(
                "codegen-expression-mismatch", stmt,
                f"exit test {stmt.expr!r} differs from the ISA "
                f"condition {expected!r}")

    def _check_loop_marker(self, instr: Loop, stmt: EffectStatement) -> None:
        self._check_index_kind(stmt, "loop")
        self._resolve_operands(stmt, [])
        if stmt.bound != int(instr.max_iter):
            self._err(
                "codegen-expression-mismatch", stmt,
                f"nested loop marker records {stmt.bound} trips but "
                f"{instr.name!r} bounds max_iter={instr.max_iter}")

    # -- bounds / alias ---------------------------------------------------
    def _bound_refs(self, stmt: EffectStatement) -> list:
        refs = list(stmt.srcs)
        if stmt.dst is not None and stmt.dst.space != "scalars":
            refs.insert(0, stmt.dst)
        return refs

    def _check_bounds(self, stmt: EffectStatement) -> None:
        for slot, value in stmt.len_slots:
            if (not isinstance(slot, int) or slot < 0
                    or slot >= len(self.ir.lens)
                    or self.ir.lens[slot] != value):
                self._err(
                    "codegen-scalar-slot-mismatch", stmt,
                    f"loop bound reads L slot {slot} as {value} but "
                    f"the runtime L table disagrees")
        index = stmt.index
        batch = int(self.ir.batch)
        if index == "elementwise":
            for ref in self._bound_refs(stmt):
                if stmt.bound > ref.length:
                    self._err(
                        "codegen-index-out-of-bounds", stmt,
                        f"loop runs {stmt.bound} iterations over "
                        f"{ref.space}:{ref.name} of length {ref.length}")
                elif stmt.bound != ref.length:
                    self._err(
                        "codegen-shape-mismatch", stmt,
                        f"loop bound {stmt.bound} does not cover "
                        f"{ref.space}:{ref.name} of length {ref.length}")
        elif index == "flat":
            for ref in self._bound_refs(stmt):
                total = ref.length * batch
                if stmt.bound > total:
                    self._err(
                        "codegen-index-out-of-bounds", stmt,
                        f"flat loop touches {stmt.bound} elements of "
                        f"{ref.space}:{ref.name} holding only {total}")
                elif stmt.bound != total:
                    self._err(
                        "codegen-shape-mismatch", stmt,
                        f"flat bound {stmt.bound} does not cover the "
                        f"{total} elements of {ref.space}:{ref.name}")
        elif index == "laned":
            for ref in self._bound_refs(stmt):
                if stmt.bound > ref.length:
                    self._err(
                        "codegen-index-out-of-bounds", stmt,
                        f"row loop runs {stmt.bound} rows over "
                        f"{ref.space}:{ref.name} of {ref.length}")
                elif stmt.bound != ref.length:
                    self._err(
                        "codegen-shape-mismatch", stmt,
                        f"row bound {stmt.bound} does not cover "
                        f"{ref.space}:{ref.name} of {ref.length}")
            if stmt.lane_bound != batch:
                self._err(
                    "codegen-shape-mismatch", stmt,
                    f"lane loop runs {stmt.lane_bound} lanes on a "
                    f"batch-{batch} machine")
        elif index == "reduce":
            for ref in stmt.srcs:
                if stmt.bound > ref.length:
                    self._err(
                        "codegen-index-out-of-bounds", stmt,
                        f"reduction reads {stmt.bound} elements of "
                        f"{ref.space}:{ref.name} holding {ref.length}")
                elif stmt.bound != ref.length:
                    self._err(
                        "codegen-shape-mismatch", stmt,
                        f"reduction bound {stmt.bound} does not cover "
                        f"{ref.space}:{ref.name} of {ref.length}")
            if (self.ir.tier == "batch-chunk"
                    and stmt.lane_bound != batch):
                self._err(
                    "codegen-shape-mismatch", stmt,
                    f"batched reduction runs {stmt.lane_bound} lanes "
                    f"on a batch-{batch} machine")
        elif index == "gather":
            self._check_gather_bounds(stmt)
        elif index == "scalar":
            if (self.ir.tier == "batch-chunk"
                    and stmt.lane_bound != batch):
                self._err(
                    "codegen-shape-mismatch", stmt,
                    f"scalar lane loop runs {stmt.lane_bound} lanes "
                    f"on a batch-{batch} machine")
        elif index in ("control", "loop"):
            pass
        else:
            self._err("codegen-shape-mismatch", stmt,
                      f"unknown iteration shape {stmt.index!r}")

    def _check_gather_bounds(self, stmt: EffectStatement) -> None:
        if (stmt.spmv_shape is None or stmt.index_arrays is None
                or len(stmt.srcs) != 2 or stmt.dst is None):
            self._err("codegen-shape-mismatch", stmt,
                      "gather statement lacks its CSR shape/index "
                      "record; bounds cannot be proven")
            return
        rows = stmt.bound
        mat, src = stmt.srcs
        col, ip = stmt.index_arrays
        col = np.asarray(col)
        ip = np.asarray(ip)
        if rows != stmt.spmv_shape[0] or stmt.dst.length != rows:
            self._err(
                "codegen-index-out-of-bounds" if stmt.dst.length < rows
                else "codegen-shape-mismatch", stmt,
                f"gather writes {rows} rows into "
                f"{stmt.dst.space}:{stmt.dst.name} of length "
                f"{stmt.dst.length} (matrix shape {stmt.spmv_shape})")
        if ip.shape[0] != rows + 1:
            self._err(
                "codegen-index-out-of-bounds", stmt,
                f"row loop reads ip[0..{rows}] but indptr holds "
                f"{ip.shape[0]} entries")
            return
        if mat.length != stmt.nnz or col.shape[0] != stmt.nnz:
            self._err(
                "codegen-shape-mismatch", stmt,
                f"value/column streams hold {mat.length}/{col.shape[0]} "
                f"entries but the gather claims nnz={stmt.nnz}")
        if (ip.size and (int(ip[0]) != 0 or np.any(np.diff(ip) < 0)
                         or int(ip[-1]) > min(stmt.nnz, col.shape[0]))):
            self._err(
                "codegen-index-out-of-bounds", stmt,
                "indptr is not a monotone [0..nnz] partition; the "
                "k-loop would read outside the value/column streams")
        elif col.size and (int(col.min()) < 0
                           or int(col.max()) >= src.length):
            self._err(
                "codegen-index-out-of-bounds", stmt,
                f"column indices reach {int(col.max())} but the CVB "
                f"source {src.name!r} holds {src.length} elements")
        dst_key = (stmt.dst.space, stmt.dst.name)
        if dst_key in {(ref.space, ref.name) for ref in stmt.srcs}:
            self._err(
                "codegen-alias-hazard", stmt,
                f"gather writes {dst_key} while reading it indirectly; "
                f"row results would feed later rows")
        resource = getattr(self.machine, "matrices", {}).get(stmt.matrix)
        if resource is None:
            self._err(
                "codegen-shape-mismatch", stmt,
                f"machine holds no matrix resource {stmt.matrix!r}")
            return
        if self.ir.tier == "batch-chunk":
            shape = tuple(int(s) for s in resource.shape)
        else:
            shape = tuple(int(s) for s in resource.matrix.shape)
        if shape != tuple(stmt.spmv_shape):
            self._err(
                "codegen-shape-mismatch", stmt,
                f"gather claims matrix shape {stmt.spmv_shape} but the "
                f"machine resource is {shape}")

    # -- write-set soundness ----------------------------------------------
    def _check_writes(self) -> None:
        ir = self.ir
        loc = Location(f"codegen[{ir.tier}]")
        static = static_write_set(self.instrs)
        for space, name in sorted(ir.writes() - static):
            self.report.error(
                "codegen-write-set-miss",
                f"generated code writes {space}:{name} but the static "
                f"write-set omits it; a batch snapshot-restore frame "
                f"would leak that buffer's frozen-lane columns",
                loc)
        if ir.tier != "loop":
            return
        declared = set(ir.reg_writes)
        recorded = {name for stmt in ir.statements
                    for name, _tok in stmt.sreg_writes}
        for name in sorted(recorded - declared):
            self.report.error(
                "codegen-write-set-miss",
                f"statements write scalar register {name!r} but the "
                f"unit's write-back table omits it; the host register "
                f"file would keep the stale value",
                loc)
        for name in sorted(declared - recorded):
            self.report.error(
                "codegen-write-set-miss",
                f"write-back table names scalar register {name!r} that "
                f"no statement writes; the host would write back an "
                f"undefined S slot",
                loc)

    # -- cycle accounting --------------------------------------------------
    def _check_charges(self, loop_meta: list) -> None:
        ir = self.ir
        loc = Location("codegen[loop]")
        expected = loop_charge_slots(self.instrs, self.machine)
        got = list(ir.charges)
        if len(got) != len(expected):
            self.report.error(
                "codegen-cycle-mismatch",
                f"charge table holds {len(got)} CT slot(s) but the "
                f"static decomposition yields {len(expected)}",
                loc)
        else:
            for slot, (want, have) in enumerate(zip(expected, got)):
                w_cycles, w_by_class, w_n, _depth = want
                h_cycles, h_by_class, h_n = have
                if (w_cycles != h_cycles or dict(w_by_class) != dict(h_by_class)
                        or w_n != h_n):
                    self.report.error(
                        "codegen-cycle-mismatch",
                        f"CT slot {slot} charges {h_cycles} cycles over "
                        f"{h_n} instruction(s) ({h_by_class}) but the "
                        f"static cost model derives {w_cycles} over "
                        f"{w_n} ({w_by_class})",
                        loc)
        if tuple(ir.loops) != tuple(loop_meta):
            self.report.error(
                "codegen-cycle-mismatch",
                f"IT trip-counter table {tuple(ir.loops)} disagrees "
                f"with the loop nest {tuple(loop_meta)}",
                loc)


# ---------------------------------------------------------------------------
# public verification entry points

def verify_effect_ir(ir: EffectIR, instrs: list,
                     machine: Any) -> VerificationReport:
    """Verify one generated unit's effect IR against its instructions.

    ``instrs`` is the instruction run (chunk tiers) or the loop body
    (whole-loop tier) the unit was generated from; ``machine`` is the
    machine (live or statically seeded) whose buffers and cost tables
    the generation consulted.
    """
    report = VerificationReport(subject=f"codegen[{ir.tier}]",
                                passes=["codegen"])
    _UnitChecker(ir, instrs, machine, report).check()
    return report


def ensure_codegen_verified(ir: EffectIR, instrs: list, machine: Any, *,
                            context: str = "") -> None:
    """Compile-time guard: accept or reject one generated unit.

    Called by the builders just before handing source to the C
    compiler. Acceptance is memoized on the IR digest, so repeat
    compilations of the same pattern (the common case — the cjit module
    cache exists for the same reason) verify once per process. Raises
    :class:`~repro.exceptions.VerificationError` on rejection.
    """
    digest = ir.digest()
    if _VERIFIED.get(digest):
        return
    report = verify_effect_ir(ir, instrs, machine)
    report.raise_if_failed(context or f"generated {ir.tier} unit rejected")
    if len(_VERIFIED) >= _VERIFIED_CAP:
        _VERIFIED.clear()
    _VERIFIED[digest] = True


# ---------------------------------------------------------------------------
# static lifting: emit effect IR for every unit the backends would fuse,
# without executing anything and without a C toolchain

#: Truthy kernel sentinel: lets the chunkability predicates see an
#: "available" SpMV kernel without cffi. The lifter never compiles or
#: calls anything, so the sentinel is never invoked.
_STATIC_KERNEL = object()


class _StaticResource:
    """Duck-typed :class:`~repro.hw.machine.MatrixResource` stand-in."""

    def __init__(self, name: str, matrix: Any, spmv_cycles: int,
                 cvb_depth: int):
        self.name = name
        self.matrix = matrix
        self.spmv_cycles = int(spmv_cycles)
        self.cvb_depth = int(cvb_depth)
        self.ckernel = _STATIC_KERNEL
        self._carrays = (
            np.ascontiguousarray(matrix.data, dtype=np.float64),
            np.ascontiguousarray(matrix.indices, dtype=np.int64),
            np.ascontiguousarray(matrix.indptr, dtype=np.int64))


class _StaticBatchResource:
    """Duck-typed :class:`~repro.hw.batched.BatchMatrixResource`."""

    def __init__(self, name: str, matrix: Any, spmv_cycles: int,
                 cvb_depth: int, batch: int):
        self.name = name
        self.shape = tuple(int(s) for s in matrix.shape)
        self.spmv_cycles = int(spmv_cycles)
        self.cvb_depth = int(cvb_depth)
        self._kernel = _STATIC_KERNEL
        self._carrays = (
            np.zeros((int(matrix.data.size), int(batch))),
            np.ascontiguousarray(matrix.indices, dtype=np.int64),
            np.ascontiguousarray(matrix.indptr, dtype=np.int64))


def _static_resources(compiled: Any, matrices: dict,
                      batch: int | None = None) -> dict:
    ctx = compiled.context
    resources: dict = {}
    for name, matrix in matrices.items():
        try:
            spmv = ctx.spmv_cycles(name)
            depth = ctx.cvb_depth(name)
        except KeyError:
            continue
        if batch is None:
            resources[name] = _StaticResource(name, matrix, spmv, depth)
        else:
            resources[name] = _StaticBatchResource(name, matrix, spmv,
                                                   depth, batch)
    return resources


def _seed_hbm(machine: Any, compiled: Any, batch: int | None) -> None:
    ctx = compiled.context
    contract = contract_for_algorithm(getattr(compiled, "algorithm",
                                              "admm"))
    for name in sorted(contract.hbm):
        try:
            length = int(ctx.vector_length(name))
        except KeyError:
            continue
        machine.hbm[name] = (np.zeros(length) if batch is None
                             else np.zeros((length, batch)))
    for name in sorted(contract.scalars):
        if batch is None:
            machine.scalars[name] = 0.0
        else:
            machine.scalar_buffer(name)


def _prepare_buffers(machine: Any, items: list,
                     batch: int | None) -> None:
    """Program-order walk creating every buffer the builders resolve.

    Mirrors the executors' lazy ``_dst_buffer`` creation so that by
    lift time every operand is 'resident' exactly as it would be when
    the runtime builder binds — same names, same lengths."""

    def vec(name: str) -> int | None:
        for space in (machine.vb, machine.cvb, machine.hbm):
            if name in space:
                return int(space[name].shape[0])
        return None

    def make(space: dict, name: str, length: int) -> None:
        shape = (length,) if batch is None else (length, batch)
        buf = space.get(name)
        if not (isinstance(buf, np.ndarray) and buf.shape == shape):
            space[name] = np.zeros(shape)

    for item in items:
        if isinstance(item, Loop):
            _prepare_buffers(machine, item.body, batch)
        elif isinstance(item, DataTransfer):
            length = vec(item.name)
            if length is None:
                continue
            if item.direction == "load":
                make(machine.vb, item.name, length)
            else:
                make(machine.hbm, item.name, length)
        elif isinstance(item, ScalarOp):
            if batch is None:
                machine.scalars.setdefault(item.dst, 0.0)
                for ref in (item.src1, item.src2):
                    if isinstance(ref, str):
                        machine.scalars.setdefault(ref, 0.0)
            else:
                machine.scalar_buffer(item.dst)
                for ref in (item.src1, item.src2):
                    if isinstance(ref, str):
                        machine.scalar_buffer(ref)
        elif isinstance(item, VectorOp):
            for ref in (item.alpha, item.beta):
                if isinstance(ref, str):
                    if batch is None:
                        machine.scalars.setdefault(ref, 0.0)
                    else:
                        machine.scalar_buffer(ref)
            if item.op is VectorOpKind.DOT:
                if batch is None:
                    machine.scalars.setdefault(item.dst, 0.0)
                else:
                    machine.scalar_buffer(item.dst)
            else:
                length = vec(item.srcs[0]) if item.srcs else None
                if length is not None:
                    make(machine.vb, item.dst, length)
        elif isinstance(item, VecDup):
            length = vec(item.src)
            if length is not None:
                make(machine.cvb, item.cvb, length)
        elif isinstance(item, SpMV):
            resource = machine.matrices.get(item.matrix)
            if resource is not None:
                rows = (resource.shape[0] if batch is not None
                        else resource.matrix.shape[0])
                make(machine.vb, item.dst, int(rows))


def _lift_chunk(executor: Any, builder_cls: Any, run: list,
                units: list, skipped: list) -> None:
    builder = builder_cls(executor)
    try:
        for instr in run:
            builder.emit(instr)
    except Exception:
        # The runtime falls back to numpy closures on any emit
        # failure; an unliftable run is an unverified-but-unfused run,
        # not a defect. Count it so coverage loss is visible.
        skipped[0] += 1
        return
    units.append((builder.effect_ir(), run, executor.machine))


def _collect_chunk_units(executor: Any, chunkable: Any, builder_cls: Any,
                         segment: list, units: list,
                         skipped: list) -> None:
    i, n = 0, len(segment)
    while i < n:
        j = i
        while j < n and chunkable(executor, segment[j]):
            j += 1
        if j - i >= 2:
            _lift_chunk(executor, builder_cls, segment[i:j], units,
                        skipped)
        i = max(j, i + 1)


def _solo_units(executor: CompiledExecutor, items: list, units: list,
                skipped: list) -> None:
    segment: list = []

    def flush() -> None:
        nonlocal segment
        if segment:
            _collect_chunk_units(executor, _chunkable, _ChunkBuilder,
                                 segment, units, skipped)
            segment = []

    for item in items:
        if isinstance(item, Loop):
            flush()
            builder = _LoopBuilder(executor)
            try:
                builder.emit_body_ir(item.body)
            except Exception:
                # Mirrors _fuse_loop: an unfusable body stays on the
                # node path, whose segments chunk-fuse individually.
                skipped[0] += 1
                _solo_units(executor, item.body, units, skipped)
            else:
                units.append((builder.effect_ir(), item.body,
                              executor.machine))
        elif isinstance(item, Control):
            flush()
        else:
            segment.append(item)
    flush()


def _batch_units(executor: BatchExecutor, items: list, units: list,
                 skipped: list) -> None:
    segment: list = []

    def flush() -> None:
        nonlocal segment
        if segment:
            _collect_chunk_units(executor, _batch_chunkable,
                                 _BatchChunkBuilder, segment, units,
                                 skipped)
            segment = []

    for item in items:
        if isinstance(item, Loop):
            flush()
            _batch_units(executor, item.body, units, skipped)
        elif isinstance(item, Control):
            flush()
        else:
            segment.append(item)
    flush()


def verify_codegen(compiled: Any, matrices: dict, *,
                   batch: int = 2) -> VerificationReport:
    """Statically lift and verify every generated-C unit of a program.

    ``compiled`` is a :class:`~repro.hw.compiler.CompiledProgram`;
    ``matrices`` maps streamed-matrix names (``P``/``A``/``At``) to
    their :class:`~repro.sparse.csr.CSRMatrix` structures. Both the
    solo tiers (straight-line chunks + whole-loop fusion) and the
    batched tier (lane-minor chunks at the given ``batch`` width) are
    lifted exactly as the runtime builders would emit them — same
    predicates, same builders — but against statically seeded machines,
    so this needs no C toolchain and runs identically in a
    cffi-less environment.
    """
    report = VerificationReport(
        subject=f"codegen:{getattr(compiled, 'algorithm', 'admm')}",
        passes=["codegen"])
    units: list = []
    skipped = [0]

    solo_machine = Machine(compiled.context.c,
                           _static_resources(compiled, matrices))
    _seed_hbm(solo_machine, compiled, None)
    _prepare_buffers(solo_machine, compiled.program.instructions, None)
    solo_exec = CompiledExecutor(solo_machine, jit=False, verify=False)
    _solo_units(solo_exec, compiled.program.instructions, units, skipped)

    batch_machine = BatchMachine(
        compiled.context.c,
        _static_resources(compiled, matrices, batch=batch), batch)
    _seed_hbm(batch_machine, compiled, batch)
    _prepare_buffers(batch_machine, compiled.program.instructions, batch)
    batch_exec = BatchExecutor(batch_machine, jit=False, verify=False)
    _batch_units(batch_exec, compiled.program.instructions, units,
                 skipped)

    counts = {"chunk": 0, "loop": 0, "batch-chunk": 0}
    for ir, instrs, machine in units:
        counts[ir.tier] = counts.get(ir.tier, 0) + 1
        report.extend(verify_effect_ir(ir, instrs, machine))
    report.info(
        "codegen-coverage",
        f"analyzed {len(units)} generated unit(s): "
        f"{counts.get('chunk', 0)} chunk, {counts.get('loop', 0)} "
        f"whole-loop, {counts.get('batch-chunk', 0)} batch-chunk "
        f"(batch={batch}); {skipped[0]} run(s) stay on the closure "
        f"fallback",
        Location("codegen"))
    return report


def codegen_report_for_artifact(artifact: Any, problem: Any, *,
                                batch: int = 2) -> VerificationReport:
    """Codegen pass for a served artifact bound to one problem's
    structure (the lanes of a batch share it by fingerprint)."""
    matrices = {"P": problem.P, "A": problem.A,
                "At": problem.A.transpose()}
    return verify_codegen(artifact.compiled, matrices, batch=batch)
