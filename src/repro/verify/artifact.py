"""Composite verification of full artifacts (program + customization).

These are the entry points the pre-execution guards call: one function
that runs every static pass over a :class:`~repro.hw.compiler.
CompiledProgram` or a :class:`~repro.serving.arch_cache.ArchArtifact`
and returns one merged report. ``ensure_artifact_verified`` memoizes
acceptance on the artifact itself so the hot solve path pays the check
once per cached artifact, not once per request.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..hw.compiler import CompiledProgram
from .cycles import verify_compiled
from .diagnostics import VerificationReport, Location
from .program import ProgramContract, contract_for_algorithm, verify_program
from .schedule_check import verify_customization

if TYPE_CHECKING:  # runtime import would be circular via repro.serving
    from ..serving.arch_cache import ArchArtifact

__all__ = ["verify_compiled_program", "verify_artifact",
           "ensure_artifact_verified"]


def verify_compiled_program(compiled: CompiledProgram,
                            contract: ProgramContract | None = None,
                            *, artifact: str = "program"
                            ) -> VerificationReport:
    """Program pass + cycle-cost pass over one compiled program.

    The host contract defaults to the one matching the program's
    algorithm (``compiled.algorithm``): the ADMM download contract or
    the PDQP one.
    """
    if contract is None:
        contract = contract_for_algorithm(
            getattr(compiled, "algorithm", "admm"))
    report = verify_program(compiled.program, contract,
                            artifact=artifact)
    report.extend(verify_compiled(compiled))
    return report


def verify_artifact(artifact: ArchArtifact) -> VerificationReport:
    """All passes over a serving :class:`ArchArtifact`.

    Checks the compiled program, every matrix's schedule and CVB
    layout, and the consistency between the program's cost context and
    the customization it claims to embody (an artifact stitched
    together from mismatched pieces mis-costs every solve).
    """
    custom = artifact.customization
    report = VerificationReport(
        subject=f"artifact:{getattr(artifact.fingerprint, 'key', '?')}")
    report.extend(verify_compiled_program(artifact.compiled))
    report.extend(verify_customization(custom))

    ctx = artifact.compiled.context
    if ctx.c != custom.c:
        report.error(
            "context-mismatch",
            f"compiled cost context is for C={ctx.c} but the "
            f"customization targets C={custom.c}",
            Location("cycles"))
    for name in sorted(custom.matrices):
        m = custom.matrices[name]
        try:
            ctx_spmv = ctx.spmv_cycles(name)
            ctx_depth = ctx.cvb_depth(name)
        except KeyError:
            report.error(
                "context-mismatch",
                f"compiled cost context knows no matrix {name!r}",
                Location("cycles", name))
            continue
        if ctx_spmv != m.spmv_cycles:
            report.error(
                "context-mismatch",
                f"compiled context charges {ctx_spmv} SpMV cycles for "
                f"{name!r} but its schedule takes {m.spmv_cycles}",
                Location("cycles", name),
                hint="the program was cost-attached for a different "
                     "schedule")
        if ctx_depth != m.duplication_cycles:
            report.error(
                "context-mismatch",
                f"compiled context charges CVB depth {ctx_depth} for "
                f"{name!r} but its layout has depth "
                f"{m.duplication_cycles}",
                Location("cycles", name),
                hint="the program was cost-attached for a different "
                     "CVB layout")
    return report


def ensure_artifact_verified(artifact: ArchArtifact, *,
                             context: str = "") -> None:
    """Run :func:`verify_artifact` once per artifact; raise on errors.

    Raises :class:`~repro.exceptions.VerificationError` (carrying the
    report) when any pass finds an ERROR diagnostic. Acceptance is
    memoized on ``artifact.verified`` so repeated solves against the
    same cached artifact skip the re-check.
    """
    if getattr(artifact, "verified", False):
        return
    report = verify_artifact(artifact)
    report.raise_if_failed(context or "artifact rejected")
    artifact.verified = True
