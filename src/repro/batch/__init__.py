"""repro.batch — batched lockstep execution of same-structure QPs.

One compiled instruction stream drives B problem instances in lockstep
over ``(B, n)`` buffers (:mod:`repro.hw.batched`), with per-instance
convergence masking and per-instance cycle accounting
(:mod:`repro.batch.runner`), fed by a deadline-aware coalescing queue
(:mod:`repro.batch.coalescer`). See ``docs/BATCH.md``.
"""

from .coalescer import Coalescer, PendingEntry
from .runner import (LANE_DEADLINE, LANE_FAULT, BatchAccelerator,
                     BatchResult, solve_batch_job)

__all__ = [
    "BatchAccelerator",
    "BatchResult",
    "Coalescer",
    "PendingEntry",
    "LANE_DEADLINE",
    "LANE_FAULT",
    "solve_batch_job",
]
