"""Deadline-aware request coalescing for batched lockstep solves.

The :class:`Coalescer` groups pending requests by a caller-supplied
key (the serving layer keys by ``(fingerprint.key, algorithm)`` — two
requests ever co-batch only when one cached artifact can drive both in
lockstep) and decides *when* a group ships:

* a group that reaches ``max_batch`` entries flushes immediately —
  that is the widest the virtual fleet gets;
* a group whose oldest entry has waited ``max_linger`` seconds flushes
  partial — latency is bounded even on a trickle of requests;
* a group holding an entry whose absolute deadline is within
  ``deadline_headroom`` flushes early — a request is never held in the
  queue past the point where waiting would eat its own deadline.

The clock is injectable so tests drive linger/deadline expiry
deterministically; nothing here sleeps or spawns threads — callers
poll :meth:`due` (and :meth:`next_due_at` to size their wait).
"""

from __future__ import annotations

import time
from collections import OrderedDict

__all__ = ["Coalescer", "PendingEntry"]


class PendingEntry:
    """One queued request: opaque payload plus its timing metadata."""

    __slots__ = ("item", "enqueued_at", "deadline_at")

    def __init__(self, item, enqueued_at: float, deadline_at=None):
        self.item = item
        self.enqueued_at = enqueued_at
        self.deadline_at = deadline_at


class Coalescer:
    """Same-key batching queue with linger and deadline bounds.

    Parameters
    ----------
    max_batch:
        Flush a group the moment it holds this many entries.
    max_linger:
        Seconds the oldest entry of a group may wait before the group
        flushes partial.
    deadline_headroom:
        Flush a group early when any entry's ``deadline_at`` is within
        this many seconds — the batch must ship while the lane can
        still make its deadline. Defaults to ``max_linger``.
    clock:
        Monotonic time source (injectable for tests).
    on_flush:
        Optional callback ``(reason, key, items)`` invoked for every
        group the coalescer releases, with ``reason`` one of
        ``"full"`` / ``"due"`` / ``"drain"`` — callers hang flush
        accounting (and drain audits: every queued lane must be
        released exactly once) off it without wrapping every call
        site.
    """

    def __init__(self, max_batch: int = 32, max_linger: float = 0.005,
                 deadline_headroom=None, clock=time.monotonic,
                 on_flush=None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_linger < 0.0:
            raise ValueError("max_linger must be >= 0")
        self.max_batch = int(max_batch)
        self.max_linger = float(max_linger)
        self.deadline_headroom = (float(deadline_headroom)
                                  if deadline_headroom is not None
                                  else float(max_linger))
        self._clock = clock
        self.on_flush = on_flush
        self._groups: OrderedDict = OrderedDict()

    def _emit(self, reason: str, key, items) -> None:
        if self.on_flush is not None:
            self.on_flush(reason, key, items)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Total queued entries across all groups."""
        return sum(len(entries) for entries in self._groups.values())

    def offer(self, key, item, deadline_at=None):
        """Queue ``item`` under ``key``.

        Returns the full batch (list of payloads) when this entry
        makes the group reach ``max_batch``, else ``None``.
        """
        entry = PendingEntry(item, self._clock(), deadline_at)
        group = self._groups.setdefault(key, [])
        group.append(entry)
        if len(group) >= self.max_batch:
            del self._groups[key]
            items = [e.item for e in group]
            self._emit("full", key, items)
            return items
        return None

    def _group_due(self, entries, now: float) -> bool:
        if now - entries[0].enqueued_at >= self.max_linger:
            return True
        for entry in entries:
            if (entry.deadline_at is not None
                    and entry.deadline_at - now <= self.deadline_headroom):
                return True
        return False

    def due(self, now=None):
        """Pop and return every group due to flush: ``[(key, items)]``.

        A group is due when its oldest entry has lingered past
        ``max_linger`` or any entry's deadline is within
        ``deadline_headroom``. Groups stay queued otherwise.
        """
        now = self._clock() if now is None else now
        flushed = []
        for key in list(self._groups):
            entries = self._groups[key]
            if self._group_due(entries, now):
                del self._groups[key]
                items = [e.item for e in entries]
                self._emit("due", key, items)
                flushed.append((key, items))
        return flushed

    def next_due_at(self, now=None):
        """Earliest absolute time any queued group becomes due, or
        ``None`` when the queue is empty. Callers use it to bound
        their poll/wait interval."""
        now = self._clock() if now is None else now
        soonest = None
        for entries in self._groups.values():
            linger_at = entries[0].enqueued_at + self.max_linger
            candidate = linger_at
            for entry in entries:
                if entry.deadline_at is not None:
                    flush_at = entry.deadline_at - self.deadline_headroom
                    if flush_at < candidate:
                        candidate = flush_at
            if soonest is None or candidate < soonest:
                soonest = candidate
        return soonest

    def flush_all(self):
        """Pop everything immediately: ``[(key, items)]`` in FIFO
        group order. Used at shutdown and by the synchronous batch
        API once all requests of one call are queued."""
        flushed = [(key, [e.item for e in entries])
                   for key, entries in self._groups.items()]
        self._groups.clear()
        for key, items in flushed:
            self._emit("drain", key, items)
        return flushed

    def drain(self):
        """Alias of :meth:`flush_all` for shutdown call sites: release
        every queued lane (emitting ``"drain"`` flushes) so nothing is
        left behind when intake stops. Returns ``[(key, items)]``."""
        return self.flush_all()
