"""Batched lockstep solves: B same-structure QPs as one vectorized run.

:class:`BatchAccelerator` drives the compiled program of one cached
artifact over a :class:`~repro.hw.batched.BatchMachine`: a single
instruction stream advances B problem instances in lockstep, with
per-instance convergence masking inside the ADMM / PDHG loops
(converged lanes freeze, the loop exits when the mask empties) and the
same host-side segment drivers the solo accelerators use — adaptive
rho (ADMM) and restarts / primal-weight rebalancing (PDQP) — applied
per lane with the exact float paths factored out of
:mod:`repro.hw.accelerator` and :mod:`repro.hw.pdqp`.

Per-lane setup reuses the solo accelerators verbatim: each lane
constructs its own :class:`~repro.hw.accelerator.RSQPAccelerator` (or
:class:`~repro.hw.pdqp.PDQPAccelerator`) for host scaling, rho/step
selection and the HBM download, and the batch machine stacks those
lanes' HBM images and scalar registers. That is what makes the batched
run bit-identical to B solo runs — there is no separate batched setup
path to drift.

Cycle accounting: the returned :class:`BatchResult` carries the wall
stats of the B-wide virtual fleet (every lockstep trip charges the
stream once) *and* a per-lane :class:`~repro.hw.accelerator.
RSQPResult` whose ``total_cycles`` are that lane's effective cycles —
the analytic count for its own trip/refresh tallies, equal to what the
lane's solo run measures.

Faults and deadlines address lanes individually: per-lane injectors
corrupt only their lane's rows, a corrupted or deadline-expired lane
is frozen and reported in ``lane_errors`` while the rest of the batch
keeps running (the serving layer re-solves such lanes through the solo
resilient path).
"""

from __future__ import annotations

import time

import numpy as np

from ..hw.accelerator import (RSQPAccelerator, RSQPResult,
                              adaptive_rho_estimate, jacobi_preconditioner,
                              rho_vector_for)
from ..hw.batched import BatchExecutor, BatchMachine, BatchMatrixResource
from ..hw.compiler import ADMM_LOOP, PCG_LOOP, PDHG_LOOP
from ..hw.frequency import fmax_mhz
from ..hw.machine import ExecutionStats
from ..hw.pdqp import PDQPAccelerator, pdqp_step_sizes, rebalanced_omega
from ..hw.power import fpga_power_watts
from ..qp import ruiz_equilibrate_batch
from ..solver import OSQPSettings

__all__ = ["BatchResult", "BatchAccelerator", "solve_batch_job"]

#: ``lane_errors`` entries a frozen lane can carry.
LANE_FAULT = "fault"
LANE_DEADLINE = "deadline"


class BatchResult:
    """Per-lane results plus wall accounting of the virtual fleet.

    ``results[b]`` is the lane's :class:`~repro.hw.accelerator.
    RSQPResult` (effective per-instance cycles), or ``None`` when the
    lane froze early — then ``lane_errors[b]`` says why
    (``"fault"`` / ``"deadline"``).
    """

    def __init__(self, results: list, lane_errors: list, *,
                 wall_stats: ExecutionStats, fmax_mhz: float,
                 power_watts: float, algorithm: str):
        self.results = results
        self.lane_errors = lane_errors
        self.batch = len(results)
        self.wall_stats = wall_stats
        self.wall_cycles = int(wall_stats.total_cycles)
        self.fmax_mhz = fmax_mhz
        self.power_watts = power_watts
        self.algorithm = algorithm

    @property
    def wall_seconds(self) -> float:
        """Modeled wall time of the whole batch at the design clock."""
        return self.wall_cycles / (self.fmax_mhz * 1e6)

    @property
    def lane_cycles(self) -> tuple:
        """Effective per-instance cycles (0 for frozen lanes)."""
        return tuple(0 if r is None else r.total_cycles
                     for r in self.results)

    @property
    def cycles_per_instance(self) -> float:
        """Wall cycles amortized over the batch."""
        return self.wall_cycles / max(self.batch, 1)

    @property
    def lockstep_speedup(self) -> float:
        """Sum of per-lane effective cycles over wall cycles — how many
        serial solo runs one batched run replaced, in cycle terms."""
        total = sum(self.lane_cycles)
        return total / self.wall_cycles if self.wall_cycles else 0.0


class BatchAccelerator:
    """One compiled instruction stream driving B lockstep instances.

    Parameters mirror the solo accelerators where they overlap;
    ``problems`` must share one structure (the artifact's fingerprint
    guarantees it on the serving path; the stacked matrices verify the
    sparsity pattern regardless). ``injectors`` / ``deadline_ats`` are
    optional per-lane lists (``None`` entries disable the feature for
    that lane; ``deadline_ats`` holds absolute ``time.perf_counter()``
    timestamps).
    """

    def __init__(self, problems, customization, settings, *,
                 compiled, algorithm: str = "admm",
                 pcg_eps: float = 1e-7, max_pcg_iter: int = 500,
                 warm_starts=None, injectors=None, deadline_ats=None):
        problems = list(problems)
        if not problems:
            raise ValueError("batch needs at least one problem")
        batch = len(problems)
        self.batch = batch
        self.algorithm = algorithm
        self.settings = settings
        self.customization = customization
        self.compiled = compiled
        warm_starts = list(warm_starts or [None] * batch)
        self.injectors = list(injectors or [None] * batch)
        self.deadline_ats = list(deadline_ats or [None] * batch)
        if not (len(warm_starts) == len(self.injectors)
                == len(self.deadline_ats) == batch):
            raise ValueError("per-lane argument lists must match the "
                             "number of problems")

        # Per-lane solo accelerators perform host setup + download with
        # exactly the solo float paths; the batch machine stacks them.
        # The one vectorized piece of setup is Ruiz equilibration —
        # computed for all lanes at once (bit-identical per lane to the
        # solo call, see :func:`repro.qp.ruiz_equilibrate_batch`) and
        # injected into each lane's host setup. Structure mismatches
        # fall back to per-lane scaling; the stacked matrix resources
        # below still enforce the shared-sparsity precondition.
        scalings = [None] * batch
        if batch > 1:
            try:
                scalings = ruiz_equilibrate_batch(
                    problems, settings.scaling)
            except ValueError:
                pass
        self.lanes = []
        for problem, warm, scaling in zip(problems, warm_starts, scalings):
            if algorithm == "pdqp":
                lane = PDQPAccelerator(
                    problem, customization=customization,
                    settings=settings, compiled=compiled,
                    backend="interpret", verify=False,
                    scaling=scaling)
            else:
                lane = RSQPAccelerator(
                    problem, customization=customization,
                    settings=settings, pcg_eps=pcg_eps,
                    max_pcg_iter=max_pcg_iter, compiled=compiled,
                    backend="interpret", verify=False,
                    scaling=scaling)
            if warm is not None:
                x0, y0 = warm
                lane.warm_start(x=x0, y=y0)
            self.lanes.append(lane)
        first = self.lanes[0]
        for lane in self.lanes[1:]:
            if (lane.work.n, lane.work.m) != (first.work.n, first.work.m):
                raise ValueError(
                    "batched lanes disagree on problem dimensions: "
                    f"({lane.work.n}, {lane.work.m}) vs "
                    f"({first.work.n}, {first.work.m})")

        self.machine = BatchMachine(customization.c, {
            name: BatchMatrixResource(
                name, [lane.machine.matrices[name] for lane in self.lanes])
            for name in ("P", "A", "At")}, batch)
        for b, lane in enumerate(self.lanes):
            for name, values in lane.machine.hbm.items():
                self.machine.write_hbm_lane(name, b, values)
            for name, value in lane.machine.scalars.items():
                self.machine.set_scalar_lane(name, b, value)
        if any(inj is not None for inj in self.injectors):
            self.machine.injectors = self.injectors
        self.executor = BatchExecutor(self.machine)

    # ------------------------------------------------------------------
    def _run(self, program, mask) -> None:
        self.executor.run(program, mask)

    def _expire_deadlines(self, active, missed) -> None:
        if not any(d is not None for d in self.deadline_ats):
            return
        now = time.perf_counter()
        for b, deadline_at in enumerate(self.deadline_ats):
            if deadline_at is not None and active[b] and now > deadline_at:
                active[b] = False
                missed[b] = True

    def _guard_lanes(self, active, faulted, state_names) -> None:
        """Freeze lanes whose persistent state went non-finite.

        Batched runs do not roll back (the serving layer re-solves a
        faulted lane through the solo resilient path, which does);
        detection mirrors the solo `_state_corrupted` finiteness
        checks, applied per lane.
        """
        if self.machine.injectors is None:
            return
        machine = self.machine
        worst = machine.scalars.get("worst")
        for b in np.flatnonzero(active):
            bad = worst is not None and not np.isfinite(worst[b])
            if not bad:
                for name in state_names:
                    buf = machine.vb.get(name)
                    if buf is not None and not np.all(
                            np.isfinite(buf[:, b])):
                        bad = True
                        break
            if bad:
                active[b] = False
                faulted[b] = True

    # ------------------------------------------------------------------
    def run(self) -> BatchResult:
        from ..hw.isa import DataTransfer, Loop, Program

        machine = self.machine
        sections = self.compiled._sections
        batch = self.batch
        active = np.ones(batch, dtype=bool)
        converged = np.zeros(batch, dtype=bool)
        missed = np.zeros(batch, dtype=bool)
        faulted = np.zeros(batch, dtype=bool)
        everyone = np.ones(batch, dtype=bool)

        if self.algorithm == "pdqp":
            body_key, loop_name = "pdhg_body", PDHG_LOOP
            interval = max(self.settings.restart_interval, 1)
            state_names = PDQPAccelerator._PDHG_STATE
            self._store_program = Program(
                [DataTransfer("store", name) for name in ("x", "y")])
            self._anchor_program = Program(
                [DataTransfer("load", name) for name in ("x0", "y0")])
        else:
            body_key, loop_name = "admm_body", ADMM_LOOP
            interval = max(self.settings.adaptive_rho_interval, 1)
            state_names = RSQPAccelerator._ADMM_STATE
            self._refresh_program = Program(
                [DataTransfer("load", name)
                 for name in ("rho", "rho_inv", "minv")])
        self._lane_refreshes = np.zeros(batch, dtype=np.int64)

        self._run(Program(list(sections["prologue"])), everyone)
        remaining = self.settings.max_iter
        while remaining > 0 and active.any():
            self._expire_deadlines(active, missed)
            if not active.any():
                break
            segment = min(interval, remaining)
            before = machine.stats.loop_iterations.get(loop_name, 0)
            self._run(Program([Loop(body=sections[body_key],
                                    max_iter=segment, name=loop_name)]),
                      active)
            executed = machine.stats.loop_iterations.get(loop_name,
                                                         0) - before
            self._guard_lanes(active, faulted, state_names)
            remaining -= executed
            worst = machine.scalars.get("worst")
            if worst is not None:
                with np.errstate(invalid="ignore"):
                    done = active & (worst < 1.0)
                converged |= done
                active &= ~done
            if not active.any():
                break
            if executed < segment:  # defensive: mirrors the solo loop
                break
            if remaining > 0:
                if self.algorithm == "pdqp":
                    self._restart_lanes(active)
                elif self.settings.adaptive_rho:
                    self._update_rho_lanes(active)
        self._run(Program(list(sections["epilogue"])), everyone)
        return self._collect(converged, missed, faulted)

    # -- ADMM host driver (per lane) ------------------------------------
    def _update_rho_lanes(self, active) -> None:
        machine = self.machine
        tol = self.settings.adaptive_rho_tolerance
        any_update = False
        for b in np.flatnonzero(active):
            lane = self.lanes[b]
            estimate = adaptive_rho_estimate(
                lane.rho,
                machine.scalar_lane("rp", b, 0.0),
                machine.scalar_lane("rdual", b, 0.0),
                machine.scalar_lane("npz", b, 0.0),
                machine.scalar_lane("nd_all", b, 0.0))
            if not (estimate > tol * lane.rho
                    or estimate < lane.rho / tol):
                continue
            lane.rho = estimate
            lane.rho_vec = rho_vector_for(lane.work, estimate)
            hbm = machine.hbm
            hbm["rho"][:, b] = lane.rho_vec
            hbm["rho_inv"][:, b] = 1.0 / lane.rho_vec
            hbm["minv"][:, b] = jacobi_preconditioner(
                lane.work, lane.settings.sigma, lane.rho_vec)
            lane.rho_updates += 1
            self._lane_refreshes[b] += 1
            any_update = True
        if any_update:
            # One masked reload refreshes every active lane; lanes whose
            # rho did not change reload bit-identical data (harmless),
            # and the wall pays the transfer once.
            self._run(self._refresh_program, active)

    # -- PDQP host driver (per lane) ------------------------------------
    def _restart_lanes(self, active) -> None:
        machine = self.machine
        self._run(self._store_program, active)
        hbm = machine.hbm
        for b in np.flatnonzero(active):
            hbm["x0"][:, b] = hbm["x"][:, b]
            hbm["y0"][:, b] = hbm["y"][:, b]
        self._run(self._anchor_program, active)
        machine.scalar_buffer("hk")[active] = 2.0
        self._lane_refreshes[active] += 1
        for b in np.flatnonzero(active):
            self.lanes[b].restarts += 1
        if not self.settings.omega_adaptive:
            return
        tol = self.settings.omega_tolerance
        for b in np.flatnonzero(active):
            lane = self.lanes[b]
            estimate = rebalanced_omega(
                lane.omega,
                machine.scalar_lane("rp", b, 0.0),
                machine.scalar_lane("rdual", b, 0.0),
                machine.scalar_lane("npz", b, 0.0),
                machine.scalar_lane("nd_all", b, 0.0))
            if not (estimate > tol * lane.omega
                    or estimate < lane.omega / tol):
                continue
            lane.omega = estimate
            lane.tau, lane.sigma = pdqp_step_sizes(
                lane.omega, lane.norm_a, lane.lam_p,
                lane.settings.tau_scale)
            machine.set_scalar_lane("neg_tau", b, -lane.tau)
            machine.set_scalar_lane("sigma", b, lane.sigma)
            machine.set_scalar_lane("sigma_inv", b, 1.0 / lane.sigma)
            machine.set_scalar_lane("neg_sigma", b, -lane.sigma)
            lane.omega_updates += 1

    # ------------------------------------------------------------------
    def _collect(self, converged, missed, faulted) -> BatchResult:
        machine = self.machine
        arch = self.customization.architecture
        clock = fmax_mhz(arch)
        power = fpga_power_watts(arch)
        is_pdqp = self.algorithm == "pdqp"
        loop_name = PDHG_LOOP if is_pdqp else ADMM_LOOP
        lane_outer = machine.lane_loop_iterations.get(
            loop_name, np.zeros(self.batch, dtype=np.int64))
        lane_pcg = machine.lane_loop_iterations.get(
            PCG_LOOP, np.zeros(self.batch, dtype=np.int64))
        results: list = []
        lane_errors: list = []
        for b, lane in enumerate(self.lanes):
            if faulted[b] or missed[b]:
                results.append(None)
                lane_errors.append(LANE_FAULT if faulted[b]
                                   else LANE_DEADLINE)
                continue
            lane_errors.append(None)
            outer = int(lane_outer[b])
            pcg = int(lane_pcg[b])
            if is_pdqp:
                effective = lane.estimate_cycles(
                    outer, restarts=int(self._lane_refreshes[b]))
            else:
                effective = lane.estimate_cycles(
                    outer, pcg, rho_updates=int(self._lane_refreshes[b]))
            injector = self.injectors[b]
            events = tuple(injector.events) if injector is not None else ()
            loops = {loop_name: outer}
            if not is_pdqp:
                loops[PCG_LOOP] = pcg
            stats = ExecutionStats(
                total_cycles=effective,
                by_class={}, instructions_executed=0,
                loop_iterations=loops)
            results.append(RSQPResult(
                x=lane.scaling.unscale_x(machine.read_hbm_lane("x", b)),
                y=lane.scaling.unscale_y(machine.read_hbm_lane("y", b)),
                z=lane.scaling.unscale_z(machine.read_hbm_lane("z", b)),
                converged=bool(converged[b]),
                admm_iterations=outer,
                pcg_iterations=pcg if not is_pdqp else 0,
                total_cycles=effective,
                fmax_mhz=clock, power_watts=power,
                stats=stats, fault_events=events,
                algorithm=self.algorithm,
                restarts=(int(self._lane_refreshes[b]) if is_pdqp
                          else 0)))
        return BatchResult(results, lane_errors,
                           wall_stats=machine.stats,
                           fmax_mhz=clock, power_watts=power,
                           algorithm=self.algorithm)


def solve_batch_job(problems, artifact, settings: OSQPSettings,
                    warm_starts=None, pcg_eps: float = 1e-7,
                    verify: bool = True, injectors=None,
                    deadline_ats=None) -> BatchResult:
    """Bind one cached artifact to B same-structure problems and run.

    The batched analogue of :func:`repro.serving.pool.solve_job`:
    verification runs once per batch artifact
    (:func:`repro.verify.ensure_batch_verified` — memoized static
    program checks plus lane-compatibility guards), and the algorithm
    is dispatched from the artifact exactly like the solo path.
    """
    problems = list(problems)
    if verify:
        from ..verify import ensure_batch_verified
        ensure_batch_verified(artifact, problems)
    algorithm = getattr(artifact, "algorithm", "admm")
    if algorithm == "pdqp":
        from ..solver.algorithms import get_algorithm
        settings = get_algorithm("pdqp").coerce_settings(settings)
    accelerator = BatchAccelerator(
        problems, artifact.customization, settings,
        compiled=artifact.compiled, algorithm=algorithm,
        pcg_eps=pcg_eps, max_pcg_iter=artifact.max_pcg_iter,
        warm_starts=warm_starts, injectors=injectors,
        deadline_ats=deadline_ats)
    return accelerator.run()
