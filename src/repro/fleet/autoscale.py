"""Architecture autoscaling: commission what the traffic asks for.

The paper's economics: a customized architecture costs a build (hours
of synthesis on the real FPGA, ``build_seconds`` of simulated downtime
here) and then saves ``(1 - eta)`` of every mismatched solve's cycles
forever after. The autoscaler runs that break-even per structure
cluster: every request served on a node whose architecture is not the
cluster's own accumulates its *projected* waste
``cycles * (1 - eta)`` — the cycles a freshly customized (eta ≈ 1)
node would have saved. Once a cluster's accumulated waste exceeds
``build_cost_cycles``, commissioning a dedicated node pays for itself
and the fleet builds one; at ``max_nodes`` the coldest node (oldest
``last_active``) is drained to make room.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import AcceleratorNode

__all__ = ["ClusterState", "Autoscaler"]


@dataclass
class ClusterState:
    """Mismatch accounting for one structure fingerprint."""

    fingerprint_key: str
    #: A representative problem — structure is all that matters; kept so
    #: the fleet can run the customization flow when commissioning.
    exemplar: object = field(repr=False, default=None)
    requests: int = 0
    mismatched: int = 0
    projected_saved_cycles: float = 0.0
    commissioned: bool = False
    last_seen: float = 0.0


class Autoscaler:
    """Commission/decommission planner driven by mismatch traffic.

    Parameters
    ----------
    build_cost_cycles:
        Projected cycles a cluster must be wasting before a dedicated
        architecture is worth building (the amortized bitstream cost).
    build_seconds:
        Simulated build latency: a commissioned node joins the fleet
        this long after the decision.
    max_nodes:
        Fleet size ceiling; commissioning beyond it drains the coldest
        node.
    """

    def __init__(self, build_cost_cycles: float = 2e6,
                 build_seconds: float = 0.01,
                 max_nodes: int = 8):
        if build_cost_cycles <= 0:
            raise ValueError("build_cost_cycles must be positive")
        if build_seconds < 0:
            raise ValueError("build_seconds must be non-negative")
        if max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")
        self.build_cost_cycles = float(build_cost_cycles)
        self.build_seconds = float(build_seconds)
        self.max_nodes = int(max_nodes)
        self.clusters: dict[str, ClusterState] = {}

    # ------------------------------------------------------------------
    def cluster(self, fingerprint_key: str, exemplar=None) -> ClusterState:
        state = self.clusters.get(fingerprint_key)
        if state is None:
            state = ClusterState(fingerprint_key=fingerprint_key,
                                 exemplar=exemplar)
            self.clusters[fingerprint_key] = state
        if state.exemplar is None and exemplar is not None:
            state.exemplar = exemplar
        return state

    def observe(self, now: float, fingerprint_key: str, exemplar,
                *, cycles: int, eta: float, matched: bool) -> None:
        """Account one completed accelerator solve."""
        state = self.cluster(fingerprint_key, exemplar)
        state.requests += 1
        state.last_seen = now
        if not matched:
            state.mismatched += 1
            state.projected_saved_cycles += cycles * max(0.0, 1.0 - eta)

    def plan(self) -> list[ClusterState]:
        """Clusters whose accumulated waste now justifies a build."""
        due = [s for s in self.clusters.values()
               if not s.commissioned
               and s.projected_saved_cycles > self.build_cost_cycles]
        # Deterministic order: worst offender first.
        due.sort(key=lambda s: (-s.projected_saved_cycles,
                                s.fingerprint_key))
        return due

    def note_commissioned(self, fingerprint_key: str) -> None:
        state = self.clusters[fingerprint_key]
        state.commissioned = True
        state.projected_saved_cycles = 0.0

    # ------------------------------------------------------------------
    @staticmethod
    def pick_decommission(nodes: list[AcceleratorNode],
                          protect=()) -> AcceleratorNode | None:
        """The coldest drainable node (oldest activity), if any."""
        candidates = [n for n in nodes
                      if not n.draining and n.node_id not in protect]
        if not candidates:
            return None
        return min(candidates, key=lambda n: (n.last_active, n.node_id))
