"""Placement policies: which accelerator serves an incoming QP.

The fleet's core decision mirrors the paper's match score across
instances: every node is pinned to one frozen architecture, and an
incoming structure runs ``1/eta`` slower than ideal on it. The
match-score router therefore scores each online node by the memoized
``eta`` of (incoming fingerprint, node architecture) — the figure of
merit :func:`repro.customization.match_score` defines and
``benchmarks/test_ablation_reuse.py`` exercises across instances — and
trades it against queue depth so a perfectly matching node with a deep
backlog loses to a slightly mismatched idle one.

Routers are pluggable (`make_router`); they see only online nodes and
must be deterministic — ties break toward the lowest node id.
"""

from __future__ import annotations

from .events import AcceleratorNode

__all__ = ["Router", "RoundRobinRouter", "LeastLoadedRouter",
           "MatchScoreRouter", "make_router", "POLICIES"]

POLICIES = ("round-robin", "least-loaded", "match")


class Router:
    """Base placement policy."""

    name = "base"

    def choose(self, request, nodes: list[AcceleratorNode],
               now: float) -> AcceleratorNode | None:
        """Pick a node for ``request`` among online ``nodes`` (sorted by
        id); ``None`` sends the request to the spill lane."""
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Blind rotation over the online nodes — the fairness baseline."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def choose(self, request, nodes, now):
        if not nodes:
            return None
        node = nodes[self._next % len(nodes)]
        self._next += 1
        return node


class LeastLoadedRouter(Router):
    """Shortest backlog first; structure-blind load balancing."""

    name = "least-loaded"

    def choose(self, request, nodes, now):
        if not nodes:
            return None
        return min(nodes, key=lambda n: (n.backlog(now), n.node_id))


class MatchScoreRouter(Router):
    """Trade the match score against queue depth.

    ``score(node) = score_of(fingerprint, node.architecture)
    / (1 + queue_weight * backlog)``: with an empty fleet the best
    matching architecture always wins; as its queue grows, the
    discounted score drops below a mismatched-but-idle node's and
    traffic spills over — exactly the latency/efficiency tradeoff a
    placement layer must make.

    The fleet's ``score_of`` is the *service rate* of the request's
    structure on the node's architecture — the time-domain form of the
    paper's match score (rate ∝ η·C·f_max/(nnz+L)), derived from the
    same memoized :func:`~repro.customization.evaluate_architecture`
    call that yields η. Raw η alone is the wrong routing key: a bigger
    foreign datapath can pad less (higher η) yet still run this
    structure slower than its own customized design.

    Parameters
    ----------
    score_of:
        ``score_of(request, node) -> float`` (higher is better) —
        memoized by the fleet service per (fingerprint, architecture)
        pair, so scoring is a dict lookup after the first evaluation.
    queue_weight:
        How hard a backlog discounts a match; ``0`` routes purely by
        match score.
    """

    name = "match"

    def __init__(self, score_of, queue_weight: float = 0.5):
        if queue_weight < 0:
            raise ValueError("queue_weight must be non-negative")
        self.score_of = score_of
        self.queue_weight = float(queue_weight)

    def choose(self, request, nodes, now):
        if not nodes:
            return None
        best, best_score = None, float("-inf")
        for node in nodes:
            score = self.score_of(request, node)
            score /= 1.0 + self.queue_weight * node.backlog(now)
            if score > best_score * (1.0 + 1e-12):
                best, best_score = node, score
        return best


def make_router(policy: str, *, score_of=None,
                queue_weight: float = 0.5) -> Router:
    """Instantiate a placement policy by name."""
    if policy == "round-robin":
        return RoundRobinRouter()
    if policy == "least-loaded":
        return LeastLoadedRouter()
    if policy == "match":
        if score_of is None:
            raise ValueError("match policy needs a score_of callback")
        return MatchScoreRouter(score_of, queue_weight=queue_weight)
    raise ValueError(f"unknown policy {policy!r} "
                     f"(available: {', '.join(POLICIES)})")
