"""`FleetService` — a structure-aware fleet of simulated accelerators.

Where :class:`~repro.serving.SolverService` amortizes one architecture
per structure on a *single* accelerator, the fleet hosts N
:class:`~repro.fleet.events.AcceleratorNode`\\ s, each pinned to a
frozen architecture artifact, and decides — per incoming QP — which
node's architecture it matches best:

1. every submitted problem is fingerprinted
   (:mod:`repro.serving.fingerprint`) and stamped with a simulated
   arrival time,
2. admission control (:mod:`repro.fleet.admission`) rate-limits and
   depth-sheds, diverting overload to a reference-solver spill lane,
3. a placement policy (:mod:`repro.fleet.router`) picks a node — the
   match-score policy scores the paper's ``eta`` of (fingerprint, node
   architecture), memoized per pair,
4. the node serves its FIFO queue; a request's service time is the
   accelerator's own cycle count at the architecture's modeled
   ``f_max``,
5. the autoscaler (:mod:`repro.fleet.autoscale`) watches mismatch
   traffic per structure cluster and commissions freshly customized
   nodes when the projected cycles-saved exceed the build cost.

The submit/result surface mirrors :class:`SolverService`; metrics flow
through :class:`repro.serving.metrics.MetricsRegistry` (bounded
reservoirs by default — fleet traffic is unbounded); and
:meth:`fleet_report` exports utilization, latency percentiles and the
η-weighted throughput the routing policies compete on.

Solve modes: ``"exact"`` numerically solves every request on its
assigned node (results are real solutions); ``"calibrated"``
numerically solves the *first* request per (structure, architecture)
pair and reuses its cycle count as the service time for repeats — the
capacity-planning mode for large traffic replays, where per-request
numerics would dominate wall time without changing the queueing
picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.cpu import cpu_solve_seconds
from ..baselines.workload import workload_from_result
from ..exceptions import (FaultDetectedError, SimulationError,
                          VerificationError)
from ..faults import CircuitBreaker, solution_ok
from ..customization import customize_problem
from ..experiments.runner import choose_width
from ..qp import QProblem
from ..solver import OSQPSettings, available_algorithms, choose_algorithm
from ..serving.arch_cache import ArchCache, build_artifact
from ..serving.fingerprint import StructureFingerprint, fingerprint_problem
from ..serving.metrics import MetricsRegistry
from ..hw.compiled import validate_backend
from ..serving.pool import reference_job, solve_job
from .admission import ACCEPT, SHED, SPILL, AdmissionController
from .autoscale import Autoscaler
from .events import AcceleratorNode, EventQueue, SpillLane
from .router import make_router

__all__ = ["FleetRequest", "FleetRecord", "FleetResult", "FleetService",
           "LANE_NODE", "LANE_SPILL", "LANE_SHED"]

#: Lanes a request can end in.
LANE_NODE = "node"    # served by an accelerator node
LANE_SPILL = "spill"  # diverted to the reference-solver spill lane
LANE_SHED = "shed"    # rejected by admission control (no solve)

_SOLVE_MODES = ("exact", "calibrated")


@dataclass
class FleetRequest:
    """One in-flight request: problem + fingerprint + arrival time."""

    request_id: int
    problem: QProblem
    fingerprint: StructureFingerprint
    arrival: float
    warm_start: tuple | None = None
    #: Failed node-lane attempts so far (requeues after node crashes or
    #: detected-fault solves); bounded by the service's max_attempts.
    attempts: int = 0
    #: Set when the request was pushed to the spill lane as an explicit
    #: degraded-mode answer after exhausting node attempts.
    degraded: bool = False


@dataclass
class FleetRecord:
    """Accounting for one request, kept for reports and benchmarks."""

    request_id: int
    problem_name: str
    fingerprint_key: str
    lane: str
    arrival: float
    start: float
    finish: float
    node_id: int = -1
    architecture: str = ""
    #: Match score of the request's structure on the serving node's
    #: architecture (0 off the accelerator lanes).
    eta: float = 0.0
    #: Served by the node whose architecture is this structure's own
    #: customized design.
    matched: bool = False
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    latency_seconds: float = 0.0
    simulated_cycles: int = 0
    admm_iterations: int = 0
    converged: bool = False
    backend: str = ""
    #: Service time reused from the (structure, architecture)
    #: calibration solve rather than a dedicated numeric run.
    calibrated: bool = False
    shed_reason: str = ""
    #: Node-lane attempts that failed before this outcome.
    attempts: int = 0
    #: Answered by the spill lane as an explicit degraded-mode result
    #: after node attempts were exhausted (never a silent wrong answer).
    degraded: bool = False
    #: Lockstep batch width this request solved at (1 = solo).
    batch_width: int = 1


@dataclass
class FleetResult:
    """Solution plus provenance; ``raw`` is the backend's own result.

    Shed requests carry no solution (``x`` is None, ``converged``
    False) — the record's ``shed_reason`` says why.
    """

    x: np.ndarray | None
    y: np.ndarray | None
    z: np.ndarray | None
    converged: bool
    backend: str
    record: FleetRecord
    raw: object = field(repr=False, default=None)


class FleetService:
    """Multi-accelerator QP serving with match-score placement.

    Parameters
    ----------
    policy:
        Placement policy: ``"round-robin"``, ``"least-loaded"`` or
        ``"match"`` (see :mod:`repro.fleet.router`).
    c:
        Datapath width for dedicated architectures; ``None`` picks per
        problem by nnz.
    solve_mode:
        ``"exact"`` or ``"calibrated"`` (see module docstring).
    admission:
        An :class:`AdmissionController`; ``None`` admits everything.
    autoscaler:
        An :class:`Autoscaler`; ``None`` keeps the commissioned fleet
        fixed.
    spill_servers:
        Reference-solver servers on the spill lane.
    queue_weight:
        Backlog discount of the match-score router.
    reservoir:
        Bounded histogram reservoir for the metrics registry (``None``
        for exact histograms).
    backend:
        Execution backend of the simulated accelerators:
        ``"compiled"`` (default) or ``"interpret"``; bit-identical
        results either way.
    verify:
        When True (default), a node-bound artifact passes the static
        verification suite (:mod:`repro.verify`) before its first
        solve; a rejected artifact *sheds* the request with reason
        ``verify:<codes>`` (and bumps ``fleet_verify_rejects_total``)
        instead of crashing the event loop.
    fault_plan:
        Deterministic fault schedule (:class:`repro.faults.FaultPlan`).
        Node-stall faults become simulated-clock "node-fail" events
        (in-flight and queued work is requeued elsewhere); hardware
        faults arm injectors on the numeric solves. ``None`` (default)
        disables injection entirely.
    breaker_threshold, breaker_reset_seconds:
        Per-node circuit breaker: consecutive detected failures before
        the node stops receiving traffic, and the simulated-time
        window before a half-open probe. Closed breakers are no-ops,
        so a fault-free fleet is byte-identical to one without them.
    max_attempts:
        Node-lane attempts per request before it degrades to the
        reference spill lane (an explicit degraded-mode answer).
    algorithm:
        Solver algorithm for node-lane solves. ``"admm"`` (default)
        and ``"pdqp"`` pin every solve; ``"auto"`` picks per structure
        via :func:`repro.solver.choose_algorithm`; ``"race"``
        (calibrated mode only) numerically runs *both* algorithms on
        the first solve of each structure and pins the structure to
        the cycle winner for all repeats — the measured, rather than
        heuristic, form of auto-selection. Race calibration solves are
        plain measurement runs: fault injection applies only to
        already-pinned solves.
    """

    def __init__(self, *, policy: str = "match", c: int | None = None,
                 settings: OSQPSettings | None = None,
                 solve_mode: str = "exact",
                 admission: AdmissionController | None = None,
                 autoscaler: Autoscaler | None = None,
                 spill_servers: int = 1,
                 queue_weight: float = 1.0,
                 cache_capacity: int = 256,
                 reservoir: int | None = 4096,
                 pcg_eps: float = 1e-7,
                 max_pcg_iter: int = 500,
                 seed: int = 0,
                 backend: str = "compiled",
                 verify: bool = True,
                 fault_plan=None,
                 breaker_threshold: int = 3,
                 breaker_reset_seconds: float = 0.05,
                 max_attempts: int = 3,
                 algorithm: str = "admm",
                 max_batch: int = 32):
        if solve_mode not in _SOLVE_MODES:
            raise ValueError(f"solve_mode must be one of {_SOLVE_MODES}, "
                             f"got {solve_mode!r}")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if (algorithm not in ("auto", "race")
                and algorithm not in available_algorithms()):
            raise ValueError(
                f"algorithm must be 'auto', 'race' or one of "
                f"{available_algorithms()}, got {algorithm!r}")
        if algorithm == "race" and solve_mode != "calibrated":
            raise ValueError(
                "algorithm='race' requires solve_mode='calibrated': the "
                "race reuses its measurement solves as calibration")
        self.algorithm = algorithm
        self.backend = validate_backend(backend)
        self.verify = bool(verify)
        self.policy = policy
        self.c = c
        self.settings = settings if settings is not None else OSQPSettings()
        self.solve_mode = solve_mode
        self.admission = (admission if admission is not None
                          else AdmissionController())
        self.autoscaler = autoscaler
        self.queue_weight = float(queue_weight)
        #: Widest lockstep batch a node pump may coalesce from its own
        #: queue (same fingerprint, exact mode, no fault plan armed);
        #: < 2 disables coalescing.
        self.max_batch = int(max_batch)
        self.pcg_eps = float(pcg_eps)
        self.max_pcg_iter = int(max_pcg_iter)
        self.metrics = MetricsRegistry(default_reservoir=reservoir,
                                       seed=seed)
        self.router = make_router(policy, score_of=self._score_of,
                                  queue_weight=queue_weight)
        self.nodes: list[AcceleratorNode] = []
        self.retired: list[AcceleratorNode] = []
        self.spill = SpillLane(servers=spill_servers)
        self.builds: list[dict] = []
        self.decommissions: list[dict] = []
        self._artifacts = ArchCache(capacity=cache_capacity)
        self._eta: dict[tuple[str, str], float] = {}
        self._rate: dict[tuple[str, str], float] = {}
        self._dedicated: dict[str, str] = {}
        self._dedicated_arch: dict[str, object] = {}
        self._calibration: dict[tuple[str, str], object] = {}
        #: Race-mode outcome per structure: fingerprint key -> the
        #: algorithm whose measured solve took fewer cycles.
        self._race_winners: dict[str, str] = {}
        self._events = EventQueue()
        self._in_flight: dict[int, tuple] = {}
        self._next_request_id = 0
        self._next_node_id = 0
        self._records: dict[int, FleetRecord] = {}
        self._results: dict[int, FleetResult] = {}
        self._feed = None  # closed-loop continuation queue
        self._closed = False
        # -- fault tolerance (repro.faults) ----------------------------
        #: Deterministic fault schedule; node-stall faults become
        #: "node-fail" events on the simulated clock.
        self.fault_plan = fault_plan if fault_plan else None
        self.max_attempts = int(max_attempts)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_reset_seconds = float(breaker_reset_seconds)
        #: Per-node circuit breakers over the *simulated* clock; a
        #: closed breaker is a no-op, so a fault-free fleet behaves
        #: exactly as before.
        self._breakers: dict[int, CircuitBreaker] = {}
        if self.fault_plan is not None:
            for fault in self.fault_plan.stalls():
                self._events.push(max(fault.time, 0.0), "node-fail",
                                  (fault.node, fault.duration))

    # ------------------------------------------------------------------
    # structure handling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The simulated clock."""
        return self._events.now

    def width_for(self, problem: QProblem) -> int:
        return self.c if self.c is not None else choose_width(problem.nnz)

    def _artifact_key(self, fingerprint: StructureFingerprint,
                      architecture, algorithm: str = "admm") -> str:
        base = (f"{fingerprint.key}:arch={architecture}"
                f":pcg{self.max_pcg_iter}")
        return base if algorithm == "admm" else f"{base}:{algorithm}"

    def _bind(self, problem: QProblem, fingerprint: StructureFingerprint,
              architecture, algorithm: str = "admm"):
        """Artifact of ``architecture`` bound to this structure (memoized)."""
        key = self._artifact_key(fingerprint, architecture, algorithm)
        artifact, _ = self._artifacts.get_or_build(
            key, lambda: build_artifact(
                problem, architecture.c, architecture=architecture,
                fingerprint=fingerprint,
                max_admm_iter=self.settings.max_iter,
                max_pcg_iter=self.max_pcg_iter,
                metrics=self.metrics, metrics_prefix="fleet",
                algorithm=algorithm))
        pair = (fingerprint.key, str(architecture))
        self._eta.setdefault(pair, artifact.customization.eta)
        # Per-iteration service rate of this structure on this
        # architecture: scheduled SpMV cycles at the modeled clock —
        # the time-domain match score the router optimizes.
        cycles = sum(artifact.customization.spmv_cycles.values())
        self._rate.setdefault(
            pair, artifact.fmax_mhz * 1e6 / max(1, cycles))
        return artifact

    def _eta_of(self, request: FleetRequest,
                node: AcceleratorNode) -> float:
        """Match score of a request's structure on a node's architecture.

        Memoized per (fingerprint, architecture) pair — scoring is a
        dict lookup after the first evaluation.
        """
        key = (request.fingerprint.key, node.arch_string)
        if key not in self._eta:
            self._bind(request.problem, request.fingerprint,
                       node.architecture)
        return self._eta[key]

    def _score_of(self, request: FleetRequest,
                  node: AcceleratorNode) -> float:
        """Routing score: the memoized per-iteration service rate."""
        key = (request.fingerprint.key, node.arch_string)
        if key not in self._rate:
            self._bind(request.problem, request.fingerprint,
                       node.architecture)
        return self._rate[key]

    def dedicated_architecture(self, problem: QProblem,
                               fingerprint: StructureFingerprint
                               | None = None):
        """This structure's own customized architecture (memoized search)."""
        c = self.width_for(problem)
        if fingerprint is None:
            fingerprint = fingerprint_problem(problem, c=c)
        arch = self._dedicated_arch.get(fingerprint.key)
        if arch is None:
            custom = customize_problem(problem, c)
            arch = custom.architecture
            self._dedicated_arch[fingerprint.key] = arch
            self._dedicated[fingerprint.key] = str(arch)
            self._eta.setdefault((fingerprint.key, str(arch)), custom.eta)
        return arch

    # ------------------------------------------------------------------
    # fleet membership
    # ------------------------------------------------------------------
    def commission(self, problem: QProblem, *,
                   architecture=None,
                   build_seconds: float = 0.0) -> AcceleratorNode:
        """Add a node pinned to ``problem``'s customized architecture.

        Pass ``architecture`` to pin an explicit design instead (e.g. a
        deliberately generic or baseline fleet for autoscaling studies).
        The node joins the fleet ``build_seconds`` of simulated time
        from now — the bitstream-build latency.
        """
        now = self._events.now
        if architecture is None:
            architecture = self.dedicated_architecture(problem)
        node = AcceleratorNode(self._next_node_id, architecture,
                               commissioned_at=now,
                               available_at=now + build_seconds)
        self._next_node_id += 1
        self.nodes.append(node)
        self.builds.append({
            "time": now, "node_id": node.node_id,
            "architecture": node.arch_string,
            "online_at": node.available_at})
        self.metrics.counter("fleet_builds_total").inc()
        return node

    def decommission(self, node: AcceleratorNode) -> None:
        """Drain a node: it finishes its queue, then leaves the fleet."""
        node.draining = True
        if node.busy_with is None and not node.queue:
            self._retire(node)

    def _retire(self, node: AcceleratorNode) -> None:
        if node not in self.nodes:
            return  # already retired (e.g. by an autoscale tick)
        self.nodes.remove(node)
        self.retired.append(node)
        self.decommissions.append({
            "time": self._events.now, "node_id": node.node_id,
            "architecture": node.arch_string, "served": node.served})
        self.metrics.counter("fleet_decommissions_total").inc()

    # ------------------------------------------------------------------
    # request lifecycle
    # ------------------------------------------------------------------
    def submit(self, problem: QProblem, *, at: float | None = None,
               warm_start: tuple | None = None) -> int:
        """Enqueue one solve arriving at simulated time ``at`` (default:
        now); returns a request id for :meth:`result`."""
        if self._closed:
            raise RuntimeError("fleet is closed")
        request_id = self._next_request_id
        self._next_request_id += 1
        arrival = self._events.now if at is None else float(at)
        fingerprint = fingerprint_problem(problem,
                                          c=self.width_for(problem))
        request = FleetRequest(request_id=request_id, problem=problem,
                               fingerprint=fingerprint, arrival=arrival,
                               warm_start=warm_start)
        self._events.push(arrival, "arrival", request)
        return request_id

    def result(self, request_id: int) -> FleetResult:
        """Advance the simulation until ``request_id`` resolves."""
        while request_id not in self._results and self._events:
            self._step()
        try:
            return self._results[request_id]
        except KeyError:
            raise KeyError(f"unknown request id {request_id}") from None

    def solve(self, problem: QProblem, *, at: float | None = None,
              warm_start: tuple | None = None) -> FleetResult:
        """Synchronous convenience: submit + result."""
        return self.result(self.submit(problem, at=at,
                                       warm_start=warm_start))

    def solve_batch(self, problems, *, warm_starts=None) -> list:
        """Submit a batch, preserve submission order in the results."""
        problems = list(problems)
        if warm_starts is None:
            warm_starts = [None] * len(problems)
        ids = [self.submit(p, warm_start=w)
               for p, w in zip(problems, warm_starts)]
        return [self.result(i) for i in ids]

    def drain(self) -> None:
        """Run the simulation until no events remain."""
        while self._events:
            self._step()

    def close(self) -> None:
        self.drain()
        self._closed = True

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # traffic replay
    # ------------------------------------------------------------------
    def replay_open(self, problems, *, rate: float,
                    seed: int = 0) -> list[int]:
        """Open-loop replay: Poisson arrivals at ``rate`` requests per
        simulated second; runs to completion."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        rng = np.random.default_rng(seed)
        t = self._events.now
        ids = []
        for problem in problems:
            t += float(rng.exponential(1.0 / rate))
            ids.append(self.submit(problem, at=t))
        self.drain()
        return ids

    def replay_closed(self, problems, *, clients: int = 4,
                      think_seconds: float = 0.0) -> list[int]:
        """Closed-loop replay: ``clients`` concurrent clients, each
        submitting its next request when the previous one completes."""
        if clients < 1:
            raise ValueError("clients must be >= 1")
        problems = list(problems)
        from collections import deque
        self._feed = deque(problems[clients:])
        self._think = float(think_seconds)
        ids = [self.submit(p) for p in problems[:clients]]
        count = len(problems)
        self.drain()
        self._feed = None
        # Closed-loop ids are assigned in completion-driven order; the
        # caller correlates through records instead.
        return list(range(ids[0], ids[0] + count)) if ids else []

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def _step(self) -> None:
        event = self._events.pop()
        if event.kind == "arrival":
            self._on_arrival(event.payload)
        elif event.kind == "node-done":
            self._on_node_done(event.payload)
        elif event.kind == "spill-done":
            self._on_spill_done(event.payload)
        elif event.kind == "node-fail":
            self._on_node_fail(event.payload)
        elif event.kind == "node-recover":
            self._on_node_recover(event.payload)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown event kind {event.kind!r}")

    def _on_arrival(self, request: FleetRequest) -> None:
        now = self._events.now
        self.metrics.counter("fleet_requests_total").inc()
        decision = self.admission.decide(now, self.nodes)
        if decision.action == SHED:
            self._finalize_shed(request, decision.reason)
            return
        if decision.action == SPILL:
            self._to_spill(request)
            return
        self._route(request)

    def _route(self, request: FleetRequest) -> None:
        """Place an admitted request on a node, or spill it.

        Shared by fresh arrivals and fault requeues — a requeue goes
        straight back to the router (the request was already admitted
        once; re-charging the token bucket would punish the victim of
        a node crash twice).
        """
        now = self._events.now
        online = sorted((n for n in self.nodes
                         if n.online(now) and self._breaker_allows(n, now)),
                        key=lambda n: n.node_id)
        node = self.router.choose(request, online, now)
        if node is None:
            self._to_spill(request)
            return
        self.metrics.histogram("fleet_queue_depth").observe(
            node.backlog(now))
        node.enqueue(request)
        self._pump(node)

    # -- circuit breakers ----------------------------------------------
    def _breaker(self, node: AcceleratorNode) -> CircuitBreaker:
        breaker = self._breakers.get(node.node_id)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.breaker_threshold,
                reset_seconds=self.breaker_reset_seconds,
                name=f"node{node.node_id}")
            self._breakers[node.node_id] = breaker
        return breaker

    def _breaker_allows(self, node: AcceleratorNode, now: float) -> bool:
        breaker = self._breakers.get(node.node_id)
        return breaker is None or breaker.allows(now)

    def _breaker_failure(self, node: AcceleratorNode, now: float,
                         tripped: bool = False) -> None:
        breaker = self._breaker(node)
        opens = breaker.opens
        if tripped:
            breaker.trip(now)
        else:
            breaker.record_failure(now)
        if breaker.opens > opens:
            self.metrics.counter("fleet_breaker_opens_total").inc(
                breaker.opens - opens)

    # -- node failure / recovery ---------------------------------------
    def _on_node_fail(self, payload) -> None:
        node_id, duration = payload
        now = self._events.now
        node = next((n for n in self.nodes if n.node_id == node_id), None)
        if node is None or not node.online(now):
            return  # never commissioned, retired, or already down
        node.fail(now, duration)
        self.metrics.counter("fleet_node_failures_total").inc()
        # A crash opens the breaker outright: no point probing a node
        # that is known to be offline until it reports healthy again.
        self._breaker_failure(node, now, tripped=True)
        requeue = []
        aborted = node.abort_service(now)
        if aborted is not None:
            payload = self._in_flight.pop(node.node_id, None)
            if payload is not None and isinstance(payload[0], list):
                requeue.extend(payload[0])  # every lane of the batch
            else:
                requeue.append(aborted)
        while node.queue:
            requeue.append(node.queue.popleft())
        self._events.push(node.failed_until, "node-recover",
                          (node, node.failed_until))
        for request in requeue:
            self._requeue(request, node)

    def _on_node_recover(self, payload) -> None:
        node, scheduled_until = payload
        now = self._events.now
        if node.failed_until != scheduled_until:
            return  # a later failure extended the outage; stale event
        node.recover(now)
        self.metrics.counter("fleet_node_recoveries_total").inc()
        # Traffic returns through the breaker's half-open probe, not
        # all at once — the health-check discipline.
        self._pump(node)

    def _requeue(self, request: FleetRequest,
                 node: AcceleratorNode) -> None:
        """Re-place a request whose node attempt failed underneath it."""
        request.attempts += 1
        self.metrics.counter("fleet_requeues_total").inc()
        if request.attempts >= self.max_attempts:
            # Explicit degradation: answer from the reference lane
            # rather than bouncing between sick nodes forever.
            request.degraded = True
            self.metrics.counter("fleet_degraded_total").inc()
            self._to_spill(request)
            return
        self._route(request)

    def _pump(self, node: AcceleratorNode) -> None:
        if node.busy_with is not None or not node.queue:
            return
        now = self._events.now
        if not node.online(now):
            return  # failed with queued work; the crash handler requeues
        request = node.queue.popleft()
        mates = self._coalesce_mates(node, request)
        if mates and self._pump_batch(node, request, mates, now):
            return
        try:
            raw, eta, calibrated = self._node_solve(request, node)
        except VerificationError as exc:
            self.metrics.counter("fleet_verify_rejects_total").inc()
            codes = (",".join(sorted(d.code for d in exc.report.errors))
                     if exc.report is not None else "rejected")
            self._finalize_shed(request, f"verify:{codes}")
            self._pump(node)
            return
        except (FaultDetectedError, SimulationError):
            # The node produced a detected-bad solve: count it against
            # the node's breaker and send the request elsewhere.
            self.metrics.counter("fleet_solve_failures_total").inc()
            self._breaker_failure(node, now)
            self._requeue(request, node)
            self._pump(node)
            return
        finish = node.start_service(now, request, raw.solve_seconds, eta)
        self._in_flight[node.node_id] = (request, raw, eta, calibrated, now)
        self._events.push(finish, "node-done", (node, node.epoch))

    def _coalesce_mates(self, node: AcceleratorNode,
                        request: FleetRequest) -> list:
        """Pull same-fingerprint requests behind ``request`` off the
        node's queue for one lockstep batch.

        Opportunistic and conservative: exact mode only (calibrated
        mode reuses measured solves, there is nothing to batch), never
        with a fault plan armed (per-attempt injectors address solo
        node attempts), never in race mode before a winner is pinned.
        """
        if (self.max_batch < 2 or self.solve_mode != "exact"
                or self.fault_plan is not None or not node.queue
                or self._algorithm_for(request) is None):
            return []
        mates = [r for r in node.queue
                 if r.fingerprint.key == request.fingerprint.key]
        mates = mates[:self.max_batch - 1]
        for mate in mates:
            node.queue.remove(mate)
        return mates

    def _pump_batch(self, node: AcceleratorNode, request: FleetRequest,
                    mates: list, now: float) -> bool:
        """Serve ``request`` and its queue-mates as one lockstep batch.

        Returns True when the batch was dispatched (service started,
        shed, or requeued); False re-queues the mates and lets the
        caller fall through to the solo path.
        """
        from ..batch import solve_batch_job
        lanes = [request] + mates
        algorithm = self._algorithm_for(request)
        try:
            artifact = self._bind(request.problem, request.fingerprint,
                                  node.architecture, algorithm)
            bres = solve_batch_job(
                [r.problem for r in lanes], artifact, self.settings,
                warm_starts=[r.warm_start for r in lanes],
                pcg_eps=self.pcg_eps, verify=self.verify)
        except VerificationError as exc:
            self.metrics.counter("fleet_verify_rejects_total").inc()
            codes = (",".join(sorted(d.code for d in exc.report.errors))
                     if exc.report is not None else "rejected")
            for lane in lanes:
                self._finalize_shed(lane, f"verify:{codes}")
            self._pump(node)
            return True
        except (FaultDetectedError, SimulationError):
            self.metrics.counter("fleet_solve_failures_total").inc()
            self._breaker_failure(node, now)
            for lane in lanes:
                self._requeue(lane, node)
            self._pump(node)
            return True
        except Exception:
            # Unexpected batch failure: put the mates back and let the
            # solo path (with its own error handling) serve the head.
            for mate in reversed(mates):
                node.queue.appendleft(mate)
            return False
        for _ in lanes:
            self._count_selected(algorithm)
        eta = self._eta[(request.fingerprint.key, node.arch_string)]
        self.metrics.counter("fleet_batches_total").inc()
        self.metrics.counter("fleet_batched_requests_total").inc(
            len(lanes))
        self.metrics.histogram("fleet_batch_width").observe(len(lanes))
        # The node is busy for the batch's *wall* time — the lockstep
        # stream issues once, whatever the lane count — but served /
        # eta tallies stay per *request*, like the report they feed.
        finish = node.start_service(now, request, bres.wall_seconds, eta)
        node.served += len(mates)
        node.eta_sum += eta * len(mates)
        self._in_flight[node.node_id] = (lanes, bres, eta, False, now)
        self._events.push(finish, "node-done", (node, node.epoch))
        return True

    def _algorithm_for(self, request: FleetRequest) -> str | None:
        """Resolve the algorithm for one solve; None = race pending."""
        if self.algorithm == "race":
            return self._race_winners.get(request.fingerprint.key)
        if self.algorithm == "auto":
            return choose_algorithm(request.problem)
        return self.algorithm

    def _race_solve(self, request: FleetRequest, node: AcceleratorNode):
        """First solve of a structure under ``algorithm="race"``.

        Measure every registered algorithm on this (structure,
        architecture) pair, pin the structure to the cycle winner and
        reuse the winner's run as the calibration entry. Unconverged
        contenders are disqualified; if nobody converges the structure
        falls back to ADMM (its run is still the calibrated answer).
        """
        key = (request.fingerprint.key, node.arch_string)
        raws: dict[str, object] = {}
        winner = None
        for algorithm in available_algorithms():
            artifact = self._bind(request.problem, request.fingerprint,
                                  node.architecture, algorithm)
            raw = solve_job(request.problem, artifact, self.settings,
                            request.warm_start, self.pcg_eps,
                            self.backend, verify=self.verify)
            raws[algorithm] = raw
            self.metrics.counter("fleet_race_solves_total").inc()
            if raw.converged and (
                    winner is None
                    or raw.total_cycles < raws[winner].total_cycles):
                winner = algorithm
        if winner is None:
            winner = "admm"
        self._race_winners[request.fingerprint.key] = winner
        self.metrics.counter("fleet_race_total").inc()
        self.metrics.counter(f"fleet_race_winner_{winner}_total").inc()
        self._count_selected(winner)
        best = raws[winner]
        self._calibration[key] = best
        return best, self._eta[key], False

    def _count_selected(self, algorithm: str) -> None:
        self.metrics.counter("fleet_algo_selected_total").inc()
        self.metrics.counter(
            f"fleet_algo_selected_{algorithm}_total").inc()

    def _node_solve(self, request: FleetRequest, node: AcceleratorNode):
        """Run (or reuse) the numeric solve backing a node service."""
        key = (request.fingerprint.key, node.arch_string)
        if self.solve_mode == "calibrated" and key in self._calibration:
            return self._calibration[key], self._eta[key], True
        algorithm = self._algorithm_for(request)
        if algorithm is None:  # race mode, winner not yet measured
            return self._race_solve(request, node)
        self._count_selected(algorithm)
        artifact = self._bind(request.problem, request.fingerprint,
                              node.architecture, algorithm)
        # Hardware fault injection only applies to real numeric solves
        # (exact mode, or the first calibration solve of a pair).
        injector = (self.fault_plan.injector_for(request.request_id,
                                                 request.attempts)
                    if self.fault_plan is not None else None)
        try:
            raw = solve_job(request.problem, artifact, self.settings,
                            request.warm_start, self.pcg_eps, self.backend,
                            verify=self.verify, injector=injector)
        finally:
            if injector is not None and injector.events:
                self.metrics.counter("fleet_faults_injected_total").inc(
                    len(injector.events))
        if raw.rollbacks:
            self.metrics.counter("fleet_fault_rollbacks_total").inc(
                raw.rollbacks)
        if (injector is not None and injector.events and raw.converged
                and not solution_ok(request.problem, raw.x, raw.y, raw.z,
                                    eps_abs=self.settings.eps_abs,
                                    eps_rel=self.settings.eps_rel)):
            self.metrics.counter("fleet_silent_corruption_total").inc()
            raise FaultDetectedError(
                f"request {request.request_id} on node {node.node_id}: "
                "solution failed the host-side KKT re-check",
                events=tuple(injector.events))
        if self.solve_mode == "calibrated":
            self._calibration[key] = raw
        return raw, self._eta[key], False

    def _on_node_done(self, payload) -> None:
        node, epoch = payload
        now = self._events.now
        if epoch != node.epoch:
            # Completion scheduled before a crash: the request was
            # already aborted and requeued, the work never finished.
            return
        node.finish_service(now)
        breaker = self._breakers.get(node.node_id)
        if breaker is not None:
            breaker.record_success(now)
        request, raw, eta, calibrated, start = self._in_flight.pop(
            node.node_id)
        if isinstance(request, list):
            self._finalize_batch(node, request, raw, eta, start, now)
            return
        matched = (self._dedicated.get(request.fingerprint.key)
                   == node.arch_string)
        record = FleetRecord(
            request_id=request.request_id,
            problem_name=request.problem.name,
            fingerprint_key=request.fingerprint.key,
            lane=LANE_NODE, arrival=request.arrival, start=start,
            finish=now, node_id=node.node_id,
            architecture=node.arch_string, eta=eta, matched=matched,
            queue_seconds=start - request.arrival,
            service_seconds=now - start,
            latency_seconds=now - request.arrival,
            simulated_cycles=raw.total_cycles,
            admm_iterations=raw.admm_iterations,
            converged=raw.converged, backend="rsqp",
            calibrated=calibrated, attempts=request.attempts)
        self._finalize(request, record, FleetResult(
            x=raw.x, y=raw.y, z=raw.z, converged=raw.converged,
            backend="rsqp", record=record, raw=raw))
        if self.autoscaler is not None:
            self.autoscaler.observe(
                now, request.fingerprint.key, request.problem,
                cycles=record.simulated_cycles, eta=eta, matched=matched)
            self._autoscale_tick()
        if node.draining and node.busy_with is None and not node.queue:
            self._retire(node)
        else:
            self._pump(node)

    def _finalize_batch(self, node: AcceleratorNode, lanes: list,
                        bres, eta: float, start: float,
                        now: float) -> None:
        """Per-lane records for one completed lockstep batch.

        Every lane shares the batch's wall service window; its
        ``simulated_cycles`` are the lane's *effective* solo-equivalent
        cycles. A lane the runner froze (defensive — no injectors or
        deadlines ride the fleet batch path) is requeued alone.
        """
        matched = (self._dedicated.get(lanes[0].fingerprint.key)
                   == node.arch_string)
        for lane, raw in zip(lanes, bres.results):
            if raw is None:
                self._requeue(lane, node)
                continue
            record = FleetRecord(
                request_id=lane.request_id,
                problem_name=lane.problem.name,
                fingerprint_key=lane.fingerprint.key,
                lane=LANE_NODE, arrival=lane.arrival, start=start,
                finish=now, node_id=node.node_id,
                architecture=node.arch_string, eta=eta, matched=matched,
                queue_seconds=start - lane.arrival,
                service_seconds=now - start,
                latency_seconds=now - lane.arrival,
                simulated_cycles=raw.total_cycles,
                admm_iterations=raw.admm_iterations,
                converged=raw.converged, backend="rsqp",
                calibrated=False, attempts=lane.attempts,
                batch_width=len(lanes))
            self._finalize(lane, record, FleetResult(
                x=raw.x, y=raw.y, z=raw.z, converged=raw.converged,
                backend="rsqp", record=record, raw=raw))
            if self.autoscaler is not None:
                self.autoscaler.observe(
                    now, lane.fingerprint.key, lane.problem,
                    cycles=raw.total_cycles, eta=eta, matched=matched)
        if self.autoscaler is not None:
            self._autoscale_tick()
        if node.draining and node.busy_with is None and not node.queue:
            self._retire(node)
        else:
            self._pump(node)

    # ------------------------------------------------------------------
    def _to_spill(self, request: FleetRequest) -> None:
        self.spill.enqueue(request)
        self._pump_spill()

    def _pump_spill(self) -> None:
        now = self._events.now
        while self.spill.has_free_server and self.spill.queue:
            request = self.spill.queue.popleft()
            raw = reference_job(request.problem, self.settings,
                                request.warm_start)
            seconds = cpu_solve_seconds(
                workload_from_result(request.problem, raw))
            finish = self.spill.start_service(now, seconds)
            self._events.push(finish, "spill-done",
                              (request, raw, seconds, now))

    def _on_spill_done(self, payload) -> None:
        now = self._events.now
        request, raw, seconds, start = payload
        self.spill.finish_service()
        converged = raw.status.is_optimal
        record = FleetRecord(
            request_id=request.request_id,
            problem_name=request.problem.name,
            fingerprint_key=request.fingerprint.key,
            lane=LANE_SPILL, arrival=request.arrival, start=start,
            finish=now,
            queue_seconds=start - request.arrival,
            service_seconds=seconds,
            latency_seconds=now - request.arrival,
            admm_iterations=raw.info.iterations,
            converged=converged, backend="reference",
            attempts=request.attempts, degraded=request.degraded)
        self._finalize(request, record, FleetResult(
            x=raw.x, y=raw.y, z=raw.z, converged=converged,
            backend="reference", record=record, raw=raw))
        self._pump_spill()

    def _finalize_shed(self, request: FleetRequest, reason: str) -> None:
        now = self._events.now
        record = FleetRecord(
            request_id=request.request_id,
            problem_name=request.problem.name,
            fingerprint_key=request.fingerprint.key,
            lane=LANE_SHED, arrival=request.arrival, start=now,
            finish=now, backend="none", shed_reason=reason)
        self._finalize(request, record, FleetResult(
            x=None, y=None, z=None, converged=False, backend="none",
            record=record))

    def _finalize(self, request: FleetRequest, record: FleetRecord,
                  result: FleetResult) -> None:
        self._records[request.request_id] = record
        self._results[request.request_id] = result
        m = self.metrics
        if record.lane == LANE_SHED:
            m.counter("fleet_shed_total").inc()
        else:
            m.histogram("fleet_latency_seconds").observe(
                record.latency_seconds)
            m.histogram("fleet_queue_seconds").observe(
                record.queue_seconds)
            m.histogram("fleet_service_seconds").observe(
                record.service_seconds)
            if record.lane == LANE_NODE:
                m.counter("fleet_completed_total").inc()
                m.histogram("fleet_eta").observe(record.eta)
                m.histogram("fleet_simulated_cycles").observe(
                    record.simulated_cycles)
                node = f"fleet_node{record.node_id}"
                m.counter(f"{node}_served_total").inc()
                m.counter(f"{node}_busy_seconds_total").inc(
                    record.service_seconds)
                if not record.matched:
                    m.counter("fleet_mismatch_total").inc()
            else:
                m.counter("fleet_spill_total").inc()
        if not record.converged and record.lane != LANE_SHED:
            m.counter("fleet_unconverged_total").inc()
        if self._feed:
            problem = self._feed.popleft()
            self.submit(problem, at=self._events.now + self._think)

    # ------------------------------------------------------------------
    def _autoscale_tick(self) -> None:
        scaler = self.autoscaler
        for state in scaler.plan():
            active = [n for n in self.nodes if not n.draining]
            if len(active) >= scaler.max_nodes:
                victim = scaler.pick_decommission(active)
                if victim is None:
                    continue
                self.decommission(victim)
            self.commission(state.exemplar,
                            build_seconds=scaler.build_seconds)
            scaler.note_commissioned(state.fingerprint_key)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def records(self) -> list[FleetRecord]:
        return [self._records[i] for i in sorted(self._records)]

    def metrics_snapshot(self) -> dict:
        snap = self.metrics.snapshot()
        snap["artifact_cache"] = self._artifacts.stats().as_dict()
        return snap

    def fleet_report(self) -> dict:
        """Utilization, latency percentiles, η-weighted throughput,
        matched-routing fractions and build events — JSON-friendly."""
        records = self.records()
        served = [r for r in records if r.lane != LANE_SHED]
        node_lane = [r for r in records if r.lane == LANE_NODE]
        makespan = (max(r.finish for r in served)
                    - min(r.arrival for r in served)) if served else 0.0
        latencies = np.array([r.latency_seconds for r in served]) \
            if served else np.zeros(0)
        etas = [r.eta for r in node_lane]
        by_arrival = sorted(node_lane, key=lambda r: (r.arrival,
                                                      r.request_id))
        trailing = by_arrival[len(by_arrival) // 2:]

        def _pct(q):
            return float(np.percentile(latencies, q)) if served else 0.0

        def _matched_fraction(rows):
            return (sum(r.matched for r in rows) / len(rows)
                    if rows else 0.0)

        nodes = [{
            "node_id": n.node_id, "architecture": n.arch_string,
            "served": n.served, "mean_eta": n.mean_eta,
            "utilization": n.utilization(makespan),
            "online_at": n.available_at,
            "retired": retired,
            "failures": n.failures,
            "breaker": (self._breakers[n.node_id].state
                        if n.node_id in self._breakers else "closed"),
        } for n, retired in ([(n, False) for n in self.nodes]
                             + [(n, True) for n in self.retired])]
        counters = self.metrics.snapshot()["counters"]

        def _count(name):
            return int(counters.get(name, 0))

        return {
            "policy": self.policy,
            "solve_mode": self.solve_mode,
            "algorithm": self.algorithm,
            "race_winners": dict(self._race_winners),
            "requests": len(records),
            "completed": len(node_lane),
            "spilled": sum(r.lane == LANE_SPILL for r in records),
            "shed": sum(r.lane == LANE_SHED for r in records),
            "converged": sum(r.converged for r in served),
            "makespan_seconds": makespan,
            "latency_seconds": {
                "mean": float(latencies.mean()) if served else 0.0,
                "p50": _pct(50), "p95": _pct(95), "p99": _pct(99),
                "max": float(latencies.max()) if served else 0.0,
            },
            "eta": {
                "mean": float(np.mean(etas)) if etas else 0.0,
                "min": float(np.min(etas)) if etas else 0.0,
            },
            #: Match-score-weighted completions per simulated second —
            #: the figure of merit the routing policies compete on.
            "eta_weighted_throughput": (sum(etas) / makespan
                                        if makespan > 0 else 0.0),
            "matched_fraction": _matched_fraction(node_lane),
            "matched_fraction_trailing": _matched_fraction(trailing),
            "builds": list(self.builds),
            "decommissions": list(self.decommissions),
            "nodes": nodes,
            "artifact_cache": self._artifacts.stats().as_dict(),
            "faults": {
                "node_failures": _count("fleet_node_failures_total"),
                "node_recoveries": _count("fleet_node_recoveries_total"),
                "requeues": _count("fleet_requeues_total"),
                "degraded": _count("fleet_degraded_total"),
                "breaker_opens": _count("fleet_breaker_opens_total"),
                "injected": _count("fleet_faults_injected_total"),
                "rollbacks": _count("fleet_fault_rollbacks_total"),
                "silent_corruption": _count(
                    "fleet_silent_corruption_total"),
            },
        }

    def render_report(self) -> str:
        """Human-readable fleet report (the CLI's summary section)."""
        rep = self.fleet_report()
        lat = rep["latency_seconds"]
        lines = [
            f"policy                 : {rep['policy']} "
            f"({rep['solve_mode']} mode)",
            f"requests               : {rep['requests']} "
            f"({rep['completed']} on-node, {rep['spilled']} spilled, "
            f"{rep['shed']} shed)",
            f"converged              : {rep['converged']}"
            f"/{rep['requests'] - rep['shed']}",
            f"makespan               : "
            f"{rep['makespan_seconds'] * 1e3:.2f} ms (simulated)",
            f"latency p50/p95/p99    : {lat['p50'] * 1e3:.3f} / "
            f"{lat['p95'] * 1e3:.3f} / {lat['p99'] * 1e3:.3f} ms",
            f"mean match score       : {rep['eta']['mean']:.3f}",
            f"eta-weighted throughput: "
            f"{rep['eta_weighted_throughput']:.1f} eta/s",
            f"routed-to-matching-arch: {rep['matched_fraction']:.1%} "
            f"(trailing half {rep['matched_fraction_trailing']:.1%})",
            f"build events           : {len(rep['builds'])} "
            f"({len(rep['decommissions'])} decommissions)",
        ]
        faults = rep["faults"]
        if any(faults.values()):
            lines.append(
                f"faults                 : "
                f"{faults['node_failures']} node failures, "
                f"{faults['requeues']} requeues, "
                f"{faults['degraded']} degraded, "
                f"{faults['breaker_opens']} breaker opens, "
                f"{faults['injected']} injected")
        for row in rep["nodes"]:
            state = "retired" if row["retired"] else "active"
            lines.append(
                f"  node {row['node_id']} [{state}] {row['architecture']}"
                f"  served={row['served']} util={row['utilization']:.1%}"
                f" mean_eta={row['mean_eta']:.3f}")
        return "\n".join(lines)
