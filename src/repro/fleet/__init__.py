"""repro.fleet — structure-aware multi-accelerator fleet simulation.

A discrete-event layer above :mod:`repro.serving`: N accelerator
nodes, each pinned to a frozen customized architecture, serve a stream
of fingerprinted QPs. Placement policies (:mod:`.router`) trade the
paper's match score η against queue depth, admission control
(:mod:`.admission`) sheds and spills overload, and the autoscaler
(:mod:`.autoscale`) commissions new architectures when mismatch
traffic pays the build cost. ``python -m repro.fleet`` replays a
skewed-popularity workload and prints the fleet report.
"""

from .admission import (ACCEPT, SHED, SPILL, AdmissionController,
                        AdmissionDecision, TokenBucket)
from .autoscale import Autoscaler, ClusterState
from .events import AcceleratorNode, Event, EventQueue, SpillLane
from .router import (POLICIES, LeastLoadedRouter, MatchScoreRouter,
                     RoundRobinRouter, Router, make_router)
from .service import (LANE_NODE, LANE_SHED, LANE_SPILL, FleetRecord,
                      FleetRequest, FleetResult, FleetService)

__all__ = [
    "ACCEPT", "SHED", "SPILL",
    "AdmissionController", "AdmissionDecision", "TokenBucket",
    "Autoscaler", "ClusterState",
    "AcceleratorNode", "Event", "EventQueue", "SpillLane",
    "POLICIES", "Router", "RoundRobinRouter", "LeastLoadedRouter",
    "MatchScoreRouter", "make_router",
    "LANE_NODE", "LANE_SPILL", "LANE_SHED",
    "FleetRequest", "FleetRecord", "FleetResult", "FleetService",
]
