"""CLI: replay a skewed-popularity QP stream through the fleet.

Builds ``--structures`` distinct problem structures across the
benchmark families, draws ``--requests`` arrivals from a Zipf-skewed
popularity distribution over them (numeric data perturbed per request,
sparsity identical — the paper's repeated-structure serving scenario),
commissions ``--nodes`` accelerators for the most popular structures
and replays the stream under the chosen placement policy.

Examples::

    python -m repro.fleet --nodes 4 --policy match
    python -m repro.fleet --policy round-robin --seed 7
    python -m repro.fleet --compare --report-json fleet_report.json
    python -m repro.fleet --arrival closed --clients 8
    python -m repro.fleet --autoscale --nodes 2 --structures 4
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from ..problems import FAMILIES, generate, perturb_numeric, suite_sizes
from ..solver import OSQPSettings
from .admission import AdmissionController
from .autoscale import Autoscaler
from .router import POLICIES
from .service import FleetService

DEFAULT_FAMILIES = "control,lasso"


def build_workload(families: list[str], structures: int, requests: int,
                   scale: float, skew: float, seed: int):
    """Zipf-skewed request stream over ``structures`` templates.

    Returns ``(templates, problems)`` with templates ordered most
    popular first — the fleet commissions nodes for the head of that
    ranking.
    """
    rng = np.random.default_rng(seed)
    per_family = structures // len(families) + 1
    templates = []
    for index in range(structures):
        family = families[index % len(families)]
        sizes = suite_sizes(family, per_family, scale)
        template = generate(family, sizes[index // len(families)],
                            seed=seed + index)
        template.name = f"{family}[{index:02d}]"
        templates.append(template)
    weights = np.arange(1, structures + 1, dtype=float) ** -skew
    weights /= weights.sum()
    picks = rng.choice(structures, size=requests, p=weights)
    problems = [perturb_numeric(templates[pick],
                                seed=int(rng.integers(2 ** 31)))
                for pick in picks]
    return templates, problems


def run_replay(args, policy: str, templates, problems) -> FleetService:
    """One fleet, one policy, one full replay of ``problems``."""
    settings = OSQPSettings(eps_abs=args.eps, eps_rel=args.eps)
    admission = AdmissionController(
        rate=args.admission_rate,
        max_queue_depth=args.max_queue_depth)
    autoscaler = None
    if args.autoscale:
        autoscaler = Autoscaler(build_cost_cycles=args.build_cost,
                                build_seconds=args.build_seconds,
                                max_nodes=args.max_nodes)
    fleet = FleetService(policy=policy, c=args.c, settings=settings,
                         solve_mode=args.solve_mode,
                         admission=admission, autoscaler=autoscaler,
                         spill_servers=args.spill_servers,
                         queue_weight=args.queue_weight,
                         seed=args.seed, backend=args.backend)
    for index in range(args.nodes):
        fleet.commission(templates[index % len(templates)])
    if args.arrival == "open":
        fleet.replay_open(problems, rate=args.rate, seed=args.seed)
    else:
        fleet.replay_closed(problems, clients=args.clients,
                            think_seconds=args.think)
    return fleet


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Replay a skewed-popularity QP stream through a "
                    "multi-accelerator fleet.")
    parser.add_argument("--nodes", type=int, default=4,
                        help="accelerators commissioned up front, pinned "
                             "to the most popular structures")
    parser.add_argument("--policy", choices=POLICIES, default="match")
    parser.add_argument("--compare", action="store_true",
                        help="replay the same stream under every policy "
                             "and print the comparison")
    parser.add_argument("--families", default=DEFAULT_FAMILIES,
                        help="comma-separated families "
                             f"(default {DEFAULT_FAMILIES}; "
                             f"available: {','.join(sorted(FAMILIES))})")
    parser.add_argument("--structures", type=int, default=4,
                        help="distinct problem structures in the stream")
    parser.add_argument("--requests", type=int, default=64,
                        help="total arrivals in the replay")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="size multiplier on the suite instances")
    parser.add_argument("--skew", type=float, default=1.5,
                        help="Zipf exponent of structure popularity")
    parser.add_argument("--arrival", choices=("open", "closed"),
                        default="open")
    parser.add_argument("--rate", type=float, default=2000.0,
                        help="open-loop arrival rate "
                             "(requests per simulated second)")
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop concurrent clients")
    parser.add_argument("--think", type=float, default=0.0,
                        help="closed-loop think time (simulated seconds)")
    parser.add_argument("--solve-mode", choices=("calibrated", "exact"),
                        default="calibrated",
                        help="calibrated reuses one numeric solve per "
                             "(structure, architecture); exact solves "
                             "every request")
    parser.add_argument("--queue-weight", type=float, default=1.0,
                        help="backlog discount of the match-score router")
    parser.add_argument("--admission-rate", type=float, default=None,
                        help="token-bucket admission rate (default: off)")
    parser.add_argument("--max-queue-depth", type=int, default=None,
                        help="spill to the reference lane beyond this "
                             "per-node backlog (default: off)")
    parser.add_argument("--spill-servers", type=int, default=1)
    parser.add_argument("--autoscale", action="store_true",
                        help="commission architectures for structures "
                             "whose mismatch traffic pays the build cost")
    parser.add_argument("--build-cost", type=float, default=2e6,
                        help="autoscaler break-even in projected cycles")
    parser.add_argument("--build-seconds", type=float, default=0.01,
                        help="simulated bitstream-build latency")
    parser.add_argument("--max-nodes", type=int, default=8)
    parser.add_argument("--c", type=int, default=None,
                        help="datapath width (default: auto by nnz)")
    parser.add_argument("--backend", choices=("interpret", "compiled"),
                        default="compiled",
                        help="accelerator execution backend "
                             "(default compiled)")
    parser.add_argument("--metrics-format",
                        choices=("plain", "prometheus"), default="plain",
                        help="render metrics human-readable (plain) or in "
                             "Prometheus text exposition format")
    parser.add_argument("--report-json", default=None,
                        help="write the fleet report(s) to this JSON file")
    parser.add_argument("--eps", type=float, default=1e-3,
                        help="solver eps_abs/eps_rel")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    families = [f.strip() for f in args.families.split(",") if f.strip()]
    unknown = sorted(set(families) - set(FAMILIES))
    if unknown:
        parser.error(f"unknown families {', '.join(unknown)} "
                     f"(available: {','.join(sorted(FAMILIES))})")
    templates, problems = build_workload(
        families, args.structures, args.requests, args.scale, args.skew,
        args.seed)
    print(f"workload: {len(problems)} requests over "
          f"{len(templates)} structures "
          f"(zipf skew {args.skew}, {args.arrival}-loop arrivals, "
          f"seed {args.seed})")

    policies = list(POLICIES) if args.compare else [args.policy]
    reports = {}
    exit_code = 0
    for policy in policies:
        t0 = time.perf_counter()
        fleet = run_replay(args, policy, templates, problems)
        elapsed = time.perf_counter() - t0
        report = fleet.fleet_report()
        reports[policy] = report
        print(f"\n=== policy: {policy} "
              f"(replayed in {elapsed:.2f} s wall) ===")
        print(fleet.render_report())
        if not args.compare:
            print("\nmetrics:")
            if args.metrics_format == "prometheus":
                print(fleet.metrics.render_prometheus(), end="")
            else:
                print(fleet.metrics.render())
        served = report["requests"] - report["shed"]
        if report["converged"] < served:
            exit_code = 1

    if args.compare and "match" in reports:
        match = reports["match"]
        print("\n=== comparison (same stream, same seed) ===")
        for policy, report in reports.items():
            if policy == "match":
                continue
            dthr = (match["eta_weighted_throughput"]
                    - report["eta_weighted_throughput"])
            dp95 = (report["latency_seconds"]["p95"]
                    - match["latency_seconds"]["p95"])
            print(f"match vs {policy}: "
                  f"eta-throughput {dthr:+.1f} eta/s, "
                  f"p95 latency {dp95 * 1e3:+.3f} ms "
                  f"(positive = match wins)")

    if args.report_json:
        payload = reports if args.compare else reports[policies[0]]
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"\nreport written to {args.report_json}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
