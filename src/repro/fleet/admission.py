"""Admission control: protect the accelerator fleet from overload.

Two independent mechanisms, applied at arrival time in simulated time:

* a :class:`TokenBucket` rate limiter — traffic beyond the contracted
  rate is *shed* (rejected outright, no solve);
* queue-depth shedding — admitted traffic that would land on a fleet
  whose every online node already has a backlog at or above
  ``max_queue_depth`` is diverted to the reference-solver *spill lane*
  (the software fallback tier :class:`~repro.serving.SolverService`
  also uses), trading the accelerator's speed for bounded accelerator
  queues.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TokenBucket", "AdmissionDecision", "AdmissionController",
           "ACCEPT", "SPILL", "SHED"]

ACCEPT = "accept"
SPILL = "spill"
SHED = "shed"


class TokenBucket:
    """Classic token bucket over the simulated clock.

    ``rate`` tokens accrue per simulated second up to ``burst``; one
    token admits one request. Deterministic: refill depends only on
    event timestamps.
    """

    def __init__(self, rate: float, burst: float | None = None):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else self.rate
        if self.burst < 1:
            raise ValueError("burst must allow at least one request")
        self.tokens = self.burst
        self._last = 0.0

    def try_take(self, now: float) -> bool:
        now = float(now)
        if now < self._last:
            # Clock went backwards (NTP step, misordered caller):
            # clamp to the refill watermark. Minting from a negative
            # elapsed time — or rewinding the watermark so the same
            # interval refills twice — would hand out free tokens.
            now = self._last
        if now > self._last:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._last) * self.rate)
            self._last = now
        if self.tokens >= 1.0 - 1e-12:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome for one arrival: accept, spill, or shed — plus why."""

    action: str
    reason: str = ""

    @property
    def admitted(self) -> bool:
        return self.action == ACCEPT


class AdmissionController:
    """Rate limiting + queue-depth shedding at the fleet front door.

    Parameters
    ----------
    rate, burst:
        Token-bucket arrival budget in requests per simulated second;
        ``rate=None`` disables rate limiting.
    max_queue_depth:
        When every online node's backlog (queued + in service) is at or
        above this, new arrivals spill to the reference lane;
        ``None`` disables depth shedding.
    """

    def __init__(self, rate: float | None = None,
                 burst: float | None = None,
                 max_queue_depth: int | None = None):
        self.bucket = TokenBucket(rate, burst) if rate is not None else None
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_queue_depth = max_queue_depth

    def decide(self, now: float, nodes) -> AdmissionDecision:
        if self.bucket is not None and not self.bucket.try_take(now):
            return AdmissionDecision(SHED, "rate-limit")
        online = [n for n in nodes if n.online(now)]
        if not online:
            return AdmissionDecision(SPILL, "no-online-node")
        if self.max_queue_depth is not None and all(
                n.backlog(now) >= self.max_queue_depth for n in online):
            return AdmissionDecision(SPILL, "queue-depth")
        return AdmissionDecision(ACCEPT)
