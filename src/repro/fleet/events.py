"""Discrete-event machinery of the fleet simulator.

The fleet runs on a *simulated* clock: requests arrive at scheduled
instants, each accelerator node serves its FIFO queue one request at a
time, and a request's service duration is the accelerator's own cycle
count at the node architecture's modeled ``f_max`` (plus, on the spill
lane, the CPU model's solve time). Everything queueing-related —
arrival processes, waiting, utilization, latency percentiles — is
therefore deterministic for a fixed seed, while the numeric solves
behind the service times are real.

This module owns the mechanics only: a seekable event queue with
stable FIFO tie-breaking, the per-node state (:class:`AcceleratorNode`)
and the reference-solver spill lane (:class:`SpillLane`). Routing,
admission, autoscaling and the actual solves live in their own modules.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

__all__ = ["Event", "EventQueue", "AcceleratorNode", "SpillLane"]


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled occurrence; ordered by time, then insertion."""

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: object = field(compare=False, default=None)


class EventQueue:
    """Min-heap of events with a monotonically advancing clock."""

    def __init__(self):
        self._heap: list[Event] = []
        self._seq = 0
        self.now = 0.0

    def push(self, time: float, kind: str, payload=None) -> Event:
        if time < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule {kind!r} at {time} before now={self.now}")
        event = Event(time=float(time), seq=self._seq, kind=kind,
                      payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        event = heapq.heappop(self._heap)
        self.now = max(self.now, event.time)
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class AcceleratorNode:
    """One simulated accelerator pinned to a frozen architecture.

    The architecture is the node's "bitstream": it never changes after
    commissioning. Any problem structure can run on it (schedules and
    CVB layouts are re-derived per structure), just with a worse match
    score — the router's whole tradeoff.
    """

    def __init__(self, node_id: int, architecture,
                 commissioned_at: float = 0.0,
                 available_at: float | None = None):
        self.node_id = int(node_id)
        self.architecture = architecture
        self.arch_string = str(architecture)
        self.commissioned_at = float(commissioned_at)
        #: Build delay: the node joins the fleet once its (simulated)
        #: bitstream build completes.
        self.available_at = (float(available_at) if available_at is not None
                             else self.commissioned_at)
        #: Draining nodes finish their queue but accept no new work.
        self.draining = False
        #: A failed node is offline until this instant (None = healthy).
        self.failed_until: float | None = None
        #: Bumped on every failure; in-flight completion events carry
        #: the epoch they were scheduled under, so a completion from
        #: before a crash is recognized as stale and dropped.
        self.epoch = 0
        self.failures = 0
        self.queue: deque = deque()
        self.busy_with = None
        self.busy_until = 0.0
        # -- accounting ------------------------------------------------
        self.served = 0
        self.busy_seconds = 0.0
        self.eta_sum = 0.0
        self.last_active = self.available_at
        self._current_eta = 0.0

    # ------------------------------------------------------------------
    def online(self, now: float) -> bool:
        """Eligible for routing: built, healthy and not draining."""
        if self.failed_until is not None \
                and now < self.failed_until - 1e-12:
            return False
        return now + 1e-12 >= self.available_at and not self.draining

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    def backlog(self, now: float) -> int:
        """Requests ahead of a new arrival: queued + in service."""
        return len(self.queue) + (1 if self.busy_with is not None else 0)

    @property
    def idle(self) -> bool:
        return self.busy_with is None and not self.queue

    def enqueue(self, request) -> None:
        self.queue.append(request)

    def start_service(self, now: float, request, seconds: float,
                      eta: float) -> float:
        """Begin serving ``request``; returns the completion instant."""
        if self.busy_with is not None:
            raise RuntimeError(f"node {self.node_id} is already busy")
        if seconds < 0:
            raise ValueError("service time must be non-negative")
        self.busy_with = request
        self.busy_until = now + seconds
        self.busy_seconds += seconds
        self.eta_sum += eta
        self.served += 1
        self.last_active = now
        self._current_eta = eta
        return self.busy_until

    def finish_service(self, now: float):
        """Complete the in-flight request; returns it."""
        request = self.busy_with
        self.busy_with = None
        self.last_active = now
        return request

    def abort_service(self, now: float):
        """Abandon the in-flight request (node died); returns it.

        Reverses the up-front service accounting: the aborted request
        was not served, and only the busy time actually elapsed before
        the crash counts toward utilization.
        """
        request = self.busy_with
        if request is None:
            return None
        self.busy_seconds -= max(self.busy_until - now, 0.0)
        self.eta_sum -= self._current_eta
        self.served -= 1
        self.busy_with = None
        self.last_active = now
        return request

    def fail(self, now: float, duration: float) -> None:
        """The node stalls/dies at ``now`` for ``duration`` seconds.

        Bumps the epoch so any already-scheduled completion event is
        recognized as stale; the caller requeues the in-flight and
        queued requests (see :meth:`abort_service`).
        """
        self.failed_until = float(now) + max(float(duration), 0.0)
        self.epoch += 1
        self.failures += 1

    def recover(self, now: float) -> None:
        """Back to service (health checks decide when traffic returns)."""
        self.failed_until = None
        self.last_active = now

    @property
    def mean_eta(self) -> float:
        return self.eta_sum / self.served if self.served else 0.0

    def utilization(self, horizon: float) -> float:
        return self.busy_seconds / horizon if horizon > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AcceleratorNode(id={self.node_id}, "
                f"arch={self.arch_string}, depth={self.queue_depth})")


class SpillLane:
    """FIFO farm of reference-solver servers for shed-to-software work.

    Requests the admission controller diverts from the accelerators run
    on the software fallback tier (the same reference solver
    :class:`~repro.serving.SolverService` falls back to), with service
    times taken from the calibrated CPU timing model.
    """

    def __init__(self, servers: int = 1):
        if servers < 1:
            raise ValueError("spill lane needs at least one server")
        self.servers = int(servers)
        self.queue: deque = deque()
        self.active = 0
        self.served = 0
        self.busy_seconds = 0.0

    @property
    def has_free_server(self) -> bool:
        return self.active < self.servers

    def enqueue(self, request) -> None:
        self.queue.append(request)

    def start_service(self, now: float, seconds: float) -> float:
        if not self.has_free_server:
            raise RuntimeError("no free spill server")
        self.active += 1
        self.served += 1
        self.busy_seconds += seconds
        return now + seconds

    def finish_service(self) -> None:
        if self.active < 1:
            raise RuntimeError("spill lane has no request in flight")
        self.active -= 1
