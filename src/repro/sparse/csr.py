"""Compressed Sparse Row matrix implemented from scratch on numpy storage.

This is the workhorse format of the reproduction: the RSQP hardware model
streams matrix non-zeros row by row, exactly the order CSR stores them in,
so the sparsity-string encoding (:mod:`repro.encoding`) and the SpMV pack
scheduler (:mod:`repro.customization`) are both defined directly over a
:class:`CSRMatrix`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A sparse matrix in Compressed Sparse Row format.

    Parameters
    ----------
    shape:
        ``(m, n)`` matrix dimensions.
    data:
        Non-zero values, length ``nnz``, row-major order.
    indices:
        Column index of each non-zero, length ``nnz``.
    indptr:
        Row pointer array of length ``m + 1``; row ``i`` occupies
        ``data[indptr[i]:indptr[i+1]]``.

    Invariants (checked on construction): ``indptr`` is non-decreasing,
    starts at 0 and ends at ``nnz``; column indices are in range and
    strictly increasing within each row (canonical form).
    """

    __slots__ = ("shape", "data", "indices", "indptr")

    def __init__(self, shape, data, indices, indptr, *, check: bool = True):
        m, n = int(shape[0]), int(shape[1])
        self.shape = (m, n)
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        if check:
            self._check()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, array) -> "CSRMatrix":
        """Build from a dense 2-D array, dropping exact zeros."""
        arr = np.asarray(array, dtype=np.float64)
        if arr.ndim != 2:
            raise ShapeError(f"expected 2-D array, got ndim={arr.ndim}")
        m, n = arr.shape
        indptr = np.zeros(m + 1, dtype=np.int64)
        rows, cols = np.nonzero(arr)
        counts = np.bincount(rows, minlength=m)
        indptr[1:] = np.cumsum(counts)
        return cls((m, n), arr[rows, cols], cols, indptr, check=False)

    @classmethod
    def from_coo(cls, rows, cols, vals, shape) -> "CSRMatrix":
        """Build from coordinate triples; duplicate entries are summed."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (rows.shape == cols.shape == vals.shape):
            raise ShapeError("rows, cols and vals must have identical shapes")
        m, n = int(shape[0]), int(shape[1])
        if rows.size and (rows.min() < 0 or rows.max() >= m):
            raise ShapeError("row index out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= n):
            raise ShapeError("column index out of range")
        # Sort lexicographically by (row, col), then merge duplicates.
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if rows.size:
            keep = np.ones(rows.size, dtype=bool)
            keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            group_id = np.cumsum(keep) - 1
            merged = np.zeros(group_id[-1] + 1, dtype=np.float64)
            np.add.at(merged, group_id, vals)
            rows, cols, vals = rows[keep], cols[keep], merged
        indptr = np.zeros(m + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(rows, minlength=m))
        return cls((m, n), vals, cols, indptr, check=False)

    @classmethod
    def zeros(cls, shape) -> "CSRMatrix":
        """An all-zero matrix with no stored entries."""
        m = int(shape[0])
        return cls(shape, np.zeros(0), np.zeros(0, dtype=np.int64),
                   np.zeros(m + 1, dtype=np.int64), check=False)

    # ------------------------------------------------------------------
    # invariants & basic properties
    # ------------------------------------------------------------------
    def _check(self) -> None:
        m, n = self.shape
        if self.indptr.shape != (m + 1,):
            raise ShapeError("indptr must have length m + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.size:
            raise ShapeError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ShapeError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise ShapeError("indices and data must have equal length")
        if self.indices.size and (self.indices.min() < 0
                                  or self.indices.max() >= n):
            raise ShapeError("column index out of range")
        for i in range(m):
            row = self.indices[self.indptr[i]:self.indptr[i + 1]]
            if row.size > 1 and np.any(np.diff(row) <= 0):
                raise ShapeError(f"row {i} column indices not strictly "
                                 "increasing (non-canonical CSR)")

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.size)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def row_nnz(self) -> np.ndarray:
        """Number of stored entries in each row (length ``m``)."""
        return np.diff(self.indptr)

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(self.shape, self.data.copy(), self.indices.copy(),
                         self.indptr.copy(), check=False)

    # ------------------------------------------------------------------
    # linear operations
    # ------------------------------------------------------------------
    def matvec(self, x) -> np.ndarray:
        """Compute ``A @ x`` in O(nnz) with vectorized numpy.

        Uses a cumulative-sum segmented reduction so empty rows are
        handled correctly (``np.add.reduceat`` mis-handles them).
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ShapeError(
                f"matvec: expected vector of length {self.shape[1]}, "
                f"got shape {x.shape}")
        products = self.data * x[self.indices]
        running = np.concatenate(([0.0], np.cumsum(products)))
        return running[self.indptr[1:]] - running[self.indptr[:-1]]

    def rmatvec(self, y) -> np.ndarray:
        """Compute ``A.T @ y`` without materializing the transpose."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (self.shape[0],):
            raise ShapeError(
                f"rmatvec: expected vector of length {self.shape[0]}, "
                f"got shape {y.shape}")
        row_of = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        out = np.zeros(self.shape[1])
        np.add.at(out, self.indices, self.data * y[row_of])
        return out

    def diagonal(self) -> np.ndarray:
        """Main diagonal as a dense vector of length ``min(m, n)``."""
        k = min(self.shape)
        out = np.zeros(k)
        row_of = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        on_diag = (row_of == self.indices) & (self.indices < k)
        out[self.indices[on_diag]] = self.data[on_diag]
        return out

    def column_sq_sums(self) -> np.ndarray:
        """Per-column sums of squared entries, ``diag(A.T A)``.

        Needed by the Jacobi preconditioner of the reduced KKT operator
        ``P + sigma I + rho A^T A`` without ever forming ``A^T A``.
        """
        out = np.zeros(self.shape[1])
        np.add.at(out, self.indices, self.data ** 2)
        return out

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def transpose(self) -> "CSRMatrix":
        """Return ``A.T`` as a new canonical CSR matrix."""
        m, n = self.shape
        row_of = np.repeat(np.arange(m), np.diff(self.indptr))
        # Entries are already row-ordered, so a stable sort by column
        # yields exactly the (col, row) lexicographic order of the
        # transpose — a pure permutation, no COO round trip.
        order = np.argsort(self.indices, kind="stable")
        indptr = np.zeros(n + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(self.indices, minlength=n))
        # `+ 0.0` flushes -0.0 entries exactly like the COO-merge
        # accumulation this replaces, keeping old transposes bitwise.
        return CSRMatrix((n, m), self.data[order] + 0.0, row_of[order],
                         indptr, check=False)

    def permute_rows(self, perm) -> "CSRMatrix":
        """Return the matrix with row ``perm[i]`` of ``self`` as new row ``i``."""
        perm = _validated_perm(perm, self.shape[0])
        counts = np.diff(self.indptr)[perm]
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(counts)
        data = np.empty_like(self.data)
        indices = np.empty_like(self.indices)
        for new_i, old_i in enumerate(perm):
            s, e = self.indptr[old_i], self.indptr[old_i + 1]
            t = indptr[new_i]
            data[t:t + (e - s)] = self.data[s:e]
            indices[t:t + (e - s)] = self.indices[s:e]
        return CSRMatrix(self.shape, data, indices, indptr, check=False)

    def permute_cols(self, perm) -> "CSRMatrix":
        """Return the matrix with column ``perm[j]`` of ``self`` as new column ``j``."""
        perm = _validated_perm(perm, self.shape[1])
        inv = np.empty_like(perm)
        inv[perm] = np.arange(perm.size)
        rows, cols, vals = self.to_coo()
        return CSRMatrix.from_coo(rows, inv[cols], vals, self.shape)

    def scale_rows(self, d) -> "CSRMatrix":
        """Return ``diag(d) @ A``."""
        d = np.asarray(d, dtype=np.float64)
        if d.shape != (self.shape[0],):
            raise ShapeError("row scaling vector has wrong length")
        row_of = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return CSRMatrix(self.shape, self.data * d[row_of],
                         self.indices.copy(), self.indptr.copy(), check=False)

    def scale_cols(self, d) -> "CSRMatrix":
        """Return ``A @ diag(d)``."""
        d = np.asarray(d, dtype=np.float64)
        if d.shape != (self.shape[1],):
            raise ShapeError("column scaling vector has wrong length")
        return CSRMatrix(self.shape, self.data * d[self.indices],
                         self.indices.copy(), self.indptr.copy(), check=False)

    def prune(self, tol: float = 0.0) -> "CSRMatrix":
        """Drop stored entries with ``|value| <= tol``."""
        keep = np.abs(self.data) > tol
        row_of = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return CSRMatrix.from_coo(row_of[keep], self.indices[keep],
                                  self.data[keep], self.shape)

    def triu(self, k: int = 0) -> "CSRMatrix":
        """Upper triangle (entries with ``col - row >= k``)."""
        rows, cols, vals = self.to_coo()
        keep = (cols - rows) >= k
        return CSRMatrix.from_coo(rows[keep], cols[keep], vals[keep],
                                  self.shape)

    def tril(self, k: int = 0) -> "CSRMatrix":
        """Lower triangle (entries with ``col - row <= k``)."""
        rows, cols, vals = self.to_coo()
        keep = (cols - rows) <= k
        return CSRMatrix.from_coo(rows[keep], cols[keep], vals[keep],
                                  self.shape)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        row_of = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        out[row_of, self.indices] = self.data
        return out

    def to_coo(self):
        """Return ``(rows, cols, vals)`` coordinate arrays."""
        row_of = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return row_of, self.indices.copy(), self.data.copy()

    def row(self, i: int):
        """Return ``(cols, vals)`` of row ``i`` as views."""
        s, e = self.indptr[i], self.indptr[i + 1]
        return self.indices[s:e], self.data[s:e]

    # ------------------------------------------------------------------
    # arithmetic helpers
    # ------------------------------------------------------------------
    def __add__(self, other: "CSRMatrix") -> "CSRMatrix":
        if not isinstance(other, CSRMatrix):
            return NotImplemented
        if self.shape != other.shape:
            raise ShapeError("matrix addition requires equal shapes")
        r1, c1, v1 = self.to_coo()
        r2, c2, v2 = other.to_coo()
        return CSRMatrix.from_coo(np.concatenate([r1, r2]),
                                  np.concatenate([c1, c2]),
                                  np.concatenate([v1, v2]), self.shape)

    def __mul__(self, scalar: float) -> "CSRMatrix":
        return CSRMatrix(self.shape, self.data * float(scalar),
                         self.indices.copy(), self.indptr.copy(), check=False)

    __rmul__ = __mul__

    def __matmul__(self, x):
        if isinstance(x, CSRMatrix):
            return self.matmul(x)
        if not isinstance(x, (np.ndarray, list, tuple)) \
                and hasattr(x, "__rmatmul__"):
            return NotImplemented  # defer to e.g. modeling expressions
        return self.matvec(x)

    def matmul(self, other: "CSRMatrix") -> "CSRMatrix":
        """Sparse matrix product ``A @ B`` (row-wise accumulation).

        Intended for the modest matrices of problem construction, not
        for the solver hot path — the solver never forms matrix
        products (see :class:`repro.qp.ReducedKKTOperator`).
        """
        if not isinstance(other, CSRMatrix):
            raise ShapeError("matmul expects a CSRMatrix")
        if self.shape[1] != other.shape[0]:
            raise ShapeError(
                f"cannot multiply {self.shape} by {other.shape}")
        rows_out, cols_out, vals_out = [], [], []
        for i in range(self.shape[0]):
            cols_a, vals_a = self.row(i)
            if cols_a.size == 0:
                continue
            acc: dict = {}
            for col_a, val_a in zip(cols_a.tolist(), vals_a.tolist()):
                cols_b, vals_b = other.row(col_a)
                for col_b, val_b in zip(cols_b.tolist(),
                                        vals_b.tolist()):
                    acc[col_b] = acc.get(col_b, 0.0) + val_a * val_b
            for col, val in acc.items():
                rows_out.append(i)
                cols_out.append(col)
                vals_out.append(val)
        if not rows_out:
            return CSRMatrix.zeros((self.shape[0], other.shape[1]))
        return CSRMatrix.from_coo(rows_out, cols_out, vals_out,
                                  (self.shape[0], other.shape[1]))

    def allclose(self, other: "CSRMatrix", *, atol: float = 1e-12) -> bool:
        """Numerically compare two matrices independent of stored zeros."""
        if self.shape != other.shape:
            return False
        return np.allclose(self.to_dense(), other.to_dense(), atol=atol)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CSRMatrix(shape={self.shape}, nnz={self.nnz})")


def _validated_perm(perm, size: int) -> np.ndarray:
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (size,):
        raise ShapeError(f"permutation must have length {size}")
    if not np.array_equal(np.sort(perm), np.arange(size)):
        raise ShapeError("not a permutation of 0..size-1")
    return perm
