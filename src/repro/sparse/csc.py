"""Compressed Sparse Column matrix.

The direct LDL^T factorization (:mod:`repro.linalg.ldl`) operates on the
upper triangle of a symmetric matrix stored in CSC form, following the
layout used by OSQP's QDLDL routine.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from .csr import CSRMatrix, _validated_perm

__all__ = ["CSCMatrix"]


class CSCMatrix:
    """A sparse matrix in Compressed Sparse Column format.

    Storage mirrors :class:`~repro.sparse.csr.CSRMatrix` with the roles of
    rows and columns swapped: column ``j`` occupies
    ``data[indptr[j]:indptr[j+1]]`` with row indices ``indices[...]`` in
    strictly increasing order.
    """

    __slots__ = ("shape", "data", "indices", "indptr")

    def __init__(self, shape, data, indices, indptr, *, check: bool = True):
        m, n = int(shape[0]), int(shape[1])
        self.shape = (m, n)
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        if check:
            self._check()

    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, array) -> "CSCMatrix":
        arr = np.asarray(array, dtype=np.float64)
        if arr.ndim != 2:
            raise ShapeError(f"expected 2-D array, got ndim={arr.ndim}")
        return cls.from_csr(CSRMatrix.from_dense(arr))

    @classmethod
    def from_coo(cls, rows, cols, vals, shape) -> "CSCMatrix":
        """Build from coordinate triples; duplicates are summed."""
        return cls.from_csr(CSRMatrix.from_coo(rows, cols, vals, shape))

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "CSCMatrix":
        """Convert a CSR matrix; O(nnz log nnz)."""
        rows, cols, vals = csr.to_coo()
        order = np.lexsort((rows, cols))
        rows, cols, vals = rows[order], cols[order], vals[order]
        m, n = csr.shape
        indptr = np.zeros(n + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(cols, minlength=n))
        return cls((m, n), vals, rows, indptr, check=False)

    def to_csr(self) -> CSRMatrix:
        rows, cols, vals = self.to_coo()
        return CSRMatrix.from_coo(rows, cols, vals, self.shape)

    # ------------------------------------------------------------------
    def _check(self) -> None:
        m, n = self.shape
        if self.indptr.shape != (n + 1,):
            raise ShapeError("indptr must have length n + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.size:
            raise ShapeError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ShapeError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise ShapeError("indices and data must have equal length")
        if self.indices.size and (self.indices.min() < 0
                                  or self.indices.max() >= m):
            raise ShapeError("row index out of range")
        for j in range(n):
            col = self.indices[self.indptr[j]:self.indptr[j + 1]]
            if col.size > 1 and np.any(np.diff(col) <= 0):
                raise ShapeError(f"column {j} row indices not strictly "
                                 "increasing (non-canonical CSC)")

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def col_nnz(self) -> np.ndarray:
        return np.diff(self.indptr)

    def copy(self) -> "CSCMatrix":
        return CSCMatrix(self.shape, self.data.copy(), self.indices.copy(),
                         self.indptr.copy(), check=False)

    # ------------------------------------------------------------------
    def matvec(self, x) -> np.ndarray:
        """Compute ``A @ x`` by scatter-add over columns."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ShapeError(
                f"matvec: expected vector of length {self.shape[1]}, "
                f"got shape {x.shape}")
        col_of = np.repeat(np.arange(self.shape[1]), np.diff(self.indptr))
        out = np.zeros(self.shape[0])
        np.add.at(out, self.indices, self.data * x[col_of])
        return out

    def rmatvec(self, y) -> np.ndarray:
        """Compute ``A.T @ y`` by per-column segmented reduction."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (self.shape[0],):
            raise ShapeError(
                f"rmatvec: expected vector of length {self.shape[0]}, "
                f"got shape {y.shape}")
        products = self.data * y[self.indices]
        running = np.concatenate(([0.0], np.cumsum(products)))
        return running[self.indptr[1:]] - running[self.indptr[:-1]]

    def __matmul__(self, x):
        return self.matvec(x)

    def col(self, j: int):
        """Return ``(rows, vals)`` of column ``j`` as views."""
        s, e = self.indptr[j], self.indptr[j + 1]
        return self.indices[s:e], self.data[s:e]

    def diagonal(self) -> np.ndarray:
        k = min(self.shape)
        out = np.zeros(k)
        col_of = np.repeat(np.arange(self.shape[1]), np.diff(self.indptr))
        on_diag = (col_of == self.indices) & (self.indices < k)
        out[col_of[on_diag]] = self.data[on_diag]
        return out

    # ------------------------------------------------------------------
    def symmetric_permute_upper(self, perm) -> "CSCMatrix":
        """Symmetric permutation of an upper-triangular matrix.

        ``self`` stores the upper triangle of a symmetric matrix ``M``;
        the result stores the upper triangle of ``M[perm][:, perm]``
        (entries landing in the lower triangle are mirrored back up).
        """
        n = self.shape[0]
        if self.shape[0] != self.shape[1]:
            raise ShapeError("symmetric permutation requires a square matrix")
        perm = _validated_perm(perm, n)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(n)
        rows, cols, vals = self.to_coo()
        new_r, new_c = inv[rows], inv[cols]
        swap = new_r > new_c
        new_r[swap], new_c[swap] = new_c[swap], new_r[swap].copy()
        return CSCMatrix.from_coo(new_r, new_c, vals, self.shape)

    def to_coo(self):
        col_of = np.repeat(np.arange(self.shape[1]), np.diff(self.indptr))
        return self.indices.copy(), col_of, self.data.copy()

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        col_of = np.repeat(np.arange(self.shape[1]), np.diff(self.indptr))
        out[self.indices, col_of] = self.data
        return out

    def allclose(self, other: "CSCMatrix", *, atol: float = 1e-12) -> bool:
        if self.shape != other.shape:
            return False
        return np.allclose(self.to_dense(), other.to_dense(), atol=atol)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
