"""Constructors for structured sparse matrices.

These are the building blocks used by the QP benchmark generators
(:mod:`repro.problems`) to assemble problem matrices with the same
structural motifs as the OSQP benchmark suite: block stacks, diagonals,
banded dynamics matrices and random sparse blocks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ShapeError
from .csr import CSRMatrix

__all__ = [
    "eye",
    "diag",
    "random_sparse",
    "hstack",
    "vstack",
    "block_diag",
    "from_blocks",
]


def eye(n: int, *, scale: float = 1.0) -> CSRMatrix:
    """``scale * I_n`` as CSR."""
    idx = np.arange(n, dtype=np.int64)
    return CSRMatrix((n, n), np.full(n, float(scale)), idx,
                     np.arange(n + 1, dtype=np.int64), check=False)


def diag(values) -> CSRMatrix:
    """Square diagonal matrix from a dense vector (zeros are kept)."""
    values = np.asarray(values, dtype=np.float64)
    n = values.size
    idx = np.arange(n, dtype=np.int64)
    return CSRMatrix((n, n), values.copy(), idx,
                     np.arange(n + 1, dtype=np.int64), check=False)


def random_sparse(m: int, n: int, density: float, rng,
                  *, values: str = "normal") -> CSRMatrix:
    """Random sparse matrix with expected ``density * m * n`` entries.

    Parameters
    ----------
    values:
        ``"normal"`` for standard normal entries, ``"uniform"`` for
        entries in ``(0, 1)``.
    """
    if not 0.0 <= density <= 1.0:
        raise ShapeError("density must be in [0, 1]")
    nnz = int(round(density * m * n))
    nnz = min(nnz, m * n)
    if nnz == 0:
        return CSRMatrix.zeros((m, n))
    flat = rng.choice(m * n, size=nnz, replace=False)
    rows, cols = np.divmod(flat, n)
    if values == "normal":
        vals = rng.standard_normal(nnz)
    elif values == "uniform":
        vals = rng.random(nnz)
    else:
        raise ValueError(f"unknown values kind: {values!r}")
    # Ensure no exact zero sneaks in and silently vanishes.
    vals[vals == 0.0] = 1.0
    return CSRMatrix.from_coo(rows, cols, vals, (m, n))


def hstack(blocks: Sequence[CSRMatrix]) -> CSRMatrix:
    """Horizontal concatenation ``[B0 B1 ...]``."""
    if not blocks:
        raise ShapeError("hstack needs at least one block")
    m = blocks[0].shape[0]
    if any(b.shape[0] != m for b in blocks):
        raise ShapeError("hstack blocks must share the row count")
    rows_all, cols_all, vals_all = [], [], []
    offset = 0
    for b in blocks:
        r, c, v = b.to_coo()
        rows_all.append(r)
        cols_all.append(c + offset)
        vals_all.append(v)
        offset += b.shape[1]
    return CSRMatrix.from_coo(np.concatenate(rows_all),
                              np.concatenate(cols_all),
                              np.concatenate(vals_all), (m, offset))


def vstack(blocks: Sequence[CSRMatrix]) -> CSRMatrix:
    """Vertical concatenation ``[B0; B1; ...]``."""
    if not blocks:
        raise ShapeError("vstack needs at least one block")
    n = blocks[0].shape[1]
    if any(b.shape[1] != n for b in blocks):
        raise ShapeError("vstack blocks must share the column count")
    rows_all, cols_all, vals_all = [], [], []
    offset = 0
    for b in blocks:
        r, c, v = b.to_coo()
        rows_all.append(r + offset)
        cols_all.append(c)
        vals_all.append(v)
        offset += b.shape[0]
    return CSRMatrix.from_coo(np.concatenate(rows_all),
                              np.concatenate(cols_all),
                              np.concatenate(vals_all), (offset, n))


def block_diag(blocks: Sequence[CSRMatrix]) -> CSRMatrix:
    """Block-diagonal assembly ``diag(B0, B1, ...)``."""
    if not blocks:
        raise ShapeError("block_diag needs at least one block")
    rows_all, cols_all, vals_all = [], [], []
    ro = co = 0
    for b in blocks:
        r, c, v = b.to_coo()
        rows_all.append(r + ro)
        cols_all.append(c + co)
        vals_all.append(v)
        ro += b.shape[0]
        co += b.shape[1]
    return CSRMatrix.from_coo(np.concatenate(rows_all),
                              np.concatenate(cols_all),
                              np.concatenate(vals_all), (ro, co))


def from_blocks(grid: Sequence[Sequence]) -> CSRMatrix:
    """Assemble from a 2-D grid of blocks; ``None`` means a zero block.

    Every row of the grid must have the same number of block columns, and
    block shapes must be consistent along rows and columns. At least one
    block per grid row and per grid column must be non-``None`` so the
    zero blocks' shapes are inferable.
    """
    nrows = len(grid)
    if nrows == 0:
        raise ShapeError("from_blocks needs at least one row")
    ncols = len(grid[0])
    if any(len(row) != ncols for row in grid):
        raise ShapeError("ragged block grid")
    row_heights = [None] * nrows
    col_widths = [None] * ncols
    for i, row in enumerate(grid):
        for j, b in enumerate(row):
            if b is None:
                continue
            if row_heights[i] is None:
                row_heights[i] = b.shape[0]
            elif row_heights[i] != b.shape[0]:
                raise ShapeError(f"inconsistent height in block row {i}")
            if col_widths[j] is None:
                col_widths[j] = b.shape[1]
            elif col_widths[j] != b.shape[1]:
                raise ShapeError(f"inconsistent width in block column {j}")
    if any(h is None for h in row_heights) or any(w is None for w in col_widths):
        raise ShapeError("a full row or column of None blocks has unknown shape")
    row_off = np.concatenate(([0], np.cumsum(row_heights)))
    col_off = np.concatenate(([0], np.cumsum(col_widths)))
    rows_all, cols_all, vals_all = [], [], []
    for i, row in enumerate(grid):
        for j, b in enumerate(row):
            if b is None:
                continue
            r, c, v = b.to_coo()
            rows_all.append(r + row_off[i])
            cols_all.append(c + col_off[j])
            vals_all.append(v)
    shape = (int(row_off[-1]), int(col_off[-1]))
    if not rows_all:
        return CSRMatrix.zeros(shape)
    return CSRMatrix.from_coo(np.concatenate(rows_all),
                              np.concatenate(cols_all),
                              np.concatenate(vals_all), shape)
