"""Sparse matrix substrate implemented from scratch on numpy storage."""

from .builders import (block_diag, diag, eye, from_blocks, hstack,
                       random_sparse, vstack)
from .csc import CSCMatrix
from .csr import CSRMatrix

__all__ = [
    "CSRMatrix",
    "CSCMatrix",
    "eye",
    "diag",
    "random_sparse",
    "hstack",
    "vstack",
    "block_diag",
    "from_blocks",
]
