"""MKL-accelerated CPU timing model (the paper's performance baseline).

The model charges three well-understood cost components per library
call, calibrated to sparse-CG behaviour on a desktop-class part
(i7-10700KF, 8 threads, dual-channel DDR4):

* a fixed per-call overhead (threading fork/join and dispatch),
* an SpMV term limited by the *gather-bound* effective bandwidth of
  CSR ``x[col]`` accesses, and
* a streaming term for dense vector kernels.

Substitution note (DESIGN.md): we cannot run MKL in this environment;
iteration counts come from real solves by our reference solver and only
the per-iteration seconds are modeled.
"""

from __future__ import annotations

from dataclasses import dataclass

from .workload import SolveWorkload

__all__ = ["CPUModel", "cpu_solve_seconds"]


@dataclass(frozen=True)
class CPUModel:
    """Tunable constants of the CPU model."""

    #: Fixed per-library-call overhead (8-thread barrier + dispatch), s.
    call_overhead: float = 2.5e-6
    #: Effective SpMV rate, non-zeros per second (gather-bound CSR).
    spmv_nnz_per_s: float = 0.8e9
    #: Dense vector streaming rate, elements per second.
    vector_elems_per_s: float = 2.5e9
    #: One-time setup (symbolic work, first-touch, allocation), s.
    setup_seconds: float = 5e-4

    def spmv_call_seconds(self, nnz: int) -> float:
        return self.call_overhead + nnz / self.spmv_nnz_per_s

    def vector_call_seconds(self, elements: int) -> float:
        return self.call_overhead + elements / self.vector_elems_per_s

    def solve_seconds(self, workload: SolveWorkload) -> float:
        spmv_nnz_per_call = workload.nnz_spmv / 3.0
        spmv = workload.total_spmv_calls \
            * self.spmv_call_seconds(spmv_nnz_per_call)
        vector = workload.total_vector_calls \
            * self.vector_call_seconds(workload.vector_elements)
        return self.setup_seconds + spmv + vector

    def kkt_solve_seconds(self, workload: SolveWorkload) -> float:
        """Time inside Algorithm 2 only (for the Figure 8 split)."""
        from .workload import PCG_SPMV_CALLS, PCG_VECTOR_CALLS
        spmv_nnz_per_call = workload.nnz_spmv / 3.0
        spmv = (PCG_SPMV_CALLS * workload.pcg_iterations
                * self.spmv_call_seconds(spmv_nnz_per_call))
        vector = (PCG_VECTOR_CALLS * workload.pcg_iterations
                  * self.vector_call_seconds(workload.vector_elements))
        return spmv + vector


def cpu_solve_seconds(workload: SolveWorkload,
                      model: CPUModel | None = None) -> float:
    """End-to-end CPU solver time for a workload."""
    return (model or CPUModel()).solve_seconds(workload)
