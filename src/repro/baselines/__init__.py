"""Analytic CPU (MKL) and GPU (cuOSQP) baseline models, plus Table 2."""

from .cpu import CPUModel, cpu_solve_seconds
from .devices import I7_CPU, RTX3070_GPU, TABLE2, U50_FPGA, Device
from .gpu import GPUModel, gpu_power_watts, gpu_solve_seconds
from .workload import SolveWorkload, workload_from_result

__all__ = [
    "CPUModel",
    "cpu_solve_seconds",
    "GPUModel",
    "gpu_solve_seconds",
    "gpu_power_watts",
    "SolveWorkload",
    "workload_from_result",
    "Device",
    "U50_FPGA",
    "I7_CPU",
    "RTX3070_GPU",
    "TABLE2",
]
