"""Device catalog — paper Table 2 (Platform Details)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Device", "U50_FPGA", "I7_CPU", "RTX3070_GPU", "TABLE2"]


@dataclass(frozen=True)
class Device:
    """One evaluation platform."""

    name: str
    model: str
    peak_teraflops: float
    lithography_nm: int
    tdp_watts: float


U50_FPGA = Device(name="FPGA", model="AMD-Xilinx U50",
                  peak_teraflops=0.3, lithography_nm=16, tdp_watts=75.0)
I7_CPU = Device(name="CPU", model="Intel i7-10700KF",
                peak_teraflops=0.5, lithography_nm=14, tdp_watts=125.0)
RTX3070_GPU = Device(name="GPU", model="NVIDIA RTX3070",
                     peak_teraflops=20.0, lithography_nm=8, tdp_watts=220.0)

#: Rows of Table 2, in paper order.
TABLE2 = (U50_FPGA, I7_CPU, RTX3070_GPU)
