"""Per-iteration operation counts of the OSQP indirect path.

Both analytic timing models (CPU/MKL and GPU/cuOSQP) consume the same
workload description so their comparison is apples-to-apples: the
iteration counts come from a *real* solve by the reference solver, and
the models only translate "what work one iteration does" into seconds on
each device.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..qp import QProblem
from ..solver import OSQPResult

__all__ = ["SolveWorkload", "workload_from_result"]

#: Library calls per PCG iteration in the indirect backend: the K-apply
#: (3 SpMV calls + scale/add) plus dots, preconditioner and updates.
PCG_SPMV_CALLS = 3
PCG_VECTOR_CALLS = 10
#: Library calls per ADMM iteration outside PCG: rhs build, relaxation,
#: projection, dual update and the residual check (2 SpMVs + vector work).
ADMM_SPMV_CALLS = 4
ADMM_VECTOR_CALLS = 16


@dataclass(frozen=True)
class SolveWorkload:
    """Device-independent description of one end-to-end solve."""

    n: int
    m: int
    nnz_spmv: int       # non-zeros touched per K-apply: nnz(P) + 2 nnz(A)
    admm_iterations: int
    pcg_iterations: int

    @property
    def vector_elements(self) -> int:
        """Elements touched by one average vector operation."""
        return self.n + self.m

    @property
    def total_spmv_calls(self) -> int:
        return (PCG_SPMV_CALLS * self.pcg_iterations
                + ADMM_SPMV_CALLS * self.admm_iterations)

    @property
    def total_vector_calls(self) -> int:
        return (PCG_VECTOR_CALLS * self.pcg_iterations
                + ADMM_VECTOR_CALLS * self.admm_iterations)

    @property
    def total_spmv_nnz(self) -> int:
        """Non-zeros streamed across the whole solve (all SpMV calls)."""
        per_call = self.nnz_spmv / max(PCG_SPMV_CALLS, 1)
        return int(per_call * self.total_spmv_calls)

    @property
    def problem_bytes(self) -> int:
        """Approximate setup transfer: CSR data+index per non-zero plus
        the dense vectors."""
        return 12 * self.nnz_spmv + 8 * 6 * (self.n + self.m)


def workload_from_result(problem: QProblem,
                         result: OSQPResult) -> SolveWorkload:
    """Build the workload of a reference solve (indirect backend)."""
    return SolveWorkload(
        n=problem.n, m=problem.m,
        nnz_spmv=problem.P.nnz + 2 * problem.A.nnz,
        admm_iterations=result.info.iterations,
        pcg_iterations=result.info.pcg_iterations)
