"""cuOSQP-style GPU timing and power model (RTX 3070).

Structure mirrors the published cuOSQP behaviour: every cuSparse/cuBLAS
call pays a kernel-launch latency, so small problems are dominated by a
per-iteration floor of ~100 us and lose to the CPU; large problems are
HBM-bandwidth-bound and win. Power scales from the idle draw toward the
bandwidth-saturated draw — the paper observed 44 W to 126 W across the
benchmark against the FPGA's flat ~19 W.
"""

from __future__ import annotations

from dataclasses import dataclass

from .workload import SolveWorkload

__all__ = ["GPUModel", "gpu_solve_seconds", "gpu_power_watts"]


@dataclass(frozen=True)
class GPUModel:
    """Tunable constants of the GPU model."""

    #: Kernel launch + driver latency per library call, s.
    launch_overhead: float = 9e-6
    #: Effective SpMV rate (CSR gather on GDDR6), non-zeros per second.
    spmv_nnz_per_s: float = 11e9
    #: Dense vector streaming rate, elements per second.
    vector_elems_per_s: float = 30e9
    #: One-time setup: context, allocation, H2D transfer base, s.
    setup_seconds: float = 2.5e-2
    #: Host-to-device transfer bandwidth (PCIe), bytes per second.
    transfer_bytes_per_s: float = 10e9
    #: Idle and saturated board power, W (paper: 44-126 W observed).
    power_idle_watts: float = 44.0
    power_max_watts: float = 126.0
    #: Non-zeros at which the workload saturates the board (power-wise).
    power_saturation_nnz: float = 2e6

    def spmv_call_seconds(self, nnz: float) -> float:
        return self.launch_overhead + nnz / self.spmv_nnz_per_s

    def vector_call_seconds(self, elements: int) -> float:
        return self.launch_overhead + elements / self.vector_elems_per_s

    def solve_seconds(self, workload: SolveWorkload) -> float:
        spmv_nnz_per_call = workload.nnz_spmv / 3.0
        spmv = workload.total_spmv_calls \
            * self.spmv_call_seconds(spmv_nnz_per_call)
        vector = workload.total_vector_calls \
            * self.vector_call_seconds(workload.vector_elements)
        transfer = workload.problem_bytes / self.transfer_bytes_per_s
        return self.setup_seconds + transfer + spmv + vector

    def power_watts(self, workload: SolveWorkload) -> float:
        """Board power while solving; grows with achieved occupancy."""
        utilization = min(1.0, workload.nnz_spmv / self.power_saturation_nnz)
        return (self.power_idle_watts
                + (self.power_max_watts - self.power_idle_watts)
                * utilization)


def gpu_solve_seconds(workload: SolveWorkload,
                      model: GPUModel | None = None) -> float:
    """End-to-end GPU solver time for a workload."""
    return (model or GPUModel()).solve_seconds(workload)


def gpu_power_watts(workload: SolveWorkload,
                    model: GPUModel | None = None) -> float:
    """Board power for a workload."""
    return (model or GPUModel()).power_watts(workload)
