"""Compressed Vector Buffer design: the E_c optimization (paper §4.3).

Each of the ``C`` CVB banks has one read port, so the ``C`` random
vector reads of a cycle must come from ``C`` different banks. Naive
duplication stores the full vector in every bank (``E_c = C``); the
compression packs the per-bank partial copies into the fewest *depth
rows* such that no row holds two elements requested by the same bank —
the MILP (5) of the paper, approximated (as the paper does) with
First-Fit and solved exactly with ``scipy.optimize.milp`` on tiny
instances for validation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ScheduleError
from .scheduler import Schedule

__all__ = ["access_requests", "CVBLayout", "first_fit_compress",
           "exact_min_depth", "build_cvb"]


def access_requests(sched: Schedule) -> np.ndarray:
    """Build the request matrix ``V``: ``V[j, k]`` is True when vector
    element ``j`` is ever read by lane (bank) ``k``.

    Derived from the scheduled lane assignment: the non-zeros of a chunk
    occupy consecutive lanes starting at its slot's lane, and lane ``k``
    multiplies the vector element at that non-zero's column.
    """
    encoding = sched.encoding
    length = encoding.vector_length
    c = sched.architecture.c
    v = np.zeros((length, c), dtype=bool)
    for pack in sched.packs:
        for slot in pack.slots:
            cols = encoding.chunk_columns(slot.chunk)
            if cols.size:
                lanes = slot.lane_start + np.arange(cols.size)
                v[cols, lanes] = True
    return v


@dataclass
class CVBLayout:
    """Result of the CVB compression.

    Attributes
    ----------
    location:
        ``location[j]`` is the depth row storing element ``j``; ``-1``
        for elements never requested (they need no CVB copy).
    depth:
        Number of used depth rows (the paper's objective ``sum G_i``).
    requests:
        The request matrix ``V`` the layout serves.
    """

    location: np.ndarray
    depth: int
    requests: np.ndarray

    @property
    def vector_length(self) -> int:
        return int(self.requests.shape[0])

    @property
    def c(self) -> int:
        return int(self.requests.shape[1])

    @property
    def ec(self) -> float:
        """Vector-update overhead: ``E_c = depth * C / L``.

        Uncompressed duplication has depth ``L`` (full copy per bank),
        i.e. ``E_c = C``; the ideal single-copy layout has depth
        ``ceil(L / C)``, i.e. ``E_c ~ 1``.
        """
        if self.vector_length == 0:
            return 1.0
        return self.depth * self.c / self.vector_length

    def duplication_map(self) -> list:
        """Per depth row, the ``(bank, element)`` writes — the
        configuration of the paper's duplication-control module."""
        rows: list[list] = [[] for _ in range(self.depth)]
        used = np.flatnonzero(self.location >= 0)
        for j in used:
            banks = np.flatnonzero(self.requests[j])
            for k in banks:
                rows[self.location[j]].append((int(k), int(j)))
        return rows

    def validate(self) -> None:
        """Check the MILP constraints hold for this layout."""
        used = np.flatnonzero(self.requests.any(axis=1))
        if np.any(self.location[used] < 0):
            raise ScheduleError("a requested element has no CVB location")
        for i in range(self.depth):
            members = np.flatnonzero(self.location == i)
            if members.size == 0:
                raise ScheduleError(f"empty depth row {i} counted")
            bank_load = self.requests[members].sum(axis=0)
            if np.any(bank_load > 1):
                raise ScheduleError(
                    f"depth row {i} holds two elements for one bank")


def first_fit_compress(v: np.ndarray, *, decreasing: bool = True) -> CVBLayout:
    """First-Fit (optionally decreasing) approximation of MILP (5).

    Elements are placed, most-requested first, into the shallowest depth
    row whose banks they do not conflict with.
    """
    v = np.asarray(v, dtype=bool)
    length, c = v.shape
    location = np.full(length, -1, dtype=np.int64)
    counts = v.sum(axis=1)
    order = np.argsort(-counts, kind="stable") if decreasing \
        else np.arange(length)
    # Occupancy grid, grown geometrically; one vectorized conflict scan
    # over all existing depth rows per element.
    occupied = np.zeros((16, c), dtype=bool)
    depth = 0
    for j in order:
        if counts[j] == 0:
            continue
        request = v[j]
        row = depth
        if depth:
            conflict = (occupied[:depth] & request).any(axis=1)
            free = np.flatnonzero(~conflict)
            if free.size:
                row = int(free[0])
        if row == depth:
            if depth == occupied.shape[0]:
                occupied = np.vstack([occupied,
                                      np.zeros_like(occupied)])
            depth += 1
        occupied[row] |= request
        location[j] = row
    layout = CVBLayout(location=location, depth=depth, requests=v)
    layout.validate()
    return layout


def exact_min_depth(v: np.ndarray, *, time_limit: float = 10.0) -> int:
    """Exact optimum of MILP (5) via ``scipy.optimize.milp``.

    Only tractable for tiny instances (the paper found even ``C = 16``,
    dimension 500 intractable with a commercial modeler); used in tests
    to bound First-Fit suboptimality.
    """
    from scipy.optimize import Bounds, LinearConstraint, milp
    import scipy.sparse as sp

    v = np.asarray(v, dtype=bool)
    used = np.flatnonzero(v.any(axis=1))
    if used.size == 0:
        return 0
    vv = v[used]
    n_elem = used.size
    n_rows = n_elem  # worst case: one element per depth row
    c = v.shape[1]
    # Variables: M[i, j] (row-major) then G[i].
    n_m = n_rows * n_elem
    n_var = n_m + n_rows

    def m_index(i, j):
        return i * n_elem + j

    constraints = []
    # (a) per row & bank: sum_j M[i, j] * V[j, k] <= 1
    rows_a, cols_a, vals_a = [], [], []
    row_id = 0
    for i in range(n_rows):
        for k in range(c):
            members = np.flatnonzero(vv[:, k])
            if members.size == 0:
                continue
            for j in members:
                rows_a.append(row_id)
                cols_a.append(m_index(i, j))
                vals_a.append(1.0)
            row_id += 1
    if row_id:
        a_mat = sp.csr_matrix((vals_a, (rows_a, cols_a)),
                              shape=(row_id, n_var))
        constraints.append(LinearConstraint(a_mat, -np.inf, 1.0))
    # (b) each element in exactly one row: sum_i M[i, j] = 1
    rows_b = [j for i in range(n_rows) for j in range(n_elem)]
    cols_b = [m_index(i, j) for i in range(n_rows) for j in range(n_elem)]
    b_mat = sp.csr_matrix((np.ones(len(rows_b)), (rows_b, cols_b)),
                          shape=(n_elem, n_var))
    constraints.append(LinearConstraint(b_mat, 1.0, 1.0))
    # (c) row used indicator: sum_j M[i, j] <= n_elem * G[i]
    rows_c, cols_c, vals_c = [], [], []
    for i in range(n_rows):
        for j in range(n_elem):
            rows_c.append(i)
            cols_c.append(m_index(i, j))
            vals_c.append(1.0)
        rows_c.append(i)
        cols_c.append(n_m + i)
        vals_c.append(-float(n_elem))
    c_mat = sp.csr_matrix((vals_c, (rows_c, cols_c)),
                          shape=(n_rows, n_var))
    constraints.append(LinearConstraint(c_mat, -np.inf, 0.0))

    objective = np.concatenate([np.zeros(n_m), np.ones(n_rows)])
    result = milp(c=objective, constraints=constraints,
                  integrality=np.ones(n_var),
                  bounds=Bounds(0, 1),
                  options={"time_limit": time_limit})
    if not result.success:  # pragma: no cover - solver hiccup
        raise ScheduleError(f"MILP failed: {result.message}")
    g = result.x[n_m:]
    return int(np.round(g).sum())


def build_cvb(sched: Schedule) -> CVBLayout:
    """Request matrix + First-Fit compression for a schedule."""
    return first_fit_compress(access_requests(sched))
