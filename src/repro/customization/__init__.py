"""Problem-specific architectural customization (paper §4)."""

from .cvb import (CVBLayout, access_requests, build_cvb, exact_min_depth,
                  first_fit_compress)
from .customize import (MatrixCustomization, ProblemCustomization,
                        baseline_customization, customize_problem,
                        evaluate_architecture)
from .mac_tree import (Architecture, MACStructure, baseline_architecture,
                       parse_architecture)
from .metric import ideal_cycles, match_score, real_cycles
from .permute import (adapt_problem, sort_constraints_by_encoding,
                      sort_variables_by_row_nnz)
from .scheduler import Pack, PackSlot, Schedule, schedule
from .search import SearchResult, candidate_patterns, search_architecture

__all__ = [
    "Architecture",
    "MACStructure",
    "parse_architecture",
    "baseline_architecture",
    "Pack",
    "PackSlot",
    "Schedule",
    "schedule",
    "CVBLayout",
    "access_requests",
    "first_fit_compress",
    "exact_min_depth",
    "build_cvb",
    "match_score",
    "ideal_cycles",
    "real_cycles",
    "SearchResult",
    "search_architecture",
    "candidate_patterns",
    "MatrixCustomization",
    "ProblemCustomization",
    "customize_problem",
    "evaluate_architecture",
    "baseline_customization",
    "adapt_problem",
    "sort_constraints_by_encoding",
    "sort_variables_by_row_nnz",
]
