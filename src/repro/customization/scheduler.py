"""Pack scheduling: mapping a sparsity string onto an architecture (§4.2).

Follows the paper's staged string-replacement procedure: for each
structure in ``S`` from longest to shortest, occurrences of the
structure's pattern *and all dominated variants* (each character with at
most the segment's capacity — the ``bb -> bb|ba|ab|aa`` regular
expression of the paper) are claimed left to right; remaining single
chunks fall back onto the full-width root output, one cycle each.

The result is both the cycle count (hence the zero-padding ``E_p``) and
the exact lane assignment of every non-zero, which the CVB builder and
the hardware simulator consume.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..encoding import FULL_CHUNK, MatrixEncoding, alphabet_for, char_capacity
from ..exceptions import ScheduleError
from .mac_tree import Architecture, MACStructure

__all__ = ["PackSlot", "Pack", "Schedule", "schedule"]

#: Placeholder for already-claimed positions in the working string.
_TAKEN = "*"


@dataclass(frozen=True)
class PackSlot:
    """One segment of one pack: a chunk placed at a lane range."""

    lane_start: int
    capacity: int
    chunk: object  # encoding.Chunk

    @property
    def padding(self) -> int:
        return self.capacity - self.chunk.length


@dataclass(frozen=True)
class Pack:
    """One clock cycle of SpMV input: a structure instance with its slots."""

    structure: MACStructure
    slots: tuple

    @property
    def used(self) -> int:
        return sum(slot.chunk.length for slot in self.slots)

    @property
    def n_outputs(self) -> int:
        return self.structure.n_outputs


@dataclass
class Schedule:
    """Complete schedule of one matrix on one architecture."""

    encoding: MatrixEncoding
    architecture: Architecture
    packs: list

    @property
    def cycles(self) -> int:
        """SpMV input cycles — ``length(w_sched)`` in the paper."""
        return len(self.packs)

    @property
    def ep(self) -> int:
        """Zero padding: ``E_p = C * length(w_sched) - nnz``."""
        return self.architecture.c * self.cycles - self.encoding.nnz

    def validate(self) -> None:
        """Check lane packing plus chunk coverage in stream order.

        A slot's chunk occupies lanes ``[lane_start, lane_start +
        length)``; within a pack those ranges must be disjoint, in
        increasing lane order, inside the datapath, and within the
        slot's capacity. Across packs, the slots must replay exactly
        the encoding's chunk stream, in order — the HBM burst the
        hardware consumes is the stream, so reordering silently
        mis-addresses every later element.
        """
        c = self.architecture.c
        seen = []
        for index, pack in enumerate(self.packs):
            end = 0
            for slot in pack.slots:
                if slot.lane_start < 0:
                    raise ScheduleError(
                        f"pack {index}: negative lane_start")
                if slot.lane_start < end:
                    raise ScheduleError(
                        f"pack {index}: slots overlap or are out of "
                        "lane order")
                if slot.chunk.length > slot.capacity:
                    raise ScheduleError(
                        f"pack {index}: chunk exceeds slot capacity")
                if slot.lane_start + slot.chunk.length > c:
                    raise ScheduleError(
                        f"pack {index}: slot runs past the C={c} "
                        "datapath")
                end = slot.lane_start + slot.chunk.length
                seen.append(slot.chunk)
        if len(seen) != len(self.encoding.chunks):
            raise ScheduleError(
                f"{len(seen)} chunks scheduled, expected "
                f"{len(self.encoding.chunks)}")
        for pos, (got, want) in enumerate(zip(seen,
                                              self.encoding.chunks)):
            if got is not want:
                raise ScheduleError(
                    f"chunk at stream position {pos} scheduled out of "
                    "order")


def _dominated_class(ch: str, c: int) -> str:
    """Regex character class of all chars with capacity <= capacity(ch)."""
    cap = char_capacity(ch, c)
    members = [letter for letter in alphabet_for(c)
               if char_capacity(letter, c) <= cap]
    if cap >= c:
        members.append(re.escape(FULL_CHUNK))
    return "[" + "".join(members) + "]"


def _structure_regex(structure: MACStructure) -> re.Pattern:
    return re.compile("".join(_dominated_class(ch, structure.c)
                              for ch in structure.pattern))


def schedule(encoding: MatrixEncoding, architecture: Architecture,
             *, allow_partial: bool = False) -> Schedule:
    """Schedule ``encoding`` onto ``architecture`` (staged replacement).

    With ``allow_partial`` (an extension beyond the paper's procedure),
    leftover runs of two or more chunks may occupy a *prefix* of a
    structure's segments — the trailing segments are fed zeros. This
    never increases the cycle count and helps when repeated patterns are
    almost-but-not-quite the structure length.
    """
    if encoding.c != architecture.c:
        raise ScheduleError(
            f"encoding width C={encoding.c} does not match architecture "
            f"C={architecture.c}")
    chunks = encoding.chunks
    work = list(encoding.string)
    # position -> (structure, match_start, matched_length)
    assignment: dict[int, tuple] = {}

    for structure in architecture.structures:
        if structure.n_outputs < 2:
            continue  # single chars are handled by the fallback pass
        pattern = _structure_regex(structure)
        text = "".join(work)
        for match in pattern.finditer(text):
            start = match.start()
            assignment[start] = (structure, start, structure.n_outputs)
            for pos in range(start, match.end()):
                work[pos] = _TAKEN
        # finditer never yields overlapping matches, and _TAKEN blocks
        # later (shorter) structures from reusing these positions.

    if allow_partial:
        _assign_prefix_runs(encoding, architecture, work, assignment)

    packs: list[Pack] = []
    pos = 0
    n = len(chunks)
    single_cache: dict[str, MACStructure] = {}
    while pos < n:
        if pos in assignment:
            structure, start, length = assignment[pos]
            slots = []
            for offset in range(length):
                slots.append(PackSlot(lane_start=structure.lane_offsets[offset],
                                      capacity=structure.capacities[offset],
                                      chunk=chunks[start + offset]))
            packs.append(Pack(structure=structure, slots=tuple(slots)))
            pos += length
        else:
            ch = encoding.string[pos]
            structure = single_cache.get(ch)
            if structure is None:
                structure = _best_single_structure(architecture, ch)
                single_cache[ch] = structure
            packs.append(Pack(structure=structure,
                              slots=(PackSlot(lane_start=0,
                                              capacity=structure.capacities[0],
                                              chunk=chunks[pos]),)))
            pos += 1
    return Schedule(encoding=encoding, architecture=architecture,
                    packs=packs)


def _assign_prefix_runs(encoding: MatrixEncoding,
                        architecture: Architecture, work: list,
                        assignment: dict) -> None:
    """Claim leftover runs of >= 2 chunks as structure *prefixes*."""
    n = len(work)
    c = architecture.c
    pos = 0
    while pos < n:
        if work[pos] == _TAKEN:
            pos += 1
            continue
        best_len = 1
        best_structure = None
        for structure in architecture.structures:
            if structure.n_outputs < 2:
                continue
            length = 0
            caps = structure.capacities
            while (length < structure.n_outputs
                   and pos + length < n
                   and work[pos + length] != _TAKEN
                   and char_capacity(work[pos + length], c)
                   <= caps[length]):
                length += 1
            if length > best_len:
                best_len = length
                best_structure = structure
        if best_structure is not None and best_len >= 2:
            assignment[pos] = (best_structure, pos, best_len)
            for k in range(pos, pos + best_len):
                work[k] = _TAKEN
            pos += best_len
        else:
            pos += 1


def _best_single_structure(architecture: Architecture,
                           ch: str) -> MACStructure:
    """Single-output structure hosting a leftover chunk.

    Prefer the tightest single-output structure whose capacity fits the
    chunk; the full-width root output always exists as a fallback. A
    tighter structure does not change the cycle count (still one cycle)
    but keeps the lane footprint small, which helps the CVB.
    """
    cap = char_capacity(ch, architecture.c)
    best = architecture.full_structure
    for structure in architecture.structures:
        if structure.n_outputs != 1:
            continue
        if structure.total_capacity >= cap:
            if structure.total_capacity < best.total_capacity:
                best = structure
    return best
