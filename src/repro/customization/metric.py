"""The customization evaluation metric (paper §3.6).

An ideal architecture finishes an SpMV plus the vector duplication in
``T_img = (nnz + L) / C`` cycles; a real customization pays ``E_p``
extra zero-padding slots and keeps ``E_c`` effective vector copies,
taking ``T_real = (nnz + E_p + E_c L) / C``. The match score

.. math::

    \\eta = \\frac{nnz + L}{nnz + E_p + E_c L} \\in (0, 1]

measures how closely a customization fits a problem structure.
"""

from __future__ import annotations

__all__ = ["match_score", "ideal_cycles", "real_cycles"]


def match_score(nnz: int, length: int, ep: float, ec: float) -> float:
    """Match score ``eta`` of a customization against a problem.

    Parameters
    ----------
    nnz:
        Non-zeros streamed per SpMV.
    length:
        Length of the multiplied vector.
    ep:
        Total zero-padding slots.
    ec:
        Effective vector copies kept in the CVB (1 = ideal, C = naive).
    """
    if nnz < 0 or length < 0 or ep < 0:
        raise ValueError("nnz, length and ep must be non-negative")
    if ec < 0:
        raise ValueError("ec must be non-negative")
    denominator = nnz + ep + ec * length
    if denominator == 0:
        return 1.0
    return (nnz + length) / denominator


def ideal_cycles(nnz: int, length: int, c: int) -> float:
    """``T_img``: cycles of the perfectly customized architecture."""
    return (nnz + length) / c


def real_cycles(nnz: int, length: int, ep: float, ec: float,
                c: int) -> float:
    """``T_real``: cycles of an actual customization."""
    return (nnz + ep + ec * length) / c
