"""MAC-tree structure model and the paper's ``C{S}`` notation.

A width-``C`` SpMV engine owns ``C`` multipliers feeding a binary adder
tree. A *structure* partitions the tree inputs into segments with
dedicated output taps: structure ``"dd"`` at ``C = 16`` splits the tree
into two 8-input sub-trees so two 8-non-zero rows finish in one cycle.
An *architecture* is a set ``S`` of such structures (plus the implicit
full-width structure — the root output every tree has).

The paper denotes architectures ``C{S}`` with run-length tokens:
``16{16a2d1e}`` is ``C = 16`` with ``S = {a^16, dd, e}``. Heterogeneous
structures discovered by the LZW search (e.g. ``ca``) are written as
comma-separated raw patterns: ``16{ca,e}``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering

from ..encoding import FULL_CHUNK, alphabet_for, char_capacity
from ..exceptions import EncodingError

__all__ = ["MACStructure", "Architecture", "parse_architecture",
           "baseline_architecture"]

_TOKEN_RE = re.compile(r"(\d+)([a-z$])")
_ARCH_RE = re.compile(r"^(\d+)\{(.*)\}$")


@total_ordering
@dataclass(frozen=True)
class MACStructure:
    """One output partition of the MAC tree.

    ``pattern`` is a string of bucket characters; segment ``j`` accepts a
    row chunk with at most ``char_capacity(pattern[j], c)`` non-zeros.
    """

    pattern: str
    c: int

    def __post_init__(self):
        if not self.pattern:
            raise EncodingError("empty MAC structure pattern")
        if self.total_capacity > self.c:
            raise EncodingError(
                f"structure {self.pattern!r} needs {self.total_capacity} "
                f"inputs but C={self.c}")

    @property
    def capacities(self) -> tuple:
        return tuple(char_capacity(ch, self.c) for ch in self.pattern)

    @property
    def total_capacity(self) -> int:
        return sum(char_capacity(ch, self.c) for ch in self.pattern)

    @property
    def n_outputs(self) -> int:
        """Rows completed per cycle — the routing case width."""
        return len(self.pattern)

    @property
    def lane_offsets(self) -> tuple:
        """Starting lane of each segment."""
        offsets = []
        acc = 0
        for cap in self.capacities:
            offsets.append(acc)
            acc += cap
        return tuple(offsets)

    @property
    def is_homogeneous(self) -> bool:
        return len(set(self.pattern)) == 1

    def __lt__(self, other: "MACStructure") -> bool:
        # Scheduling priority: longer patterns first, then larger capacity.
        return ((len(self.pattern), self.total_capacity, self.pattern)
                > (len(other.pattern), other.total_capacity, other.pattern))

    def __str__(self) -> str:
        return self.pattern


class Architecture:
    """A width-``C`` SpMV engine with structure set ``S``.

    The full-width single-output structure (the paper's baseline MAC) is
    always a member — every adder tree has its root output.
    """

    def __init__(self, c: int, patterns):
        self.c = int(c)
        full_char = alphabet_for(self.c)[-1]
        seen: dict[str, None] = {}
        for pattern in patterns:
            seen.setdefault(pattern, None)
        seen.setdefault(full_char, None)
        self.structures = tuple(sorted(
            MACStructure(pattern=p, c=self.c) for p in seen))
        self.full_structure = MACStructure(pattern=full_char, c=self.c)

    # -- properties feeding the resource / frequency models -------------
    @property
    def n_structures(self) -> int:
        return len(self.structures)

    @property
    def max_outputs(self) -> int:
        """Widest output case — dominates routing mux size and f_max."""
        return max(s.n_outputs for s in self.structures)

    @property
    def total_outputs(self) -> int:
        """Total dedicated output taps across all structures."""
        return sum(s.n_outputs for s in self.structures)

    @property
    def output_widths(self) -> tuple:
        """Distinct per-cycle output counts, descending."""
        return tuple(sorted({s.n_outputs for s in self.structures},
                            reverse=True))

    def __eq__(self, other) -> bool:
        return (isinstance(other, Architecture) and self.c == other.c
                and self.structures == other.structures)

    def __hash__(self) -> int:
        return hash((self.c, self.structures))

    def __str__(self) -> str:
        parts = []
        for s in self.structures:
            if s.is_homogeneous:
                parts.append(f"{len(s.pattern)}{s.pattern[0]}")
            else:
                parts.append(s.pattern)
        # Run-length tokens concatenate (paper style); raw patterns need
        # comma separation to stay parseable.
        if all(s.is_homogeneous for s in self.structures):
            return f"{self.c}{{{''.join(parts)}}}"
        return f"{self.c}{{{','.join(parts)}}}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Architecture({self})"


def parse_architecture(text: str) -> Architecture:
    """Parse the ``C{S}`` notation.

    >>> arch = parse_architecture("16{16a2d1e}")
    >>> sorted(str(s) for s in arch.structures)
    ['aaaaaaaaaaaaaaaa', 'dd', 'e']
    """
    match = _ARCH_RE.match(text.strip())
    if not match:
        raise EncodingError(f"malformed architecture string: {text!r}")
    c = int(match.group(1))
    body = match.group(2)
    patterns: list[str] = []
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        if _TOKEN_RE.fullmatch(part) or re.fullmatch(
                f"(?:{_TOKEN_RE.pattern})+", part):
            for count, ch in _TOKEN_RE.findall(part):
                patterns.append(ch * int(count))
        elif re.fullmatch(r"[a-z$]+", part):
            patterns.append(part)
        else:
            raise EncodingError(f"malformed structure token: {part!r}")
    return Architecture(c, patterns)


def baseline_architecture(c: int) -> Architecture:
    """The uncustomized engine: single full-width output (paper §5.2)."""
    return Architecture(c, [])
