"""Structure-set search: choosing ``S`` under ``|S| <= |S|_target`` (§4.2).

Problem (4) — minimize the scheduled string length over structure sets of
bounded size — is intractable exactly, so the paper searches candidates
produced by LZW dictionary compression. We follow suit:

1. run LZW over the (concatenated) sparsity string and score dictionary
   phrases by the cycles they would save;
2. add the homogeneous full-width structures (``C/cap`` repeats of each
   character — the shapes that dominate Table 3) as candidates;
3. greedily grow ``S`` from the baseline, each step adding the candidate
   that most reduces the *actual* scheduled cycle count, until the
   budget is reached or improvements vanish.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..encoding import (MatrixEncoding, alphabet_for, char_capacity,
                        lzw_candidates)
from .mac_tree import Architecture, baseline_architecture
from .scheduler import schedule

__all__ = ["SearchResult", "search_architecture", "candidate_patterns"]

#: Keep only this many top-scoring LZW phrases for greedy evaluation.
_MAX_CANDIDATES = 24
#: Stop adding structures when the relative cycle gain drops below this.
_MIN_GAIN = 0.01


@dataclass
class SearchResult:
    """Outcome of the structure search."""

    architecture: Architecture
    cycles: int
    baseline_cycles: int
    evaluations: int

    @property
    def improvement(self) -> float:
        """Cycle-count ratio baseline / customized (>= 1)."""
        if self.cycles == 0:
            return 1.0
        return self.baseline_cycles / self.cycles


def _default_objective(architecture: Architecture, cycles: int) -> float:
    """SpMV *time*, not just cycles.

    Wide output structures reduce cycles but lengthen the routing
    critical path (Table 3: ``64{64a4e1g}`` has the best eta yet a
    121 MHz clock); dividing by the modeled f_max makes the search land
    on the paper's winning shapes (e.g. ``64{8d4e1g}``).
    """
    from ..hw.frequency import fmax_mhz  # deferred: hw imports us
    return cycles / fmax_mhz(architecture)


def candidate_patterns(combined_string: str, c: int) -> list:
    """Ranked structure candidates for a sparsity string."""
    scores = lzw_candidates(combined_string, min_length=2)
    feasible = {}
    for pattern, score in scores.items():
        if sum(char_capacity(ch, c) for ch in pattern) <= c:
            feasible[pattern] = score
    # Homogeneous full-width structures: k copies of each character such
    # that k * capacity = C (e.g. 16a, 8b, 4c ... at C = 16).
    for ch in alphabet_for(c)[:-1]:
        cap = char_capacity(ch, c)
        pattern = ch * (c // cap)
        if pattern not in feasible and combined_string.count(ch) > 1:
            # Score by the repeats actually present.
            runs = combined_string.count(ch)
            feasible[pattern] = (len(pattern) - 1) * (runs // len(pattern))
    ranked = sorted(feasible, key=lambda p: (-feasible[p], len(p), p))
    return ranked[:_MAX_CANDIDATES]


def search_architecture(encodings: list, c: int, *,
                        max_structures: int = 4,
                        objective=None) -> SearchResult:
    """Greedy structure search over one or more matrix encodings.

    Parameters
    ----------
    encodings:
        The :class:`MatrixEncoding` objects the engine will stream (for
        the OSQP datapath: P, A and A^T).
    c:
        Datapath width.
    max_structures:
        The paper's ``|S|_target`` budget (the implicit full-width root
        structure does not count against it).
    objective:
        ``(architecture, cycles) -> score`` to minimize; defaults to
        modeled SpMV time (cycles over achievable f_max). Pass
        ``lambda arch, cycles: cycles`` for a pure cycle-count search.
    """
    if not encodings:
        raise ValueError("need at least one matrix encoding")
    for enc in encodings:
        if enc.c != c:
            raise ValueError("all encodings must use the same C")
    if objective is None:
        objective = _default_objective

    combined = "".join(enc.string for enc in encodings)
    candidates = candidate_patterns(combined, c)

    def total_cycles(arch: Architecture) -> int:
        return sum(schedule(enc, arch).cycles for enc in encodings)

    base = baseline_architecture(c)
    base_cycles = total_cycles(base)
    chosen: list[str] = []
    best_cycles = base_cycles
    best_score = objective(base, base_cycles)
    evaluations = 1

    while len(chosen) < max_structures and candidates:
        best_gain = 0.0
        best_pattern = None
        best_pattern_cycles = best_cycles
        best_pattern_score = best_score
        for pattern in candidates:
            arch = Architecture(c, chosen + [pattern])
            cycles = total_cycles(arch)
            score = objective(arch, cycles)
            evaluations += 1
            gain = best_score - score
            if gain > best_gain:
                best_gain = gain
                best_pattern = pattern
                best_pattern_cycles = cycles
                best_pattern_score = score
        if best_pattern is None or best_gain < _MIN_GAIN * best_score:
            break
        chosen.append(best_pattern)
        candidates.remove(best_pattern)
        best_cycles = best_pattern_cycles
        best_score = best_pattern_score

    return SearchResult(architecture=Architecture(c, chosen),
                        cycles=best_cycles, baseline_cycles=base_cycles,
                        evaluations=evaluations)
