"""Problem-structure adaptation by permutation (paper §4.4).

Two degrees of freedom exist:

* **Constraint rows** of ``A`` (with ``l``/``u``) permute freely — the
  KKT matrix stays symmetric — so rows can be *sorted by their encoding
  character* to create long repeated runs, lowering the achievable
  ``E_p``.
* **Variables** must be permuted symmetrically (rows *and* columns of
  ``P``, plus columns of ``A``), which is why the paper observes little
  gain from this knob; we implement it anyway so the ablation bench can
  quantify that observation.
"""

from __future__ import annotations

import numpy as np

from ..encoding import encode_matrix
from ..qp import QProblem

__all__ = ["sort_constraints_by_encoding", "sort_variables_by_row_nnz",
           "adapt_problem"]


def sort_constraints_by_encoding(problem: QProblem, c: int) -> tuple:
    """Stable-sort constraint rows by their sparsity character.

    Returns ``(permuted_problem, perm)``; recover original-row duals via
    ``y_original[perm] = y_permuted``.
    """
    encoding = encode_matrix(problem.A, c)
    # Key by the first chunk character of each row (rows with $ chunks
    # sort by chunk count, keeping long rows together).
    keys = np.zeros(problem.m, dtype=np.float64)
    for chunk in encoding.chunks:
        if chunk.first:
            keys[chunk.row] = ord(chunk.char)
        else:
            keys[chunk.row] += 0.001  # more $ chunks -> later
    perm = np.argsort(keys, kind="stable")
    return problem.permute_constraints(perm), perm


def sort_variables_by_row_nnz(problem: QProblem) -> tuple:
    """Symmetric variable permutation ordering P's rows by non-zero count.

    Returns ``(permuted_problem, perm)``; recover the original solution
    via ``x_original[perm] = x_permuted``.
    """
    perm = np.argsort(problem.P.row_nnz(), kind="stable")
    return problem.permute_variables(perm), perm


def adapt_problem(problem: QProblem, c: int, *,
                  sort_constraints: bool = True,
                  sort_variables: bool = False) -> tuple:
    """Apply the selected permutations; returns the adapted problem plus
    the ``(variable_perm, constraint_perm)`` pair for solution recovery."""
    n_perm = np.arange(problem.n, dtype=np.int64)
    m_perm = np.arange(problem.m, dtype=np.int64)
    adapted = problem
    if sort_variables:
        adapted, n_perm = sort_variables_by_row_nnz(adapted)
    if sort_constraints:
        adapted, m_perm = sort_constraints_by_encoding(adapted, c)
    return adapted, n_perm, m_perm
