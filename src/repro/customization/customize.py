"""End-to-end problem-specific customization (paper §4, Figure 6).

Given a QP, the RSQP datapath streams three matrices per PCG iteration
(``P``, ``A`` and ``A^T``, since ``K p`` is computed incrementally).
Customization therefore:

1. encodes all three sparsity structures,
2. searches one structure set ``S`` over their concatenated string
   (one physical MAC tree serves all three SpMVs),
3. schedules each matrix, yielding its ``E_p``, and
4. compresses each matrix's CVB, yielding its ``E_c``.

The aggregate match score weighs every matrix's stream and vector
length, reproducing the per-problem ``eta`` of Figures 9/10.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..qp import QProblem
from ..sparse import CSRMatrix
from .cvb import CVBLayout, build_cvb
from .mac_tree import Architecture, baseline_architecture
from .metric import match_score
from .scheduler import Schedule, schedule
from .search import SearchResult, search_architecture
from ..encoding import MatrixEncoding, encode_matrix

__all__ = ["MatrixCustomization", "ProblemCustomization",
           "customize_problem", "evaluate_architecture",
           "baseline_customization"]


@dataclass
class MatrixCustomization:
    """Customization artifacts for a single streamed matrix."""

    name: str
    encoding: MatrixEncoding
    schedule: Schedule
    cvb: CVBLayout

    @property
    def nnz(self) -> int:
        return self.encoding.nnz

    @property
    def vector_length(self) -> int:
        return self.encoding.vector_length

    @property
    def ep(self) -> int:
        return self.schedule.ep

    @property
    def ec(self) -> float:
        return self.cvb.ec

    @property
    def spmv_cycles(self) -> int:
        return self.schedule.cycles

    @property
    def duplication_cycles(self) -> int:
        return self.cvb.depth

    @property
    def eta(self) -> float:
        return match_score(self.nnz, self.vector_length, self.ep, self.ec)


@dataclass
class ProblemCustomization:
    """Aggregate customization of a QP on a width-``C`` datapath."""

    problem: QProblem | None  # None once detach()-ed into a cache artifact
    architecture: Architecture
    matrices: dict  # name -> MatrixCustomization
    search: SearchResult | None = None

    @property
    def c(self) -> int:
        return self.architecture.c

    @property
    def total_nnz(self) -> int:
        return sum(m.nnz for m in self.matrices.values())

    @property
    def total_vector_length(self) -> int:
        return sum(m.vector_length for m in self.matrices.values())

    @property
    def total_ep(self) -> int:
        return sum(m.ep for m in self.matrices.values())

    @property
    def eta(self) -> float:
        """Aggregate match score over all streamed matrices (§3.6)."""
        num = self.total_nnz + self.total_vector_length
        den = self.total_nnz + self.total_ep + sum(
            m.ec * m.vector_length for m in self.matrices.values())
        return num / den if den else 1.0

    @property
    def spmv_cycles(self) -> dict:
        return {name: m.spmv_cycles for name, m in self.matrices.items()}

    def summary(self) -> str:
        lines = [f"architecture {self.architecture}  eta={self.eta:.3f}"]
        for name, m in self.matrices.items():
            lines.append(
                f"  {name}: nnz={m.nnz} L={m.vector_length} "
                f"Ep={m.ep} Ec={m.ec:.2f} eta={m.eta:.3f}")
        return "\n".join(lines)

    def detach(self) -> "ProblemCustomization":
        """Freeze into a structure-only artifact (no numeric data).

        Everything a customization holds besides ``problem`` —
        encodings, schedules, CVB layouts, the architecture — is a pure
        function of the sparsity *structure*, so a detached copy is
        valid for every structurally identical problem and safe to keep
        in a long-lived cache without pinning the originating problem's
        numeric matrices in memory. The detached copy has
        ``problem is None``; APIs that need the numeric problem (e.g.
        :func:`repro.hw.memory.plan_hbm_layout`) require an attached
        customization.
        """
        return ProblemCustomization(problem=None,
                                    architecture=self.architecture,
                                    matrices=dict(self.matrices),
                                    search=self.search)


def _streamed_matrices(problem: QProblem) -> dict:
    return {
        "P": problem.P,
        "A": problem.A,
        "At": problem.A.transpose(),
    }


def evaluate_architecture(problem: QProblem,
                          architecture: Architecture,
                          *, matrices: dict | None = None,
                          allow_partial: bool = False
                          ) -> ProblemCustomization:
    """Schedule + CVB-compress a problem on a given architecture.

    ``allow_partial`` enables the prefix-matching scheduler extension
    (see :func:`repro.customization.scheduler.schedule`).
    """
    streams = matrices if matrices is not None \
        else _streamed_matrices(problem)
    out: dict[str, MatrixCustomization] = {}
    for name, matrix in streams.items():
        enc = encode_matrix(matrix, architecture.c)
        sched = schedule(enc, architecture, allow_partial=allow_partial)
        cvb = build_cvb(sched)
        out[name] = MatrixCustomization(name=name, encoding=enc,
                                        schedule=sched, cvb=cvb)
    return ProblemCustomization(problem=problem, architecture=architecture,
                                matrices=out)


def baseline_customization(problem: QProblem, c: int) -> ProblemCustomization:
    """The uncustomized reference: single-output MAC, full duplication.

    The baseline stores ``C`` full copies of the vector, so its ``E_c``
    is ``C`` by construction; we override the First-Fit layout depth with
    the naive duplication depth ``L``.
    """
    custom = evaluate_architecture(problem, baseline_architecture(c))
    for m in custom.matrices.values():
        naive = m.cvb
        naive_depth = m.vector_length
        m.cvb = CVBLayout(location=naive.location, depth=naive_depth,
                          requests=naive.requests)
    return custom


def customize_problem(problem: QProblem, c: int, *,
                      max_structures: int = 4,
                      allow_partial: bool = False) -> ProblemCustomization:
    """Full problem-specific customization flow (Figure 6, software part)."""
    streams = _streamed_matrices(problem)
    encodings = [encode_matrix(mat, c) for mat in streams.values()]
    result = search_architecture(encodings, c,
                                 max_structures=max_structures)
    custom = evaluate_architecture(problem, result.architecture,
                                   matrices=streams,
                                   allow_partial=allow_partial)
    custom.search = result
    return custom
