"""Sparsity-string encoding and LZW dictionary search."""

from .lzw import LZWResult, lzw_candidates, lzw_compress
from .sparsity_string import (FULL_CHUNK, Chunk, MatrixEncoding,
                              alphabet_for, char_capacity, encode_matrix,
                              encode_row_nnz, nnz_to_char)

__all__ = [
    "FULL_CHUNK",
    "Chunk",
    "MatrixEncoding",
    "alphabet_for",
    "char_capacity",
    "encode_matrix",
    "encode_row_nnz",
    "nnz_to_char",
    "LZWResult",
    "lzw_compress",
    "lzw_candidates",
]
