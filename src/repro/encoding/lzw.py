"""LZW dictionary construction over sparsity strings (paper §4.2).

The E_p minimization (choosing which MAC-tree structures to instantiate)
is a dictionary-based lossless compression problem: frequently repeated
substrings of the sparsity string are exactly the computation patterns
worth dedicating datapath structures to. Following the paper, an LZW
pass builds the candidate dictionary; the emission counts rank the
candidates for the greedy structure search in
:mod:`repro.customization.search`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LZWResult", "lzw_compress", "lzw_candidates"]


@dataclass
class LZWResult:
    """Outcome of one LZW pass."""

    codes: list            # emitted code sequence
    dictionary: dict       # substring -> code
    emission_counts: dict  # substring -> number of times emitted


def lzw_compress(text: str) -> LZWResult:
    """Classic LZW: grow the dictionary greedily, count emissions.

    The dictionary is seeded with the distinct characters of ``text``;
    each emission extends the matched prefix by one character.
    """
    dictionary: dict[str, int] = {}
    for ch in sorted(set(text)):
        dictionary[ch] = len(dictionary)
    emission_counts: dict[str, int] = {}
    codes: list[int] = []
    if not text:
        return LZWResult(codes=[], dictionary=dictionary,
                         emission_counts={})
    current = text[0]
    for ch in text[1:]:
        extended = current + ch
        if extended in dictionary:
            current = extended
        else:
            codes.append(dictionary[current])
            emission_counts[current] = emission_counts.get(current, 0) + 1
            dictionary[extended] = len(dictionary)
            current = ch
    codes.append(dictionary[current])
    emission_counts[current] = emission_counts.get(current, 0) + 1
    return LZWResult(codes=codes, dictionary=dictionary,
                     emission_counts=emission_counts)


def lzw_candidates(text: str, *, min_length: int = 2,
                   max_length: int | None = None) -> dict:
    """Candidate substrings for MAC-tree structures, with scores.

    A candidate scores ``(len(s) - 1) * occurrences``: mapping an
    occurrence of ``s`` onto a dedicated structure saves ``len(s) - 1``
    clock cycles over issuing its characters one by one.

    Emission counts undercount repeats (LZW emits a substring only until
    its extension enters the dictionary), so occurrences of dictionary
    phrases are re-counted with a non-overlapping scan.
    """
    result = lzw_compress(text)
    scores: dict[str, int] = {}
    for phrase in result.dictionary:
        if len(phrase) < min_length:
            continue
        if max_length is not None and len(phrase) > max_length:
            continue
        count = _count_non_overlapping(text, phrase)
        if count > 1:
            scores[phrase] = (len(phrase) - 1) * count
    return scores


def _count_non_overlapping(text: str, phrase: str) -> int:
    count = 0
    start = 0
    while True:
        idx = text.find(phrase, start)
        if idx < 0:
            return count
        count += 1
        start = idx + len(phrase)
