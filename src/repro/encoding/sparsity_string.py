"""String-based encoding of matrix sparsity structure (paper §4.1).

Each matrix row is assigned a character by the power-of-two bucket of
its non-zero count: rows with at most 1, 2, 4, 8, ... non-zeros map to
``a, b, c, d, ...`` up to the letter whose capacity equals the datapath
width ``C``. Rows with more than ``C`` non-zeros are broken into a
series of full-width ``$`` chunks plus a remainder character — e.g. with
``C = 64`` a row of 150 non-zeros encodes as ``$$f``.

Besides the plain string (used by the LZW structure search), the encoder
keeps per-chunk provenance — which row and which slice of the row's
non-zeros each character covers — because the pack scheduler needs the
actual column indices to build the CVB access-request matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import EncodingError
from ..sparse import CSRMatrix

__all__ = ["FULL_CHUNK", "alphabet_for", "char_capacity", "nnz_to_char",
           "Chunk", "MatrixEncoding", "encode_matrix", "encode_row_nnz"]

#: Character marking a full-width chunk of a long row.
FULL_CHUNK = "$"

_LETTERS = "abcdefghijklmnopqrstuvwxyz"


def _log2_int(c: int) -> int:
    if c < 1 or c & (c - 1):
        raise EncodingError(f"C must be a positive power of two, got {c}")
    return c.bit_length() - 1


def alphabet_for(c: int) -> str:
    """Letters available at width ``C``: ``a`` (<=1) .. capacity ``C``.

    >>> alphabet_for(16)
    'abcde'
    """
    return _LETTERS[:_log2_int(c) + 1]


def char_capacity(ch: str, c: int) -> int:
    """Input slots a character occupies on a width-``C`` datapath.

    ``a -> 1, b -> 2, c -> 4, ...``; ``$`` occupies all ``C`` slots.
    """
    if ch == FULL_CHUNK:
        return c
    idx = _LETTERS.find(ch)
    if idx < 0 or idx > _log2_int(c):
        raise EncodingError(f"character {ch!r} not valid for C={c}")
    return 1 << idx


def nnz_to_char(nnz_row: int, c: int) -> str:
    """Bucket character for a row with ``nnz_row <= C`` non-zeros."""
    if nnz_row > c:
        raise EncodingError(
            f"row with {nnz_row} non-zeros exceeds C={c}; encode with "
            "encode_row_nnz which emits $-chunks")
    if nnz_row < 0:
        raise EncodingError("negative non-zero count")
    bucket = max(0, int(nnz_row - 1).bit_length()) if nnz_row > 1 else 0
    return _LETTERS[bucket]


def encode_row_nnz(nnz_row: int, c: int) -> str:
    """Character sequence for one row (handles rows longer than ``C``)."""
    full, rest = divmod(int(nnz_row), c)
    out = FULL_CHUNK * full
    if rest or full == 0:
        out += nnz_to_char(rest, c)
    return out


@dataclass(frozen=True)
class Chunk:
    """One character of the encoding with its provenance.

    Attributes
    ----------
    row:
        Matrix row this chunk belongs to.
    start, length:
        Slice ``[start, start + length)`` into the row's non-zeros.
    char:
        The assigned character.
    first:
        True for the first chunk of its row (later ``$`` continuation
        chunks accumulate into the same output).
    """

    row: int
    start: int
    length: int
    char: str
    first: bool


@dataclass
class MatrixEncoding:
    """Sparsity string of a matrix plus chunk provenance."""

    matrix: CSRMatrix
    c: int
    string: str
    chunks: list

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    @property
    def vector_length(self) -> int:
        """Length of the vector the matrix multiplies (its column count)."""
        return self.matrix.shape[1]

    def chunk_columns(self, chunk: Chunk) -> np.ndarray:
        """Column indices of the non-zeros covered by ``chunk``."""
        cols, _ = self.matrix.row(chunk.row)
        return cols[chunk.start:chunk.start + chunk.length]

    def histogram(self) -> dict:
        """Character frequency of the sparsity string."""
        out: dict[str, int] = {}
        for ch in self.string:
            out[ch] = out.get(ch, 0) + 1
        return out


def encode_matrix(matrix: CSRMatrix, c: int) -> MatrixEncoding:
    """Encode every row of ``matrix`` on a width-``C`` datapath.

    Empty rows encode as ``a`` (they still occupy one slot so the SpMV
    engine emits their zero dot product).
    """
    _log2_int(c)
    chars: list[str] = []
    chunks: list[Chunk] = []
    row_nnz = matrix.row_nnz()
    for row in range(matrix.shape[0]):
        nnz_row = int(row_nnz[row])
        offset = 0
        first = True
        while nnz_row - offset > c:
            chars.append(FULL_CHUNK)
            chunks.append(Chunk(row=row, start=offset, length=c,
                                char=FULL_CHUNK, first=first))
            offset += c
            first = False
        rest = nnz_row - offset
        if rest or first:
            ch = nnz_to_char(rest, c)
            chars.append(ch)
            chunks.append(Chunk(row=row, start=offset, length=rest,
                                char=ch, first=first))
    return MatrixEncoding(matrix=matrix, c=c, string="".join(chars),
                          chunks=chunks)
