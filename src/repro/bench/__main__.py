"""``python -m repro.bench`` — aggregate ``BENCH_*.json`` reports.

Prints the summary table to stdout; ``--json PATH`` additionally
writes the merged document (full payloads + lifted headline metrics)
for CI artifact upload. Exits non-zero when no reports exist, so a CI
step that expected benchmark output fails loudly.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from . import merge, render


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Aggregate BENCH_*.json benchmark reports.")
    parser.add_argument("--root", default=".",
                        help="directory holding BENCH_*.json "
                             "(default: current directory)")
    parser.add_argument("--cases", action="store_true",
                        help="also render each report's per-case table")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the merged document to PATH")
    args = parser.parse_args(argv)

    root = pathlib.Path(args.root)
    merged = merge(root)
    print(render(root, cases=args.cases), end="")
    if args.json:
        pathlib.Path(args.json).write_text(
            json.dumps(merged, indent=2, sort_keys=True))
        print(f"merged document -> {args.json}")
    return 0 if merged["reports"] else 1


if __name__ == "__main__":
    sys.exit(main())
