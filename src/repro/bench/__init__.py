"""Benchmark report aggregation: one view over every ``BENCH_*.json``.

Each benchmark module under ``benchmarks/`` writes a machine-readable
report at the repo root (``BENCH_SIM.json``, ``BENCH_PDQP.json``,
``BENCH_BATCH.json``, ...). The schemas are deliberately
benchmark-specific — a throughput sweep and an algorithm-selection
study headline different numbers — so the aggregator is
schema-tolerant: it discovers every report, lifts the top-level scalar
fields as that report's headline metrics, and merges everything into
one summary (rendered as a table by ``python -m repro.bench``, or as
one JSON document for CI artifacts).
"""

from __future__ import annotations

import json
import pathlib

from ..experiments import format_table

__all__ = ["discover", "headline", "merge", "render"]

REPORT_GLOB = "BENCH_*.json"


def discover(root) -> list:
    """``[(name, path)]`` for every report under ``root``, sorted.

    ``name`` is the report stem without the ``BENCH_`` prefix
    (``BENCH_SIM.json`` -> ``sim``).
    """
    root = pathlib.Path(root)
    found = []
    for path in sorted(root.glob(REPORT_GLOB)):
        name = path.stem[len("BENCH_"):].lower() or path.stem.lower()
        found.append((name, path))
    return found


def headline(payload: dict) -> dict:
    """Top-level scalar metrics of one report, insertion-ordered.

    Lists/dicts (the per-case rows, config echoes) are detail, not
    headline; bools and strings ride along so floors and chosen
    configurations stay visible in the summary.
    """
    return {key: value for key, value in payload.items()
            if not isinstance(value, (list, dict))}


def merge(root) -> dict:
    """Merge every report under ``root`` into one document.

    Returns ``{"reports": {name: payload}, "headline": {name: {...}},
    "case_counts": {name: n}}`` — the full payloads for archival, the
    lifted scalars for dashboards.
    """
    reports, heads, counts = {}, {}, {}
    for name, path in discover(root):
        payload = json.loads(path.read_text())
        reports[name] = payload
        heads[name] = headline(payload)
        cases = payload.get("cases")
        counts[name] = len(cases) if isinstance(cases, list) else 0
    return {"reports": reports, "headline": heads,
            "case_counts": counts}


def render(root, *, cases: bool = False) -> str:
    """Human-readable summary of every report under ``root``.

    One row per report (name, case count, headline metrics); with
    ``cases=True`` each report's per-case rows render as their own
    table below the summary.
    """
    merged = merge(root)
    if not merged["reports"]:
        return f"no {REPORT_GLOB} reports under {root}\n"
    rows = []
    for name, head in merged["headline"].items():
        metrics = "  ".join(
            f"{k}={v:g}" if isinstance(v, (int, float))
            and not isinstance(v, bool) else f"{k}={v}"
            for k, v in sorted(head.items()))
        rows.append({"report": name,
                     "cases": merged["case_counts"][name],
                     "headline": metrics})
    out = [format_table(rows, title="Benchmark reports")]
    if cases:
        for name, payload in merged["reports"].items():
            case_rows = payload.get("cases")
            if isinstance(case_rows, list) and case_rows:
                out.append(format_table(case_rows, title=name))
    return "\n".join(out)
