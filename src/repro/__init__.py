"""RSQP reproduction (ISCA 2023).

A from-scratch Python implementation of RSQP — problem-specific
architectural customization for accelerated convex quadratic
optimization — including the OSQP solver it accelerates, the
customization framework (sparsity strings, E_p/E_c optimization), a
cycle-accurate model of the FPGA processing architecture, and the full
evaluation harness.

Top-level convenience re-exports cover the everyday workflow; the
subpackages hold the full API (see README.md for the map).
"""

from .customization import (Architecture, baseline_customization,
                            customize_problem, parse_architecture)
from .hw import RSQPAccelerator
from .qp import QProblem
from .solver import OSQPResult, OSQPSettings, OSQPSolver, SolverStatus, solve
from .sparse import CSRMatrix

__version__ = "1.0.0"

__all__ = [
    "QProblem",
    "CSRMatrix",
    "solve",
    "OSQPSolver",
    "OSQPSettings",
    "OSQPResult",
    "SolverStatus",
    "customize_problem",
    "baseline_customization",
    "Architecture",
    "parse_architecture",
    "RSQPAccelerator",
    "__version__",
]
