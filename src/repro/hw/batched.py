"""Batched lockstep execution: one instruction stream, B instances.

RSQP's datapath is fixed per problem *structure*, so B instances that
share one fingerprint can execute the identical compiled program in
lockstep over batched float64 buffers — the batched-SpMV regime. This
module is the machine layer of :mod:`repro.batch`:

* :class:`BatchMatrixResource` — per-lane CSR data stacked into one
  contiguous lane-minor ``(nnz, B)`` value block (the sparsity pattern
  is shared by construction), applied through the engine library's
  ``k_csr_matvec_batch`` when the C JIT is available, else per lane
  through each lane's own solo :class:`~repro.hw.machine.
  MatrixResource` (so the kernel *choice* matches a solo run exactly).
* :class:`BatchMachine` — HBM/VB/CVB as stable ``(len, B)`` buffers,
  scalar registers as ``(B,)`` arrays, wall-clock
  :class:`~repro.hw.machine.ExecutionStats` plus per-lane loop trip
  counters.
* :class:`BatchExecutor` — the batched lowering of
  :class:`~repro.hw.compiled.CompiledExecutor`: basic blocks become
  fused numpy/C closures with deferred block charging.

Memory layout: lane-minor
-------------------------
Vectors are ``(len, B)`` — element ``i`` of lane ``b`` at row ``i``,
column ``b`` — so the lane axis is the contiguous one. That buys two
things: the batched C kernels' innermost loops run across lanes over
contiguous memory (auto-vectorizable) while preserving each lane's
solo accumulation order, and a per-lane coefficient register ``(B,)``
broadcasts along the *trailing* axis of a vector ufunc, numpy's fast
path. Scalar registers are plain ``(B,)`` arrays.

Convergence masking (freeze by snapshot, not by masked writes)
--------------------------------------------------------------
Lanes are independent: a lane whose Control fired must keep its exit
state bit-exactly while the remaining lanes iterate on. Masking every
vector write would put the whole hot path on numpy's slow ``where=``
branch, so the executor inverts the cost: *every* closure runs
full-width on the fast path (ufuncs straight into their destination
buffers), and when a Control fires, the exiting lanes' columns of
every buffer the innermost loop's body can write — its static
write-set, known at lowering — are snapshotted. When the loop exits,
those columns are restored, discarding whatever the dead trips wrote.
Frozen lanes therefore compute garbage for a while (cheap — the lanes
are part of the same vectorized op) but never *observe* it: trap
checks, fault hooks, Control comparisons and per-lane trip counters
all honor the active-lane mask, and restore rewinds the state itself.
The entry mask is re-established when the loop pops, so PCG-in-ADMM
nesting behaves exactly like B interleaved solo runs.

The same mechanism covers host-level masking: ``run(program, mask)``
snapshots the lanes *outside* ``mask`` against the whole program's
write-set and restores them at the end, so the segment driver can run
refresh/restart programs "for the active lanes" while frozen lanes
keep their exit state.

Buffers created mid-run (a first-trip binding after a Control already
fired) have no snapshot columns for the frozen lanes; their stale
columns are only reachable through reads the solo machine would
reject as use-before-def, which :mod:`repro.verify` statically
excludes.

Cycle accounting
----------------
The wall stats model the B-wide "virtual fleet": every lockstep trip
charges each instruction its full cost once (the hardware issues the
stream once, whatever the lane mask), so ``stats.total_cycles`` is the
fleet's wall time and wall loop trips are the max over lanes.
Per-lane *effective* cycles are analytic — each lane's own trip counts
through :meth:`~repro.hw.compiler.CompiledProgram.estimate_cycles` —
and equal what that lane's solo run would have measured.

Bit-exactness contract
----------------------
Elementwise IEEE-754 float64 ops are order-free per element, so a
``(len, B)`` ufunc is bitwise identical per lane to the solo ``(len,)``
ufunc; the closure fold table mirrors
:meth:`CompiledExecutor._lower_vector` exactly; DOT and SpMV route
through batched C kernels whose per-lane accumulation order is the
solo kernels' own (see :mod:`repro.hw.cjit`); scalar MAX replicates
Python ``max(a, b)`` (returns ``b`` only when ``b > a``,
NaN-asymmetric) via ``where(b > a, b, a)``. DIV/SQRT traps fire only
for *active* lanes — a frozen lane's stale operands can never fault a
running batch.
"""

from __future__ import annotations

import os

import numpy as np

from ..exceptions import ShapeError, SimulationError, VerificationError
from . import cjit
from .compiled import literal_operand
from .effect_ir import BufferRef, EffectIR, EffectStatement
from .isa import (BINARY_SCALAR_OPS, Control, DataTransfer, Loop, Program,
                  ScalarOp, ScalarOpKind, SpMV, VecDup, VectorOp,
                  VectorOpKind)
from .machine import ExecutionStats

__all__ = ["BatchMatrixResource", "BatchMachine", "BatchExecutor",
           "static_write_set"]


class _BatchLoopExit(Exception):
    """Internal: raised when a Control empties the innermost frame."""


class BatchMatrixResource:
    """Per-lane matrices with one shared structure, batched SpMV.

    ``lanes`` are the solo :class:`~repro.hw.machine.MatrixResource`
    objects of the B instances (typically borrowed from per-lane
    accelerators); their matrices must share the sparsity pattern —
    same-fingerprint problems do by construction (Ruiz scaling only
    rescales values), and the constructor verifies it. Values are
    stacked lane-minor: ``(nnz, B)``.
    """

    def __init__(self, name: str, lanes: list):
        if not lanes:
            raise ValueError("batch needs at least one lane")
        self.name = name
        self.lanes = list(lanes)
        first = lanes[0]
        self.spmv_cycles = first.spmv_cycles
        self.cvb_depth = first.cvb_depth
        matrix = first.matrix
        self.shape = tuple(int(s) for s in matrix.shape)
        indices = np.asarray(matrix.indices)
        indptr = np.asarray(matrix.indptr)
        for lane in lanes[1:]:
            if (tuple(int(s) for s in lane.matrix.shape) != self.shape
                    or not np.array_equal(lane.matrix.indices, indices)
                    or not np.array_equal(lane.matrix.indptr, indptr)):
                raise SimulationError(
                    f"batched matrix {name!r}: lanes do not share one "
                    "sparsity structure")
        self._kernel = None
        engine = cjit.engine()
        if engine is not None:
            val = np.ascontiguousarray(np.stack(
                [np.asarray(lane.matrix.data, dtype=np.float64)
                 for lane in lanes], axis=1))
            col = np.ascontiguousarray(indices, dtype=np.int64)
            ip = np.ascontiguousarray(indptr, dtype=np.int64)
            ffi = engine.ffi
            self._carrays = (val, col, ip)  # keep the memory alive
            self._cptrs = (ffi.cast("double *", val.ctypes.data),
                           ffi.cast("long *", col.ctypes.data),
                           ffi.cast("long *", ip.ctypes.data))
            self._cffi = ffi
            self._nnz = int(val.shape[0])
            self._kernel = engine.lib.k_csr_matvec_batch

    def bind(self, x: np.ndarray, out: np.ndarray):
        """Prebound ``out[:, b] = matrix_b @ x[:, b]`` closure for
        *stable* buffers: the C pointers are cast once at lowering
        time, so the per-call cost is exactly one kernel invocation.
        ``x``/``out`` must be the long-lived executor buffers (they
        are — lowering allocates them once per name)."""
        m, n = self.shape
        batch = len(self.lanes)
        if x.shape != (n, batch):
            raise ShapeError(
                f"batched matvec: expected ({n}, {batch}) input, "
                f"got shape {x.shape}")
        if self._kernel is not None:
            ffi = self._cffi
            kernel = self._kernel
            cptrs = self._cptrs
            px = ffi.cast("double *", x.ctypes.data)
            po = ffi.cast("double *", out.ctypes.data)
            nnz = self._nnz

            def run() -> None:
                kernel(*cptrs, px, po, m, n, nnz, batch)
            return run
        return lambda: self.apply_batch(x, out)

    def apply_batch(self, x: np.ndarray, out: np.ndarray) -> None:
        """``out[:, b] = matrix_b @ x[:, b]`` for every lane, in place."""
        m, n = self.shape
        batch = len(self.lanes)
        if x.shape != (n, batch):
            raise ShapeError(
                f"batched matvec: expected ({n}, {batch}) input, "
                f"got shape {x.shape}")
        if self._kernel is not None:
            ffi = self._cffi
            self._kernel(*self._cptrs,
                         ffi.cast("double *", x.ctypes.data),
                         ffi.cast("double *", out.ctypes.data),
                         m, n, self._nnz, batch)
            return
        # Per-lane solo kernels: each lane keeps exactly the kernel its
        # solo MatrixResource chose; contiguous per-lane copies keep
        # the solo code path (and bits) untouched.
        for b, lane in enumerate(self.lanes):
            out[:, b] = lane.apply(np.ascontiguousarray(x[:, b]))


class BatchMachine:
    """State container for B lockstep instances of one structure.

    Mirrors the :class:`~repro.hw.machine.Machine` interface the cycle
    model reads (``c`` / ``vector_length`` / ``spmv_cycles`` /
    ``cvb_depth``) while holding every vector as a lane-minor
    ``(len, B)`` buffer. Execution goes through :class:`BatchExecutor`
    only — the per-instruction interpreter stays single-instance.
    """

    def __init__(self, c: int, matrices: dict, batch: int):
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.c = int(c)
        self.batch = int(batch)
        self.matrices: dict[str, BatchMatrixResource] = dict(matrices)
        self.hbm: dict[str, np.ndarray] = {}
        self.vb: dict[str, np.ndarray] = {}
        self.cvb: dict[str, np.ndarray] = {}
        self.scalars: dict[str, np.ndarray] = {}
        self.stats = ExecutionStats()
        #: Per-lane loop trip counts, ``name -> (B,) int64`` (the wall
        #: trips live in ``stats.loop_iterations`` as usual).
        self.lane_loop_iterations: dict[str, np.ndarray] = {}
        #: Per-lane fault injectors (``None`` entries are fault-free
        #: lanes); hooks fire on a lane's column view only while that
        #: lane is active, so per-channel op counts match a solo run.
        self.injectors: list | None = None

    # -- host-side state helpers ----------------------------------------
    def write_hbm_lane(self, name: str, lane: int, values) -> None:
        """Host write of one lane's column (CPU -> HBM, not charged)."""
        col = np.asarray(values, dtype=np.float64)
        buf = self.hbm.get(name)
        if buf is None:
            buf = np.zeros((col.size, self.batch))
            self.hbm[name] = buf
        buf[:, lane] = col

    def read_hbm_lane(self, name: str, lane: int) -> np.ndarray:
        return self.hbm[name][:, lane].copy()

    def scalar_buffer(self, name: str) -> np.ndarray:
        buf = self.scalars.get(name)
        if buf is None:
            buf = np.zeros(self.batch)
            self.scalars[name] = buf
        return buf

    def set_scalar_lane(self, name: str, lane: int, value: float) -> None:
        self.scalar_buffer(name)[lane] = float(value)

    def scalar_lane(self, name: str, lane: int, default=None):
        buf = self.scalars.get(name)
        if buf is None:
            return default
        return float(buf[lane])

    # -- cycle-model context (per-lane lengths, like a solo machine) ----
    def vector_length(self, name: str) -> int:
        for space in (self.vb, self.hbm, self.cvb):
            if name in space:
                return int(space[name].shape[0])
        raise SimulationError(f"unknown vector {name!r}")

    def spmv_cycles(self, matrix: str) -> int:
        return self.matrices[matrix].spmv_cycles

    def cvb_depth(self, matrix: str) -> int:
        return self.matrices[matrix].cvb_depth


# ---------------------------------------------------------------------------
# write-set analysis (which buffers a block of instructions can mutate)

def _collect_writes(items, writes: set) -> None:
    """Accumulate ``(space, name)`` destinations of a block, recursing
    into nested loops. ``space`` keys the BatchMachine state dicts."""
    for instr in items:
        if isinstance(instr, ScalarOp):
            writes.add(("scalars", instr.dst))
        elif isinstance(instr, VectorOp):
            if instr.op is VectorOpKind.DOT:
                writes.add(("scalars", instr.dst))
            else:
                writes.add(("vb", instr.dst))
        elif isinstance(instr, DataTransfer):
            writes.add(("vb" if instr.direction == "load" else "hbm",
                        instr.name))
        elif isinstance(instr, VecDup):
            writes.add(("cvb", instr.cvb))
        elif isinstance(instr, SpMV):
            writes.add(("vb", instr.dst))
        elif isinstance(instr, Loop):
            _collect_writes(instr.body, writes)
        elif isinstance(instr, Control):
            pass
        else:
            raise SimulationError(f"unknown instruction {instr!r}")


def static_write_set(items) -> set:
    """The ``(space, name)`` write-set of a block of instructions.

    This is the set snapshot-restore freezes against; the codegen
    verifier (:mod:`repro.verify.codegen`) proves it a superset of the
    effect IR's actual writes for every fused unit inside the block.
    """
    writes: set = set()
    _collect_writes(items, writes)
    return writes


# ---------------------------------------------------------------------------
# lowered nodes (lockstep analogues of repro.hw.compiled's node classes)

class _Segment:
    """A straight-line block, lazily lowered, charge deferred.

    Lockstep wall accounting: the block charges its full cost per
    execution whatever the lane mask — the sequencer issues every
    instruction once per trip for however many lanes remain.
    """

    __slots__ = ("_executor", "_instructions", "_stats", "_fns",
                 "_cycles", "_by_class", "_count", "pending")

    def __init__(self, executor: "BatchExecutor", instructions: list):
        self._executor = executor
        self._instructions = instructions
        self._stats = executor.machine.stats
        self._fns = None
        self.pending = 0

    def run(self) -> None:
        fns = self._fns
        if fns is None:
            self._bind()
            return
        for fn in fns:
            fn()
        if self.pending == 0:
            self._executor._dirty.append(self)
        self.pending += 1

    def flush(self) -> None:
        count = self.pending
        if count:
            self.pending = 0
            if count == 1:
                self._stats.charge_block(self._cycles, self._by_class,
                                         self._count)
            else:
                self._stats.charge_block(
                    count * self._cycles,
                    {k: count * v for k, v in self._by_class.items()},
                    count * self._count)

    def _bind(self) -> None:
        executor = self._executor
        machine = executor.machine
        stats = self._stats
        fns: list = []
        total = 0
        by_class: dict = {}
        for instr in self._instructions:
            kind = type(instr).__name__
            cycles = instr.cycles(machine)
            stats.charge(kind, cycles)
            fn = executor._lower_instruction(instr)
            fn()
            fns.append(fn)
            total += cycles
            by_class[kind] = by_class.get(kind, 0) + cycles
        self._count = len(fns)
        # Chunk fusion collapses many ops into one C call with no
        # per-op hook points, so armed per-lane fault injectors keep
        # the unfused closures (which share the same bits anyway).
        if executor.jit and machine.injectors is None:
            fns = _fuse_batch_chunks(executor, self._instructions, fns)
        self._fns = fns
        self._cycles = total
        self._by_class = by_class


class _ControlNode:
    """A Control test, evaluated per lane; exits lanes individually.

    Lanes whose ``value < threshold`` are frozen: their columns of the
    innermost frame's write-set are snapshotted and they leave the
    current mask, so the remaining trips cannot *observably* touch
    them (their state is rewound at loop exit — the lockstep analogue
    of the solo ``_LoopExit`` skipping the rest of the body). Only
    when no active lane remains does the node abort the trip.
    """

    __slots__ = ("_executor", "_stats", "_value", "_threshold", "pending")

    def __init__(self, executor: "BatchExecutor", instr: Control):
        self._executor = executor
        self._stats = executor.machine.stats
        self._value = executor._scalar_reader(instr.reg)
        self._threshold = executor._scalar_reader(instr.threshold_reg)
        self.pending = 0

    def run(self) -> None:
        if self.pending == 0:
            self._executor._dirty.append(self)
        self.pending += 1
        executor = self._executor
        fired = self._value() < self._threshold()
        if isinstance(fired, np.ndarray):
            fired = fired & executor._mask
            if not fired.any():
                return
        elif fired:  # both operands literal: every active lane exits
            fired = executor._mask.copy()
        else:
            return
        executor._freeze_lanes(fired)
        remaining = executor._mask & ~fired
        executor._set_mask(remaining)
        if not remaining.any():
            raise _BatchLoopExit()

    def flush(self) -> None:
        count = self.pending
        if count:
            self.pending = 0
            self._stats.charge_block(count, {"Control": count}, count)


class _LoopNode:
    """A Loop owning a snapshot frame and a per-frame lane mask.

    The frame starts from the mask at loop entry; lanes that exit via
    Control are snapshotted against this loop's write-set and leave
    the mask for all later trips. On pop the snapshots are restored
    and the entry mask is re-established, so an outer body continues
    with its own lanes and the exited lanes' state is exactly their
    at-fire state (inner-loop exits never leak outward). Wall trips
    count every trip with at least one active lane; per-lane trips
    count the lanes active at each trip's start (the exit trip counts,
    as in the solo machine).
    """

    __slots__ = ("_executor", "_loop", "_nodes", "_stats", "_writes")

    def __init__(self, executor: "BatchExecutor", loop: Loop):
        self._executor = executor
        self._loop = loop
        self._nodes = executor._lower_block(loop.body)
        self._stats = executor.machine.stats
        writes: set = set()
        _collect_writes(loop.body, writes)
        self._writes = tuple(sorted(writes))

    def run(self) -> None:
        executor = self._executor
        loop = self._loop
        nodes = self._nodes
        machine = executor.machine
        lane_counts = machine.lane_loop_iterations.get(loop.name)
        if lane_counts is None:
            lane_counts = np.zeros(machine.batch, dtype=np.int64)
            machine.lane_loop_iterations[loop.name] = lane_counts
        entry = executor._mask
        frame = entry
        iterations = 0
        executor._push_frame(self._writes)
        try:
            for _ in range(loop.max_iter):
                if not frame.any():
                    break
                executor._set_mask(frame)
                if frame is entry:
                    lane_counts += frame
                else:
                    lane_counts[frame] += 1
                try:
                    for node in nodes:
                        node.run()
                    iterations += 1
                    frame = executor._mask
                except _BatchLoopExit:
                    iterations += 1
                    frame = executor._mask
                    break
        finally:
            executor._pop_frame()
            executor._set_mask(entry)
        counts = self._stats.loop_iterations
        counts[loop.name] = counts.get(loop.name, 0) + iterations


# ---------------------------------------------------------------------------

class BatchExecutor:
    """Run programs against a :class:`BatchMachine` under a lane mask.

    The structure mirrors :class:`~repro.hw.compiled.CompiledExecutor`
    (stable destination buffers, closures bound at first execution,
    deferred block charging, blocks cached by instruction-list
    identity). Closures always execute full-width with operands
    prebound at lowering time (every buffer is stable by
    construction); lane freezing is implemented by
    snapshot-at-Control-fire and restore-at-loop-exit (see the module
    docstring).
    """

    def __init__(self, machine: BatchMachine, jit: bool | None = None,
                 verify: bool | None = None):
        self.machine = machine
        self._blocks: dict = {}
        self._dirty: list = []
        if jit is None:
            self.jit = cjit.available()
        else:
            self.jit = bool(jit) and cjit.available()
        # Static codegen verification of every fused unit before its
        # first execution (memoized per effect-IR digest; see
        # repro.verify.codegen). REPRO_VERIFY_CODEGEN=0 is a global
        # kill switch that overrides any caller.
        if verify is None:
            verify = True
        self.verify = (bool(verify) and
                       os.environ.get("REPRO_VERIFY_CODEGEN", "1") != "0")
        #: Stack of (write_set, saved_columns) snapshot frames; the
        #: write set is the enclosing loop's (or the whole program's).
        self._frames: list = []
        self._set_mask(np.ones(machine.batch, dtype=bool))

    # -- mask and snapshot frames ---------------------------------------
    def _set_mask(self, mask: np.ndarray) -> None:
        self._mask = mask

    def _push_frame(self, writes: tuple) -> None:
        self._frames.append((writes, []))

    def _freeze_lanes(self, fired: np.ndarray) -> None:
        """Snapshot the fired lanes' columns of the innermost frame's
        write-set; restored when that frame pops. Buffers the frame's
        body has not yet created are skipped (their columns stay on
        the statically-unreachable use-before-def path)."""
        if not self._frames:
            return
        writes, saved = self._frames[-1]
        idx = np.flatnonzero(fired)
        machine = self.machine
        spaces = {"hbm": machine.hbm, "vb": machine.vb,
                  "cvb": machine.cvb, "scalars": machine.scalars}
        for space, name in writes:
            buf = spaces[space].get(name)
            if buf is not None:
                saved.append((buf, idx, buf[..., idx].copy()))

    def _pop_frame(self) -> None:
        _writes, saved = self._frames.pop()
        for buf, idx, cols in saved:
            buf[..., idx] = cols

    # -- execution -------------------------------------------------------
    def run(self, program: Program, mask: np.ndarray) -> ExecutionStats:
        """Execute ``program`` over the lanes selected by ``mask``.

        Lanes outside ``mask`` are frozen for the whole run: their
        columns of the program's write-set are snapshotted up front
        and restored at the end, so a host driver can run
        refresh/restart programs for the active subset only.
        """
        mask = np.ascontiguousarray(mask, dtype=bool)
        if mask.shape != (self.machine.batch,):
            raise ValueError(
                f"mask must have shape ({self.machine.batch},), "
                f"got {mask.shape}")
        writes: set = set()
        _collect_writes(program.instructions, writes)
        self._push_frame(tuple(sorted(writes)))
        try:
            self._set_mask(mask)
            frozen = ~mask
            if frozen.any():
                self._freeze_lanes(frozen)
            # One errstate for the whole run: closures execute frozen
            # lanes' columns too (their stale values may be out of
            # domain); the active-lane trap checks keep solo error
            # semantics, the suppressed warnings would only concern
            # columns that restore rewinds anyway.
            with np.errstate(divide="ignore", invalid="ignore",
                             over="ignore"):
                for node in self._lower_block(program.instructions):
                    node.run()
        finally:
            self._pop_frame()
            self._flush()
        return self.machine.stats

    def _flush(self) -> None:
        dirty = self._dirty
        if dirty:
            for node in dirty:
                node.flush()
            dirty.clear()

    def _lower_block(self, items: list) -> list:
        key = id(items)
        cached = self._blocks.get(key)
        if cached is not None and cached[0] is items:
            return cached[1]
        nodes: list = []
        current: list = []
        for item in items:
            if isinstance(item, Loop):
                if current:
                    nodes.append(_Segment(self, current))
                    current = []
                nodes.append(_LoopNode(self, item))
            elif isinstance(item, Control):
                if current:
                    nodes.append(_Segment(self, current))
                    current = []
                nodes.append(_ControlNode(self, item))
            else:
                current.append(item)
        if current:
            nodes.append(_Segment(self, current))
        self._blocks[key] = (items, nodes)
        return nodes

    # -- operand binding -------------------------------------------------
    def _resident(self, name: str) -> np.ndarray:
        machine = self.machine
        if name in machine.vb:
            return machine.vb[name]
        if name in machine.cvb:
            return machine.cvb[name]
        raise SimulationError(f"vector {name!r} not resident on chip")

    def _dst_buffer(self, space: dict, name: str, length: int) -> np.ndarray:
        batch = self.machine.batch
        buf = space.get(name)
        if (isinstance(buf, np.ndarray) and buf.dtype == np.float64
                and buf.shape == (length, batch)):
            return buf
        buf = np.zeros((length, batch))
        space[name] = buf
        return buf

    def _scalar_reader(self, ref):
        """Deferred reader: a ``(B,)`` register array or a literal.

        Control nodes are constructed at block-lowering time, before
        any instruction ran, so their operand registers may not exist
        yet — hence deferred resolution (unlike segment instructions,
        which bind at first execution and prebind their operands)."""
        if isinstance(ref, str):
            scalars = self.machine.scalars

            def get():
                try:
                    return scalars[ref]
                except KeyError:
                    raise SimulationError(
                        f"unknown scalar register {ref!r}") from None
            return get
        value = float(ref)
        return lambda: value

    def _scalar_operand(self, ref):
        """Prebound operand for segment-time binding: the stable
        ``(B,)`` register array, or a float literal. A segment
        instruction lowers at its *first execution*, so a register a
        correct program defines earlier already exists — a missing one
        is the same use-before-def the solo executor rejects."""
        lit = literal_operand(ref)
        if lit is not None:
            return lit
        buf = self.machine.scalars.get(ref)
        if buf is None:
            raise SimulationError(f"unknown scalar register {ref!r}")
        return buf

    # -- per-instruction lowering ---------------------------------------
    def _lower_instruction(self, instr):
        if isinstance(instr, ScalarOp):
            return self._lower_scalar(instr)
        if isinstance(instr, VectorOp):
            return self._lower_vector(instr)
        if isinstance(instr, DataTransfer):
            return self._lower_transfer(instr)
        if isinstance(instr, VecDup):
            return self._lower_vecdup(instr)
        if isinstance(instr, SpMV):
            return self._lower_spmv(instr)
        raise SimulationError(f"unknown instruction {instr!r}")

    def _hooked(self, fn, hook_name: str, site: str, buf: np.ndarray):
        """Per-lane fault hooks: fire on a lane's column view only
        while that lane is active, so op counting matches its solo
        run (writes through the view mutate the lane's column)."""
        injectors = self.machine.injectors
        if not injectors:
            return fn
        hooks = [(lane, getattr(injector, hook_name))
                 for lane, injector in enumerate(injectors)
                 if injector is not None]
        if not hooks:
            return fn

        def hooked():
            fn()
            mask = self._mask
            for lane, hook in hooks:
                if mask[lane]:
                    hook(site, buf[:, lane])
        return hooked

    # -- scalar ops ------------------------------------------------------
    def _lower_scalar(self, instr: ScalarOp):
        if instr.op in BINARY_SCALAR_OPS and instr.src2 is None:
            raise SimulationError(
                f"binary scalar op {instr.op.value!r} has no src2 "
                f"operand (dst={instr.dst!r})")
        machine = self.machine
        op = instr.op
        # Resolve sources BEFORE creating dst: `op d, undefined, s`
        # must fail like the solo executor even when d is new.
        a = self._scalar_operand(instr.src1)
        b = (self._scalar_operand(instr.src2)
             if instr.src2 is not None else None)
        dst = machine.scalar_buffer(instr.dst)
        a_lit = a if isinstance(a, float) else None
        b_lit = b if isinstance(b, float) else None
        both_lit = a_lit is not None and (instr.src2 is None
                                          or b_lit is not None)

        if op is ScalarOpKind.MAX:
            def fn():
                # Python max(a, b) returns b only when b > a (NaN-
                # asymmetric), which np.maximum would not replicate.
                np.copyto(dst, np.where(np.greater(b, a), b, a))
            return fn
        if op is ScalarOpKind.MOV:
            if a_lit is not None:
                return lambda: dst.fill(a_lit)
            return lambda: np.copyto(dst, a)
        if op is ScalarOpKind.SQRT:
            if a_lit is not None:
                if a_lit < 0.0:
                    def fn():
                        raise SimulationError("sqrt of a negative scalar")
                    return fn
                value = float(np.sqrt(a_lit))
                return lambda: dst.fill(value)

            def fn():
                # Fast pre-filter: only when some lane (frozen lanes
                # included) is negative, pay the masked check. A NaN
                # minimum fails the >= 0 test and falls through too.
                if not bool(a.min() >= 0.0):
                    if bool(((a < 0.0) & self._mask).any()):
                        raise SimulationError("sqrt of a negative scalar")
                np.sqrt(a, out=dst)
            return fn
        if op is ScalarOpKind.DIV:
            if b_lit is not None:
                if b_lit == 0.0:
                    def fn():
                        raise SimulationError("scalar division by zero")
                    return fn
                if a_lit is not None:
                    value = a_lit / b_lit
                    return lambda: dst.fill(value)

                def fn():
                    np.divide(a, b_lit, out=dst)
                return fn

            def fn():
                # all() is True iff no lane holds 0.0 (NaN is truthy),
                # so the common case skips the masked trap check.
                if not b.all():
                    if bool(((b == 0.0) & self._mask).any()):
                        raise SimulationError("scalar division by zero")
                np.divide(a, b, out=dst)
            return fn
        ufunc = {ScalarOpKind.ADD: np.add,
                 ScalarOpKind.SUB: np.subtract,
                 ScalarOpKind.MUL: np.multiply}.get(op)
        if ufunc is None:  # pragma: no cover - enum is closed
            raise SimulationError(f"unknown scalar op {op}")
        if both_lit:
            value = float(ufunc(a_lit, b_lit))
            return lambda: dst.fill(value)

        def fn():
            ufunc(a, b, out=dst)
        return fn

    # -- vector ops ------------------------------------------------------
    def _lower_vector(self, instr: VectorOp):
        machine = self.machine
        kind = instr.op
        srcs = instr.srcs
        if kind is VectorOpKind.DOT:
            return self._lower_dot(instr)
        a = self._resident(srcs[0])
        length = a.shape[0]
        if kind is VectorOpKind.COPY:
            dst = self._dst_buffer(machine.vb, instr.dst, length)

            def fn():
                np.copyto(dst, a)
            return fn
        if kind is VectorOpKind.CLIP:
            lo = self._resident(srcs[1])
            hi = self._resident(srcs[2])
            dst = self._dst_buffer(machine.vb, instr.dst, length)

            def fn():
                np.clip(a, lo, hi, out=dst)
            return fn
        b = self._resident(srcs[1])
        dst = self._dst_buffer(machine.vb, instr.dst, length)
        if kind is VectorOpKind.EWMUL:
            def fn():
                np.multiply(a, b, out=dst)
            return fn
        if kind is VectorOpKind.SCALE_ADD:
            al = literal_operand(instr.alpha)
            if al == 1.0:
                def fn():
                    np.add(a, b, out=dst)
                return fn
            if al == -1.0:
                def fn():
                    np.subtract(a, b, out=dst)
                return fn
            # A (B,) register broadcasts along the trailing lane axis:
            # lane b's column scales by alpha[b], exactly the solo
            # alpha * vector per lane.
            alpha = self._scalar_operand(instr.alpha)
            t = np.empty_like(b)

            def fn():
                np.multiply(b, alpha, out=t)
                np.add(a, t, out=dst)
            return fn
        if kind is VectorOpKind.AXPBY:
            return self._lower_axpby(instr, a, b, dst)
        raise SimulationError(f"unknown vector op {kind}")

    def _lower_axpby(self, instr: VectorOp, a, b, dst):
        # Identical fold table to CompiledExecutor._lower_vector:
        # +-1.0 coefficients fold their multiply away (exact IEEE
        # identities), everything else evaluates alpha*a + beta*b.
        al = literal_operand(instr.alpha)
        be = literal_operand(instr.beta)
        if al == 1.0 and be == 1.0:
            def fn():
                np.add(a, b, out=dst)
            return fn
        if al == 1.0 and be == -1.0:
            def fn():
                np.subtract(a, b, out=dst)
            return fn
        if al == 1.0:
            beta = self._scalar_operand(instr.beta)
            t2 = np.empty_like(b)

            def fn():
                np.multiply(b, beta, out=t2)
                np.add(a, t2, out=dst)
            return fn
        if be == 1.0:
            alpha = self._scalar_operand(instr.alpha)
            t1 = np.empty_like(a)

            def fn():
                np.multiply(a, alpha, out=t1)
                np.add(t1, b, out=dst)
            return fn
        if be == -1.0:
            alpha = self._scalar_operand(instr.alpha)
            t1 = np.empty_like(a)

            def fn():
                np.multiply(a, alpha, out=t1)
                np.subtract(t1, b, out=dst)
            return fn
        if al == -1.0:
            beta = self._scalar_operand(instr.beta)
            t2 = np.empty_like(b)

            def fn():
                np.multiply(b, beta, out=t2)
                np.subtract(t2, a, out=dst)
            return fn
        alpha = self._scalar_operand(instr.alpha)
        beta = self._scalar_operand(instr.beta)
        t1 = np.empty_like(a)
        t2 = np.empty_like(b)

        def fn():
            np.multiply(a, alpha, out=t1)
            np.multiply(b, beta, out=t2)
            np.add(t1, t2, out=dst)
        return fn

    def _lower_dot(self, instr: VectorOp):
        machine = self.machine
        a = self._resident(instr.srcs[0])
        b = self._resident(instr.srcs[1])
        dst = machine.scalar_buffer(instr.dst)
        engine = cjit.engine()
        if engine is not None and a.shape == b.shape:
            # Lane-minor k_dot_batch: per lane the i-loop accumulates
            # in exactly the solo k_dot order; the kernel writes the
            # (B,) register directly.
            ffi = engine.ffi
            k_dot_batch = engine.lib.k_dot_batch
            pa = ffi.cast("double *", a.ctypes.data)
            pb = ffi.cast("double *", b.ctypes.data)
            po = ffi.cast("double *", dst.ctypes.data)
            n = int(a.shape[0])
            batch = machine.batch

            def fn(_hold=(a, b, dst)):
                k_dot_batch(pa, pb, n, batch, po)
            return fn

        def fn():
            # Contiguous per-lane copies keep numpy's solo np.dot code
            # path, hence the solo bits.
            for lane in range(machine.batch):
                dst[lane] = float(np.dot(
                    np.ascontiguousarray(a[:, lane]),
                    np.ascontiguousarray(b[:, lane])))
        return fn

    # -- transfers / CVB / SpMV -----------------------------------------
    def _lower_transfer(self, instr: DataTransfer):
        machine = self.machine
        name = instr.name
        if instr.direction == "load":
            src = machine.hbm.get(name)
            if src is None:
                raise SimulationError(f"HBM vector {name!r} missing")
            dst = self._dst_buffer(machine.vb, name, int(src.shape[0]))

            def fn():
                np.copyto(dst, src)
            return self._hooked(fn, "on_load", name, dst)
        if instr.direction == "store":
            vec = self._resident(name)
            dst = self._dst_buffer(machine.hbm, name, int(vec.shape[0]))

            def fn():
                np.copyto(dst, vec)
            return fn
        raise SimulationError(f"bad transfer direction {instr.direction!r}")

    def _lower_vecdup(self, instr: VecDup):
        machine = self.machine
        src = self._resident(instr.src)
        dst = self._dst_buffer(machine.cvb, instr.cvb, int(src.shape[0]))

        def fn():
            np.copyto(dst, src)
        return self._hooked(fn, "on_cvb", instr.cvb, dst)

    def _lower_spmv(self, instr: SpMV):
        machine = self.machine
        resource = machine.matrices[instr.matrix]
        src = machine.cvb.get(instr.src)
        if src is None:
            raise SimulationError(f"SpMV source {instr.src!r} not in CVB")
        rows, cols = resource.shape
        if src.shape[0] != cols:
            raise ShapeError(
                f"matvec: expected vector of length {cols}, "
                f"got length {src.shape[0]}")
        dst = self._dst_buffer(machine.vb, instr.dst, rows)
        fn = resource.bind(src, dst)
        return self._hooked(fn, "on_spmv", instr.dst, dst)


# ---------------------------------------------------------------------------
# Batched C chunk fusion (cjit): collapse straight-line runs into one
# generated C call over the lane-minor buffers. The per-element
# expressions are exactly the ones the numpy closures evaluate (see the
# fold tables above) and the DOT/SpMV bodies are the engine library's
# batched kernels, so fused chunks produce the same bits as the
# unfused closures — and hence as B solo runs.

_BATCH_CHUNK_CDEF = """
void chunk_run(double **B, long **IA, const long *L, const double *S);
"""

_BATCH_CHUNK_VECTOR_OPS = frozenset({VectorOpKind.AXPBY, VectorOpKind.EWMUL,
                                     VectorOpKind.SCALE_ADD,
                                     VectorOpKind.COPY, VectorOpKind.DOT})

#: Trap-free scalar ops only: DIV/SQRT carry active-lane trap checks a
#: fused chunk could not replicate, so they stay numpy closures (and
#: break fusion runs, exactly like solo non-chunkable instructions).
_BATCH_CHUNK_SCALAR_OPS = frozenset({ScalarOpKind.MOV, ScalarOpKind.ADD,
                                     ScalarOpKind.SUB, ScalarOpKind.MUL,
                                     ScalarOpKind.MAX})


def _batch_chunkable(executor: "BatchExecutor", instr) -> bool:
    if isinstance(instr, VecDup):
        return True
    if isinstance(instr, VectorOp):
        return instr.op in _BATCH_CHUNK_VECTOR_OPS
    if isinstance(instr, ScalarOp):
        return instr.op in _BATCH_CHUNK_SCALAR_OPS
    if isinstance(instr, SpMV):
        resource = executor.machine.matrices.get(instr.matrix)
        return resource is not None and resource._kernel is not None
    return False


def _fuse_batch_chunks(executor: "BatchExecutor", instrs: list,
                       fns: list) -> list:
    """Replace runs of >= 2 chunkable closures with one C call each.

    Any failure (unsupported pattern, compile error) keeps the numpy
    closures for that run — the fallback is always correct, the fusion
    is only faster.
    """
    out: list = []
    i, n = 0, len(instrs)
    while i < n:
        j = i
        while j < n and _batch_chunkable(executor, instrs[j]):
            j += 1
        if j - i >= 2:
            fn = _build_batch_chunk(executor, instrs[i:j])
            if fn is not None:
                out.append(fn)
            else:
                out.extend(fns[i:j])
        else:
            out.extend(fns[i:j if j > i else i + 1])
        i = max(j, i + 1)
    return out


def _build_batch_chunk(executor: "BatchExecutor", instrs: list):
    try:
        builder = _BatchChunkBuilder(executor)
        for instr in instrs:
            builder.emit(instr)
        if executor.verify:
            from ..verify.codegen import ensure_codegen_verified
            ensure_codegen_verified(builder.effect_ir(), instrs,
                                    executor.machine)
        return builder.finish()
    except VerificationError:
        # A rejected unit is a genuine codegen defect, never a "fall
        # back to closures" situation: fail loudly.
        raise
    except Exception:
        return None


class _BatchChunkBuilder:
    """Generate one C function for a run of batched instructions.

    Mirrors :class:`repro.hw.compiled._ChunkBuilder` with two
    lane-minor twists: scalar registers are stable ``(B,)`` buffers
    mutated in place, so they travel through the ``B`` pointer table
    like any other operand (no staleness — a register a DOT writes
    earlier in the chunk is simply read through its buffer pointer by
    later blocks); and every per-element expression gains an inner
    lane loop over the contiguous trailing axis. Only float *literals*
    go through the ``S`` constant table, keeping the source canonical
    per instruction pattern for the hash-addressed module cache.
    """

    def __init__(self, executor: "BatchExecutor"):
        self.executor = executor
        self.machine = executor.machine
        self.bufs: list = []
        self._buf_ids: dict = {}
        self.iarrs: list = []
        self._iarr_ids: dict = {}
        self.lens: list = []
        self.consts: list = []
        self.blocks: list = []
        self._sregs = 0
        # effect-IR recording (consumed by repro.verify.codegen)
        self.effects: list = []
        self._pending_reads: list = []  # ("reg"|"lit", ref, token)
        self._pending_lens: list = []   # (L slot, value)
        self._instr_index = -1

    # -- effect recording ------------------------------------------------
    def _src_ref(self, name: str, arr: np.ndarray) -> BufferRef:
        space = "vb" if name in self.machine.vb else "cvb"
        return BufferRef(space, name, int(arr.shape[0]))

    def _record(self, op: str, index: str, bound: int, *, dst=None,
                srcs=(), expr: str = "", text: str = "", site=None,
                matrix=None, spmv_shape=None, index_arrays=None,
                nnz: int = 0, sreg_writes=(), lane_bound: int = 0) -> None:
        reads = self._pending_reads
        self._pending_reads = []
        len_slots = tuple(self._pending_lens)
        self._pending_lens = []
        self.effects.append(EffectStatement(
            op=op, index=index, bound=int(bound), dst=dst,
            srcs=tuple(srcs), expr=expr, text=text,
            lane_bound=int(lane_bound),
            sreg_reads=tuple((ref, tok) for kind, ref, tok in reads
                             if kind == "reg"),
            lit_reads=tuple((ref, tok) for kind, ref, tok in reads
                            if kind == "lit"),
            sreg_writes=tuple(sreg_writes), len_slots=len_slots,
            instr_index=self._instr_index, site=site, matrix=matrix,
            spmv_shape=spmv_shape, index_arrays=index_arrays, nnz=nnz))

    def effect_ir(self) -> EffectIR:
        return EffectIR(tier="batch-chunk", batch=self.machine.batch,
                        statements=list(self.effects),
                        lens=tuple(self.lens),
                        consts=tuple(self.consts),
                        source="".join(self.blocks))

    # -- operand tables --------------------------------------------------
    def buf(self, arr: np.ndarray) -> str:
        if arr.dtype != np.float64 or not arr.flags["C_CONTIGUOUS"]:
            raise SimulationError("chunk operand must be contiguous f64")
        key = id(arr)
        idx = self._buf_ids.get(key)
        if idx is None:
            idx = len(self.bufs)
            self.bufs.append(arr)
            self._buf_ids[key] = idx
        return f"B[{idx}]"

    def iarr(self, arr: np.ndarray) -> str:
        if arr.dtype != np.int64 or not arr.flags["C_CONTIGUOUS"]:
            raise SimulationError("chunk index array must be contiguous i64")
        key = id(arr)
        idx = self._iarr_ids.get(key)
        if idx is None:
            idx = len(self.iarrs)
            self.iarrs.append(arr)
            self._iarr_ids[key] = idx
        return f"IA[{idx}]"

    def length(self, n: int) -> str:
        # one slot per use: keeps the source canonical per pattern even
        # when two operand lengths happen to coincide at runtime
        self.lens.append(int(n))
        slot = len(self.lens) - 1
        self._pending_lens.append((slot, int(n)))
        return f"L[{slot}]"

    def const(self, value: float) -> str:
        self.consts.append(float(value))
        token = f"S[{len(self.consts) - 1}]"
        self._pending_reads.append(("lit", float(value), token))
        return token

    def sreg(self, ref):
        """A scalar operand: ``(decls, token, lane_varying)``.

        A register resolves to its stable ``(B,)`` buffer (token indexes
        the lane ``[j]``); a literal resolves to an ``S`` constant.
        """
        operand = self.executor._scalar_operand(ref)
        if isinstance(operand, float):
            return [], self.const(operand), False
        name = f"s{self._sregs}"
        self._sregs += 1
        token = f"{name}[j]"
        self._pending_reads.append(("reg", ref, token))
        return ([f"const double *{name} = {self.buf(operand)};"],
                token, True)

    # -- emission --------------------------------------------------------
    def _flat(self, total: int, decls: list, expr: str) -> None:
        """One loop over all ``len * batch`` contiguous elements."""
        body = "".join(f"        {line}\n" for line in decls)
        self.blocks.append(
            "    {\n"
            f"        const long t = {self.length(total)};\n"
            + body +
            "        for (long i = 0; i < t; ++i)\n"
            f"            {expr};\n"
            "    }\n")

    def _laned(self, n: int, decls: list, rowptrs: list, expr: str) -> None:
        """Row loop with an inner lane loop (lane-varying coefficients).

        ``rowptrs`` maps row-pointer names to base pointer names, e.g.
        ``[("ai", "a"), ("di", "d")]``; ``expr`` indexes them ``[j]``.
        """
        body = "".join(f"        {line}\n" for line in decls)
        rows = "".join(
            f"            {'double' if name.startswith('d') else 'const double'}"
            f" *{name} = {base} + i * bt;\n"
            for name, base in rowptrs)
        self.blocks.append(
            "    {\n"
            f"        const long n = {self.length(n)};\n"
            f"        const long bt = {self.length(self.machine.batch)};\n"
            + body +
            "        for (long i = 0; i < n; ++i) {\n"
            + rows +
            "            for (long j = 0; j < bt; ++j)\n"
            f"                {expr};\n"
            "        }\n"
            "    }\n")

    def _scalar_block(self, decls: list, expr: str) -> None:
        """One lane loop over a ``(B,)`` register destination."""
        body = "".join(f"        {line}\n" for line in decls)
        self.blocks.append(
            "    {\n"
            f"        const long bt = {self.length(self.machine.batch)};\n"
            + body +
            "        for (long j = 0; j < bt; ++j)\n"
            f"            {expr};\n"
            "    }\n")

    def emit(self, instr) -> None:
        self._instr_index += 1
        if isinstance(instr, VecDup):
            src = self.executor._resident(instr.src)
            dst = self.executor._dst_buffer(
                self.machine.cvb, instr.cvb, int(src.shape[0]))
            total = int(src.shape[0]) * self.machine.batch
            self._flat(total, [
                f"const double *a = {self.buf(src)};",
                f"double *d = {self.buf(dst)};",
            ], "d[i] = a[i]")
            self._record(
                "vecdup", "flat", total,
                dst=BufferRef("cvb", instr.cvb, int(dst.shape[0])),
                srcs=(self._src_ref(instr.src, src),),
                expr="d[i] = a[i]", text=self.blocks[-1],
                site=getattr(instr, "site", None))
            return
        if isinstance(instr, SpMV):
            self._emit_spmv(instr)
            return
        if isinstance(instr, VectorOp):
            self._emit_vector(instr)
            return
        if isinstance(instr, ScalarOp):
            self._emit_scalar(instr)
            return
        raise SimulationError(f"instruction not chunkable: {instr!r}")

    def _emit_scalar(self, instr: ScalarOp) -> None:
        op = instr.op
        if op in BINARY_SCALAR_OPS and instr.src2 is None:
            raise SimulationError("binary scalar op missing src2")
        decls_a, a, _ = self.sreg(instr.src1)
        decls = list(decls_a)
        b = None
        if instr.src2 is not None:
            decls_b, b, _ = self.sreg(instr.src2)
            decls += decls_b
        dst = self.machine.scalar_buffer(instr.dst)
        decls.append(f"double *d = {self.buf(dst)};")
        if op is ScalarOpKind.MOV:
            expr = f"d[j] = {a}"
        elif op is ScalarOpKind.MAX:
            # Python max(a, b): returns b only when b > a (NaN-
            # asymmetric) — same as the closure's where(b > a, b, a).
            expr = f"d[j] = ({b} > {a}) ? {b} : {a}"
        elif op is ScalarOpKind.ADD:
            expr = f"d[j] = {a} + {b}"
        elif op is ScalarOpKind.SUB:
            expr = f"d[j] = {a} - {b}"
        elif op is ScalarOpKind.MUL:
            expr = f"d[j] = {a} * {b}"
        else:
            raise SimulationError(f"scalar op not chunkable: {op}")
        self._scalar_block(decls, expr)
        self._record(f"scalar:{op.value}", "scalar", 0, expr=expr,
                     text=self.blocks[-1],
                     lane_bound=self.machine.batch,
                     sreg_writes=((instr.dst, "d[j]"),),
                     site=getattr(instr, "site", None))

    def _emit_vector(self, instr: VectorOp) -> None:
        executor = self.executor
        machine = self.machine
        kind = instr.op
        site = getattr(instr, "site", None)
        a = executor._resident(instr.srcs[0])
        a_ref = self._src_ref(instr.srcs[0], a)
        n = int(a.shape[0])
        total = n * machine.batch
        if kind is VectorOpKind.COPY:
            dst = executor._dst_buffer(machine.vb, instr.dst, n)
            self._flat(total, [
                f"const double *a = {self.buf(a)};",
                f"double *d = {self.buf(dst)};",
            ], "d[i] = a[i]")
            self._record(
                "copy", "flat", total,
                dst=BufferRef("vb", instr.dst, int(dst.shape[0])),
                srcs=(a_ref,), expr="d[i] = a[i]",
                text=self.blocks[-1], site=site)
            return
        b = executor._resident(instr.srcs[1])
        b_ref = self._src_ref(instr.srcs[1], b)
        if kind is VectorOpKind.DOT:
            if a.shape != b.shape:
                raise SimulationError("dot operand shapes differ")
            dst = machine.scalar_buffer(instr.dst)
            self.blocks.append(
                "    {\n"
                f"        const double *a = {self.buf(a)};\n"
                f"        const double *b = {self.buf(b)};\n"
                f"        double * restrict o = {self.buf(dst)};\n"
                f"        const long n = {self.length(n)};\n"
                f"        const long bt = {self.length(machine.batch)};\n"
                "        for (long j = 0; j < bt; ++j)\n"
                "            o[j] = 0.0;\n"
                "        for (long i = 0; i < n; ++i) {\n"
                "            const double *ai = a + i * bt;\n"
                "            const double *bi = b + i * bt;\n"
                "            for (long j = 0; j < bt; ++j)\n"
                "                o[j] += ai[j] * bi[j];\n"
                "        }\n"
                "    }\n")
            self._record("dot", "reduce", n, srcs=(a_ref, b_ref),
                         text=self.blocks[-1],
                         lane_bound=machine.batch,
                         sreg_writes=((instr.dst, "o"),), site=site)
            return
        dst = executor._dst_buffer(machine.vb, instr.dst, n)
        dst_ref = BufferRef("vb", instr.dst, int(dst.shape[0]))
        flat_decls = [f"const double *a = {self.buf(a)};",
                      f"const double *b = {self.buf(b)};",
                      f"double *d = {self.buf(dst)};"]

        def record_flat(op, expr):
            self._record(op, "flat", total, dst=dst_ref,
                         srcs=(a_ref, b_ref), expr=expr,
                         text=self.blocks[-1], site=site)

        if kind is VectorOpKind.EWMUL:
            self._flat(total, flat_decls, "d[i] = a[i] * b[i]")
            record_flat("ewmul", "d[i] = a[i] * b[i]")
            return

        def laned(op, coeff_decls, expr):
            self._laned(n, flat_decls + coeff_decls,
                        [("ai", "a"), ("bi", "b"), ("di", "d")], expr)
            self._record(op, "laned", n, dst=dst_ref,
                         srcs=(a_ref, b_ref), expr=expr,
                         text=self.blocks[-1],
                         lane_bound=machine.batch, site=site)

        if kind is VectorOpKind.SCALE_ADD:
            al = literal_operand(instr.alpha)
            if al == 1.0:
                self._flat(total, flat_decls, "d[i] = a[i] + b[i]")
                record_flat("scale_add", "d[i] = a[i] + b[i]")
            elif al == -1.0:
                self._flat(total, flat_decls, "d[i] = a[i] - b[i]")
                record_flat("scale_add", "d[i] = a[i] - b[i]")
            else:
                decls, s0, _ = self.sreg(instr.alpha)
                laned("scale_add", decls,
                      f"di[j] = ai[j] + bi[j] * {self._lane(s0)}")
            return
        if kind is VectorOpKind.AXPBY:
            al = literal_operand(instr.alpha)
            be = literal_operand(instr.beta)
            if al == 1.0 and be == 1.0:
                self._flat(total, flat_decls, "d[i] = a[i] + b[i]")
                record_flat("axpby", "d[i] = a[i] + b[i]")
            elif al == 1.0 and be == -1.0:
                self._flat(total, flat_decls, "d[i] = a[i] - b[i]")
                record_flat("axpby", "d[i] = a[i] - b[i]")
            elif al == 1.0:
                decls, s0, _ = self.sreg(instr.beta)
                laned("axpby", decls,
                      f"di[j] = ai[j] + bi[j] * {self._lane(s0)}")
            elif be == 1.0:
                decls, s0, _ = self.sreg(instr.alpha)
                laned("axpby", decls,
                      f"di[j] = ai[j] * {self._lane(s0)} + bi[j]")
            elif be == -1.0:
                decls, s0, _ = self.sreg(instr.alpha)
                laned("axpby", decls,
                      f"di[j] = ai[j] * {self._lane(s0)} - bi[j]")
            elif al == -1.0:
                decls, s0, _ = self.sreg(instr.beta)
                laned("axpby", decls,
                      f"di[j] = bi[j] * {self._lane(s0)} - ai[j]")
            else:
                decls_a, s0, _ = self.sreg(instr.alpha)
                decls_b, s1, _ = self.sreg(instr.beta)
                laned("axpby", decls_a + decls_b,
                      f"di[j] = ai[j] * {self._lane(s0)} + "
                      f"bi[j] * {self._lane(s1)}")
            return
        raise SimulationError(f"vector op not chunkable: {kind}")

    @staticmethod
    def _lane(token: str) -> str:
        # sreg tokens already index the lane for register operands and
        # are lane-invariant S constants otherwise — both valid inside
        # the lane loop as-is.
        return token

    def _emit_spmv(self, instr: SpMV) -> None:
        machine = self.machine
        resource = machine.matrices[instr.matrix]
        if resource._kernel is None:
            raise SimulationError("SpMV resource has no batched C kernel")
        src = machine.cvb.get(instr.src)
        if src is None:
            raise SimulationError(f"SpMV source {instr.src!r} not in CVB")
        rows = int(resource.shape[0])
        dst = self.executor._dst_buffer(machine.vb, instr.dst, rows)
        val, col, ip = resource._carrays
        # The engine library's k_csr_matvec_batch body: per lane the
        # k-loop accumulates in exactly the solo row-sum order.
        self.blocks.append(
            "    {\n"
            f"        const double * restrict v = {self.buf(val)};\n"
            f"        const long *col = {self.iarr(col)};\n"
            f"        const long *ip = {self.iarr(ip)};\n"
            f"        const double * restrict xx = {self.buf(src)};\n"
            f"        double * restrict yy = {self.buf(dst)};\n"
            f"        const long nrows = {self.length(rows)};\n"
            f"        const long bt = {self.length(machine.batch)};\n"
            "        for (long r = 0; r < nrows; ++r) {\n"
            "            double * restrict yr = yy + r * bt;\n"
            "            for (long j = 0; j < bt; ++j)\n"
            "                yr[j] = 0.0;\n"
            "            for (long k = ip[r]; k < ip[r + 1]; ++k) {\n"
            "                const double * restrict vk = v + k * bt;\n"
            "                const double * restrict xk = xx + col[k] * bt;\n"
            "                for (long j = 0; j < bt; ++j)\n"
            "                    yr[j] += vk[j] * xk[j];\n"
            "            }\n"
            "        }\n"
            "    }\n")
        self._record(
            "spmv", "gather", rows,
            dst=BufferRef("vb", instr.dst, int(dst.shape[0])),
            srcs=(BufferRef("matrix", instr.matrix, int(val.shape[0])),
                  BufferRef("cvb", instr.src, int(src.shape[0]))),
            text=self.blocks[-1], site=getattr(instr, "site", None),
            matrix=instr.matrix,
            spmv_shape=(rows, int(resource.shape[1])),
            index_arrays=(col, ip), nnz=int(val.shape[0]),
            lane_bound=machine.batch)

    # -- finish ----------------------------------------------------------
    def finish(self):
        source = ("void chunk_run(double **B, long **IA, const long *L,\n"
                  "               const double *S)\n{\n"
                  + "".join(self.blocks) + "}\n")
        module = (cjit.compile_module(_BATCH_CHUNK_CDEF, source,
                                      tag="bchunk",
                                      args=cjit._ENGINE_COMPILE_ARGS)
                  or cjit.compile_module(_BATCH_CHUNK_CDEF, source,
                                         tag="bchunk",
                                         args=cjit._ENGINE_FALLBACK_ARGS))
        if module is None:
            return None
        ffi = module.ffi
        run = module.lib.chunk_run
        pB = ffi.new("double *[]",
                     [ffi.cast("double *", a.ctypes.data)
                      for a in self.bufs] or [ffi.NULL])
        pI = ffi.new("long *[]",
                     [ffi.cast("long *", a.ctypes.data)
                      for a in self.iarrs] or [ffi.NULL])
        pL = ffi.new("long[]", self.lens or [0])
        pS = ffi.new("double[]", self.consts or [0.0])
        hold = (tuple(self.bufs), tuple(self.iarrs), pB, pI, pL, pS)

        def fn(_hold=hold):
            run(pB, pI, pL, pS)
        return fn
