"""Host-side wrapper: run PDQP end-to-end on the simulated RSQP card.

The second algorithm on the customized datapaths: restarted Halpern
PDHG (:mod:`repro.solver.pdqp`) lowered by
:func:`repro.hw.compiler.compile_pdqp_program`. The host performs the
setup the reference solver does (Ruiz scaling, power-iteration step
sizes, data download); the card runs the anchored PDHG loop in
fixed-length segments, and the host performs the restart between
segments — anchor refresh, Halpern-counter reset and optional primal
weight rebalancing — exactly as the ADMM wrapper drives its host-side
rho updates. Both the interpreter and the compiled backend execute
the same instruction stream bit-identically.
"""

from __future__ import annotations

import time

import numpy as np

from ..customization import ProblemCustomization, customize_problem
from ..exceptions import DeadlineExceededError, FaultDetectedError
from ..qp import QProblem, RuizPlan, ruiz_equilibrate
from ..solver.pdqp import PDQPSolver
from ..solver.settings import OMEGA_MAX, OMEGA_MIN, PDQPSettings
from .accelerator import RSQPResult
from .compiled import CompiledExecutor, validate_backend
from .compiler import PDHG_LOOP, CompiledProgram, attach_costs, \
    compile_pdqp_program
from .frequency import fmax_mhz
from .machine import ExecutionStats, Machine, MatrixResource
from .power import fpga_power_watts

__all__ = ["PDQPAccelerator", "compile_pdqp_for_customization",
           "rebalanced_omega", "pdqp_step_sizes"]


def rebalanced_omega(omega: float, rp: float, rdual: float,
                     npz: float, nd_all: float) -> float:
    """Residual-balanced primal-weight estimate (exact float path).

    Shared by the solo accelerator's host restart and the batched
    runner's per-lane restarts, mirroring
    :func:`repro.hw.accelerator.adaptive_rho_estimate`.
    """
    pri_norm = max(npz, 1e-15)
    dua_norm = max(nd_all, 1e-15)
    estimate = omega * np.sqrt((rp / pri_norm)
                               / max(rdual / dua_norm, 1e-15))
    return float(np.clip(estimate, OMEGA_MIN, OMEGA_MAX))


def pdqp_step_sizes(omega: float, norm_a: float, lam_p: float,
                    tau_scale: float) -> tuple[float, float]:
    """``(tau, sigma)`` for a primal weight, as the reference derives."""
    denom = omega * norm_a + lam_p
    tau = tau_scale / max(denom, 1e-15)
    sigma = omega / norm_a if norm_a > 1e-15 else omega
    return tau, sigma


class PDQPAccelerator:
    """Simulated RSQP card solving one QP structure with PDQP.

    Mirrors :class:`repro.hw.accelerator.RSQPAccelerator`'s interface
    (same ``backend`` / ``verify`` / fault / deadline machinery) so the
    serving layer can dispatch to either from one artifact. The
    customization is built against the raw ``P`` / ``A`` / ``A'``
    structures — identical to the ADMM card's matrix set, which is why
    one customized architecture serves both algorithms.

    Parameters
    ----------
    problem:
        The QP to solve (unscaled; the host scales it during setup).
    customization:
        A :class:`ProblemCustomization` (defaults to the customized
        design at ``c = 16``).
    settings:
        :class:`~repro.solver.settings.PDQPSettings`; the accelerator
        honors ``omega`` / ``tau_scale`` / ``power_iterations`` for
        step sizes, ``restart_interval`` as the on-card segment length,
        ``omega_adaptive`` / ``omega_tolerance`` for host rebalancing
        and the shared termination fields.
    compiled:
        Optional pre-compiled PDQP program with costs attached (a
        cached serving artifact); must match this structure and width.
    backend:
        ``"compiled"`` (default) or ``"interpret"`` — bit-identical.
    verify:
        Statically verify the program against the PDQP download
        contract before execution (see :mod:`repro.verify`).
    """

    def __init__(self, problem: QProblem,
                 customization: ProblemCustomization | None = None,
                 settings: PDQPSettings | None = None,
                 *, c: int = 16,
                 compiled: CompiledProgram | None = None,
                 backend: str = "compiled",
                 verify: bool = True,
                 fault_injector=None,
                 recovery=None,
                 deadline_seconds: float | None = None,
                 scaling=None):
        self.problem = problem
        self.settings = settings if settings is not None else PDQPSettings()
        self._precomputed_scaling = scaling
        self._ruiz_plan = None
        if customization is None:
            customization = customize_problem(problem, c)
        self.customization = customization
        self.c = customization.c
        self.backend = validate_backend(backend)
        self.fault_injector = fault_injector
        self.recovery = recovery
        self.deadline_seconds = (float(deadline_seconds)
                                 if deadline_seconds is not None else None)
        #: Static verification on/off — covers both the pre-execution
        #: program passes and the compiled backend's codegen guard.
        self._verify = bool(verify)

        self._host_setup()
        self._build_machine()
        if compiled is None:
            compiled = compile_pdqp_for_customization(
                customization, self.work.n, self.work.m,
                max_iter=self.settings.max_iter)
        else:
            self._check_compiled(compiled)
        self.compiled: CompiledProgram = compiled
        if verify:
            self._verify_compiled(compiled)
        self._build_programs()
        self._download()

    # ------------------------------------------------------------------
    def _host_setup(self) -> None:
        """Scale the problem and derive step sizes like the reference."""
        scaling = self._precomputed_scaling
        if scaling is None:
            # Pattern-only plan, cached across numeric refreshes of the
            # bound structure (see RSQPAccelerator._host_setup).
            if self._ruiz_plan is None:
                self._ruiz_plan = RuizPlan.for_problem(self.problem)
            scaling = ruiz_equilibrate(self.problem, self.settings.scaling,
                                       plan=self._ruiz_plan)
        helper = PDQPSolver(self.problem, self.settings, scaling=scaling)
        self.scaling = helper.scaling
        self.work = helper.work
        self._work_at = helper.at
        self.norm_a = helper.norm_a
        self.lam_p = helper.lam_p
        self.omega = helper.omega
        self.tau = helper.tau
        self.sigma = helper.sigma
        self.restarts = 0
        self.omega_updates = 0

    def _build_machine(self) -> None:
        customization = self.customization
        streams = {"P": self.work.P, "A": self.work.A, "At": self._work_at}
        self.machine = Machine(self.c, {
            name: MatrixResource(
                name=name, matrix=streams[name],
                spmv_cycles=customization.matrices[name].spmv_cycles,
                cvb_depth=customization.matrices[name].duplication_cycles)
            for name in ("P", "A", "At")})
        self.machine.injector = self.fault_injector
        self._executor = (CompiledExecutor(self.machine,
                                           verify=self._verify)
                          if self.backend == "compiled" else None)

    def _run_program(self, program) -> ExecutionStats:
        if self._executor is not None:
            return self._executor.run(program)
        return self.machine.run(program)

    def _build_programs(self) -> None:
        """Pre-build every Program object a solve dispatches.

        Constructed once per accelerator (not per ``run``) so the
        compiled backend's per-program caches — bound chunk functions
        and the whole-loop fused body — persist across repeated solves
        on the same bound structure, which is what makes session
        re-solves pay zero re-lowering cost.
        """
        from .isa import DataTransfer, Loop, Program

        sections = self.compiled._sections
        self._store_program = Program(
            [DataTransfer("store", name) for name in ("x", "y")])
        self._anchor_program = Program(
            [DataTransfer("load", name) for name in ("x0", "y0")])
        self._reload_program = Program(
            [DataTransfer("load", name) for name in ("q", "l", "u")])
        self._prologue_program = Program(list(sections["prologue"]))
        self._epilogue_program = Program(list(sections["epilogue"]))
        self._loop_body = sections["pdhg_body"]
        self._segment_programs: dict = {}

    def _segment_program(self, segment: int):
        from .isa import Loop, Program
        program = self._segment_programs.get(segment)
        if program is None:
            program = Program([Loop(body=self._loop_body,
                                    max_iter=segment, name=PDHG_LOOP)])
            self._segment_programs[segment] = program
        return program

    def _check_same_structure(self, problem: QProblem) -> None:
        """Reject numeric updates that change the bound structure."""
        old = self.problem
        if problem.n != old.n or problem.m != old.m:
            raise ValueError(
                f"session is bound to n={old.n}, m={old.m}; update has "
                f"n={problem.n}, m={problem.m}")
        for name in ("P", "A"):
            new_mat = getattr(problem, name)
            old_mat = getattr(old, name)
            if (new_mat.indptr.shape != old_mat.indptr.shape
                    or new_mat.indices.shape != old_mat.indices.shape
                    or not np.array_equal(new_mat.indptr, old_mat.indptr)
                    or not np.array_equal(new_mat.indices,
                                          old_mat.indices)):
                raise ValueError(
                    f"sparsity pattern of {name} changed; a bound "
                    "accelerator only accepts same-structure numeric "
                    "updates")

    def refresh_numeric(self, problem: QProblem, *,
                        carry_omega: bool = False) -> None:
        """Rebind the card to new numeric data on the same structure.

        Re-runs host setup (Ruiz scaling and step sizes depend on the
        values), rewrites the resident matrix values in place and
        re-downloads the vector data — no re-customization, no
        re-compilation, no re-verification, because none of those
        depend on numeric values. With ``carry_omega`` the adapted
        primal weight survives the refresh (step sizes are re-derived
        from it against the new operator norms), which is the
        warm-start-friendly default for streaming re-solves.
        """
        self._check_same_structure(problem)
        prev_omega = self.omega
        self.problem = problem
        self._precomputed_scaling = None
        self._host_setup()
        if carry_omega:
            self.omega = prev_omega
            self.tau, self.sigma = pdqp_step_sizes(
                self.omega, self.norm_a, self.lam_p,
                self.settings.tau_scale)
        machine = self.machine
        machine.matrices["P"].update_values(self.work.P.data)
        machine.matrices["A"].update_values(self.work.A.data)
        machine.matrices["At"].update_values(self._work_at.data)
        self._download()

    def _check_compiled(self, compiled: CompiledProgram) -> None:
        """Validate an injected program against this problem + width."""
        if compiled.algorithm != "pdqp":
            raise ValueError(
                f"compiled program implements {compiled.algorithm!r}, "
                "PDQPAccelerator needs a 'pdqp' program")
        ctx = compiled.context
        if ctx.c != self.c:
            raise ValueError(
                f"compiled program was costed for C={ctx.c}, "
                f"customization has C={self.c}")
        if (ctx.vector_length("x") != self.work.n
                or ctx.vector_length("y") != self.work.m):
            raise ValueError(
                f"compiled program is for n={ctx.vector_length('x')}, "
                f"m={ctx.vector_length('y')}; problem has "
                f"n={self.work.n}, m={self.work.m}")
        for name in ("P", "A", "At"):
            if ctx.spmv_cycles(name) != \
                    self.customization.matrices[name].spmv_cycles:
                raise ValueError(
                    f"compiled program's {name} SpMV cost disagrees with "
                    "the customization — was it built for this structure?")
            if ctx.cvb_depth(name) != \
                    self.customization.matrices[name].duplication_cycles:
                raise ValueError(
                    f"compiled program's {name} CVB depth disagrees with "
                    "the customization — VecDup would be mis-charged")

    def _verify_compiled(self, compiled: CompiledProgram) -> None:
        # Imported lazily: repro.verify imports this package.
        from ..verify import verify_compiled_program
        report = verify_compiled_program(compiled)
        report.raise_if_failed("accelerator program rejected")

    # ------------------------------------------------------------------
    def _step_scalars(self) -> None:
        """(Re)install the step-size scalar registers (free host ops)."""
        machine = self.machine
        machine.set_scalar("neg_tau", -self.tau)
        machine.set_scalar("sigma", self.sigma)
        machine.set_scalar("sigma_inv", 1.0 / self.sigma)
        machine.set_scalar("neg_sigma", -self.sigma)

    def _download(self) -> None:
        """Host -> HBM data movement and scalar register setup."""
        work = self.work
        machine = self.machine
        n, m = work.n, work.m
        machine.write_hbm("q", work.q)
        machine.write_hbm("l", np.nan_to_num(work.l, neginf=-1e30))
        machine.write_hbm("u", np.nan_to_num(work.u, posinf=1e30))
        machine.write_hbm("x", np.zeros(n))
        machine.write_hbm("y", np.zeros(m))
        machine.write_hbm("x0", np.zeros(n))
        machine.write_hbm("y0", np.zeros(m))

        s = self.settings
        self._step_scalars()
        machine.set_scalar("hk", 2.0)  # Halpern k + 2, k = 0
        machine.set_scalar("one", 1.0)
        machine.set_scalar("eps_rel", s.eps_rel)
        machine.set_scalar("eps_abs_m", s.eps_abs * np.sqrt(max(m, 1)))
        machine.set_scalar("eps_abs_n", s.eps_abs * np.sqrt(max(n, 1)))
        machine.set_scalar("nq", float(np.linalg.norm(work.q)))

    # ------------------------------------------------------------------
    def warm_start(self, x=None, y=None) -> None:
        """Provide initial iterates (unscaled); anchors follow them."""
        machine = self.machine
        if x is not None:
            x_s = self.scaling.scale_x(np.asarray(x, dtype=np.float64))
            machine.write_hbm("x", x_s)
            machine.write_hbm("x0", x_s.copy())
        if y is not None:
            y_s = self.scaling.scale_y(np.asarray(y, dtype=np.float64))
            machine.write_hbm("y", y_s)
            machine.write_hbm("y0", y_s.copy())

    def _host_restart(self) -> None:
        """Between-segment restart: re-anchor at the current iterate.

        The card stores ``x`` / ``y`` to HBM (charged), the host moves
        them into the anchor slots, the card reloads the anchors
        (charged) and the Halpern counter resets — then the next
        segment continues from the very same iterate with a fresh
        anchor, which is exactly the reference solver's restart.
        """
        machine = self.machine
        self._run_program(self._store_program)
        machine.write_hbm("x0", machine.read_hbm("x").copy())
        machine.write_hbm("y0", machine.read_hbm("y").copy())
        self._run_program(self._anchor_program)
        machine.set_scalar("hk", 2.0)
        self.restarts += 1
        if self.settings.omega_adaptive and self._rebalance_omega():
            self.omega_updates += 1

    def _rebalance_omega(self) -> bool:
        """Residual-balance the primal weight from device scalars."""
        scalars = self.machine.scalars
        estimate = rebalanced_omega(
            self.omega, scalars.get("rp", 0.0), scalars.get("rdual", 0.0),
            scalars.get("npz", 0.0), scalars.get("nd_all", 0.0))
        tol = self.settings.omega_tolerance
        if not (estimate > tol * self.omega or estimate < self.omega / tol):
            return False
        self.omega = estimate
        self.tau, self.sigma = pdqp_step_sizes(
            self.omega, self.norm_a, self.lam_p, self.settings.tau_scale)
        self._step_scalars()
        return True

    # -- fault detection and recovery ----------------------------------
    #: VB buffers carrying persistent PDHG state across iterations —
    #: the iterates, the Halpern anchors and the maintained products.
    _PDHG_STATE = ("x", "y", "x0", "y0", "px", "aty")

    def _snapshot_state(self) -> tuple:
        machine = self.machine
        vb = {name: machine.vb[name].copy()
              for name in self._PDHG_STATE if name in machine.vb}
        return vb, dict(machine.scalars)

    def _state_corrupted(self, prev_worst: float, recovery) -> bool:
        """Non-finite iterates / residuals, or residual divergence."""
        machine = self.machine
        for name in self._PDHG_STATE:
            buf = machine.vb.get(name)
            if buf is not None and not np.all(np.isfinite(buf)):
                return True
        worst = machine.scalars.get("worst")
        if worst is not None and not np.isfinite(worst):
            return True
        if (worst is not None and np.isfinite(prev_worst)
                and worst > recovery.divergence_factor
                * max(prev_worst, 1.0)):
            return True
        return False

    def _rollback(self, checkpoint: tuple) -> None:
        """Restore the last good segment boundary (re-download data)."""
        machine = self.machine
        self._download()
        self._run_program(self._reload_program)
        vb_snap, scalar_snap = checkpoint
        for name, arr in vb_snap.items():
            buf = machine.vb.get(name)
            if isinstance(buf, np.ndarray) and buf.shape == arr.shape:
                np.copyto(buf, arr)  # keep compiled stable buffers
            else:
                machine.vb[name] = arr.copy()
        machine.scalars.clear()
        machine.scalars.update(scalar_snap)

    # ------------------------------------------------------------------
    def run(self) -> RSQPResult:
        """Execute the solve: prologue, PDHG segments with host-driven
        restarts, epilogue. Returns the unscaled result.

        The segment length is ``settings.restart_interval`` — every
        segment boundary is a restart (the fixed-frequency flavor),
        with the optional adaptive primal-weight rebalance on top.
        Fault guard and deadline semantics match the ADMM wrapper.
        """
        interval = max(self.settings.restart_interval, 1)
        machine = self.machine
        self.restarts = 0
        self.omega_updates = 0
        guard = (self.fault_injector is not None
                 or self.recovery is not None)
        recovery = self.recovery
        if guard and recovery is None:
            from ..faults.policy import RecoveryPolicy
            recovery = RecoveryPolicy()
        deadline_at = (time.perf_counter() + self.deadline_seconds
                       if self.deadline_seconds is not None else None)
        rollbacks = 0

        def _events():
            return (tuple(self.fault_injector.events)
                    if self.fault_injector is not None else ())

        self._run_program(self._prologue_program)
        checkpoint = self._snapshot_state() if guard else None
        prev_worst = np.inf
        remaining = self.settings.max_iter
        converged = False
        while remaining > 0:
            if (deadline_at is not None
                    and time.perf_counter() > deadline_at):
                raise DeadlineExceededError(
                    f"solve overran its {self.deadline_seconds:.3g}s "
                    f"deadline with {remaining} iterations to go")
            segment = min(interval, remaining)
            before = machine.stats.loop_iterations.get(PDHG_LOOP, 0)
            self._run_program(self._segment_program(segment))
            executed = machine.stats.loop_iterations.get(PDHG_LOOP,
                                                         0) - before
            if guard and self._state_corrupted(prev_worst, recovery):
                if rollbacks >= recovery.max_rollbacks:
                    raise FaultDetectedError(
                        f"PDHG state corrupted after "
                        f"{rollbacks} rollbacks", events=_events())
                rollbacks += 1
                self._rollback(checkpoint)
                continue  # re-run the segment; budget stays
            remaining -= executed
            if machine.scalars.get("worst", np.inf) < 1.0:
                converged = True
                break
            if executed < segment:  # defensive: loop exited unconverged
                break
            if remaining > 0:
                self._host_restart()
            if guard:
                checkpoint = self._snapshot_state()
                worst = machine.scalars.get("worst")
                if worst is not None and np.isfinite(worst):
                    prev_worst = worst
        self._run_program(self._epilogue_program)

        stats = machine.stats
        x = self.scaling.unscale_x(machine.read_hbm("x"))
        y = self.scaling.unscale_y(machine.read_hbm("y"))
        z = self.scaling.unscale_z(machine.read_hbm("z"))
        iters = stats.loop_iterations.get(PDHG_LOOP, 0)
        arch = self.customization.architecture
        return RSQPResult(
            x=x, y=y, z=z, converged=converged,
            admm_iterations=iters, pcg_iterations=0,
            total_cycles=stats.total_cycles,
            fmax_mhz=fmax_mhz(arch),
            power_watts=fpga_power_watts(arch),
            stats=stats, rollbacks=rollbacks,
            fault_events=_events(),
            algorithm="pdqp", restarts=self.restarts)

    def estimate_cycles(self, iterations: int, restarts: int = 0) -> int:
        """Analytic cycle count (exact; see :mod:`repro.hw.compiler`).

        ``restarts`` charges the store/load anchor round-trip each
        host-driven restart costs.
        """
        refresh = 0
        if restarts:
            from .isa import DataTransfer
            ctx = self.compiled.context
            refresh = restarts * (
                sum(DataTransfer("store", name).cycles(ctx)
                    for name in ("x", "y"))
                + sum(DataTransfer("load", name).cycles(ctx)
                      for name in ("x0", "y0")))
        return (self.compiled.estimate_cycles_for({PDHG_LOOP: iterations})
                + refresh)


def compile_pdqp_for_customization(customization: ProblemCustomization,
                                   n: int, m: int, *,
                                   max_iter: int) -> CompiledProgram:
    """Compile the PDQP program and attach a customization's cycle costs.

    Depends only on the problem structure (like the ADMM flavor), so
    serving can cache and share it across structurally identical
    problems.
    """
    compiled = compile_pdqp_program(n, m, max_iter=max_iter)
    attach_costs(compiled, customization.c,
                 spmv={name: customization.matrices[name].spmv_cycles
                       for name in ("P", "A", "At")},
                 depths={name: customization.matrices[name].duplication_cycles
                         for name in ("P", "A", "At")},
                 n=n, m=m)
    return compiled
