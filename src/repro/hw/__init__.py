"""The RSQP hardware model: ISA, cycle-accurate machine, compiler,
frequency/resource/power models, and the host-side accelerator wrapper."""

from .accelerator import (RSQPAccelerator, RSQPResult,
                          compile_for_customization)
from .asm import (ROM_WORD_BYTES, decode_program, disassemble,
                  encode_program, rom_words)
from .batched import BatchExecutor, BatchMachine, BatchMatrixResource
from .compiled import BACKENDS, CompiledExecutor, validate_backend
from .compiler import (ADMM_LOOP, PCG_LOOP, PDHG_LOOP, CompiledProgram,
                       attach_costs, compile_osqp_program,
                       compile_pdqp_program)
from .frequency import FMAX_CAP_MHZ, fmax_mhz
from .isa import (PIPELINE_OVERHEAD, Control, DataTransfer, Instruction,
                  Loop, Program, ScalarOp, ScalarOpKind, SpMV, VecDup,
                  VectorOp, VectorOpKind)
from .machine import (CYCLE_CLASSES, ExecutionStats, Machine,
                      MatrixResource)
from .memory import (HBMConfig, HBMPlan, MatrixPlacement, U50_HBM,
                     plan_hbm_layout)
from .pdqp import PDQPAccelerator, compile_pdqp_for_customization
from .power import (FPGA_DYNAMIC_MAX_W, FPGA_STATIC_W, fpga_power_watts)
from .spmv_engine import SpMVTrace, simulate_spmv
from .resources import (U50_LIMITS, ResourceEstimate, estimate_resources,
                        fits_device)

__all__ = [
    "RSQPAccelerator",
    "compile_for_customization",
    "disassemble",
    "rom_words",
    "encode_program",
    "decode_program",
    "ROM_WORD_BYTES",
    "HBMConfig",
    "HBMPlan",
    "MatrixPlacement",
    "U50_HBM",
    "plan_hbm_layout",
    "SpMVTrace",
    "simulate_spmv",
    "RSQPResult",
    "PDQPAccelerator",
    "compile_pdqp_for_customization",
    "CompiledProgram",
    "compile_osqp_program",
    "compile_pdqp_program",
    "attach_costs",
    "ADMM_LOOP",
    "PCG_LOOP",
    "PDHG_LOOP",
    "fmax_mhz",
    "FMAX_CAP_MHZ",
    "Machine",
    "MatrixResource",
    "ExecutionStats",
    "CYCLE_CLASSES",
    "BACKENDS",
    "CompiledExecutor",
    "validate_backend",
    "BatchExecutor",
    "BatchMachine",
    "BatchMatrixResource",
    "Instruction",
    "ScalarOp",
    "ScalarOpKind",
    "VectorOp",
    "VectorOpKind",
    "DataTransfer",
    "VecDup",
    "SpMV",
    "Control",
    "Loop",
    "Program",
    "PIPELINE_OVERHEAD",
    "estimate_resources",
    "ResourceEstimate",
    "fits_device",
    "U50_LIMITS",
    "fpga_power_watts",
    "FPGA_STATIC_W",
    "FPGA_DYNAMIC_MAX_W",
]
