"""Host-side wrapper: run OSQP end-to-end on the simulated RSQP card.

Mirrors the paper's deployment: the CPU host performs setup (Ruiz
scaling, rho selection, preconditioner computation, data download) and
the FPGA executes the full ADMM + PCG loop from its instruction ROM.
The wrapper returns the *unscaled* solution plus the cycle statistics
that drive the performance model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..customization import (ProblemCustomization, baseline_customization,
                             customize_problem)
from ..exceptions import DeadlineExceededError, FaultDetectedError
from ..qp import QProblem, RuizPlan, ruiz_equilibrate
from ..solver import OSQPSettings
from ..solver.osqp import OSQPSolver
from .compiled import CompiledExecutor, validate_backend
from .compiler import (ADMM_LOOP, PCG_LOOP, CompiledProgram, attach_costs,
                       compile_osqp_program)
from .frequency import fmax_mhz
from .machine import ExecutionStats, Machine, MatrixResource
from .power import fpga_power_watts

__all__ = ["RSQPResult", "RSQPAccelerator", "compile_for_customization",
           "adaptive_rho_estimate", "rho_vector_for",
           "jacobi_preconditioner"]


def adaptive_rho_estimate(rho: float, rp: float, rdual: float,
                          npz: float, nd_all: float) -> float:
    """OSQP's residual-balanced step-size estimate (exact float path).

    Shared by the solo accelerator's host update and the batched
    runner's per-lane updates, so both apply bit-identical arithmetic
    to the residual scalars read off the device.
    """
    pri_norm = max(npz, 1e-15)
    dua_norm = max(nd_all, 1e-15)
    estimate = rho * np.sqrt((rp / pri_norm)
                             / max(rdual / dua_norm, 1e-15))
    return float(np.clip(estimate, 1e-6, 1e6))


def rho_vector_for(work, estimate: float) -> np.ndarray:
    """Constraint-wise rho: stiffened equalities, loose rows relaxed."""
    rho_vec = np.full(work.m, estimate)
    eq = work.equality_mask()
    rho_vec[eq] = np.clip(estimate * 1e3, 1e-6, 1e6)
    loose = np.isneginf(work.l) & np.isposinf(work.u)
    rho_vec[loose] = 1e-6
    return rho_vec


def jacobi_preconditioner(work, sigma: float,
                          rho_vec: np.ndarray) -> np.ndarray:
    """``1 / diag(K)`` for ``K = P + sigma I + A' diag(rho) A``."""
    weighted = work.A.scale_rows(np.sqrt(rho_vec))
    diag_k = work.P.diagonal() + sigma + weighted.column_sq_sums()
    return 1.0 / diag_k


@dataclass
class RSQPResult:
    """Solution and performance data from one accelerator run.

    ``admm_iterations`` counts the *outer* loop trips whatever the
    algorithm (PDHG iterations for ``algorithm="pdqp"``); the uniform
    ``status`` / ``iterations`` / ``termination_reason`` properties
    match :class:`repro.solver.results.OSQPResult`, so callers can
    treat reference and accelerator results interchangeably.
    """

    x: np.ndarray
    y: np.ndarray
    z: np.ndarray
    converged: bool
    admm_iterations: int
    pcg_iterations: int
    total_cycles: int
    fmax_mhz: float
    power_watts: float
    stats: ExecutionStats
    #: Segment rollbacks the run performed (checkpoint recovery).
    rollbacks: int = 0
    #: Fault-injection event records from the run's injector, if any.
    fault_events: tuple = field(default_factory=tuple)
    #: Which algorithm produced this result ("admm" or "pdqp").
    algorithm: str = "admm"
    #: Host-driven restarts (PDQP) — 0 for the ADMM path.
    restarts: int = 0

    @property
    def solve_seconds(self) -> float:
        """Wall time at the modeled clock."""
        return self.total_cycles / (self.fmax_mhz * 1e6)

    @property
    def energy_joules(self) -> float:
        return self.solve_seconds * self.power_watts

    # -- uniform result surface (matches OSQPResult) --------------------
    @property
    def status(self) -> "SolverStatus":
        """:class:`~repro.solver.results.SolverStatus` equivalent."""
        from ..solver.results import SolverStatus
        return (SolverStatus.SOLVED if self.converged
                else SolverStatus.MAX_ITER_REACHED)

    @property
    def iterations(self) -> int:
        """Outer-loop iterations, algorithm-agnostic."""
        return self.admm_iterations

    @property
    def termination_reason(self) -> str:
        """One of :data:`repro.solver.results.TERMINATION_REASONS`."""
        return self.status.reason


class RSQPAccelerator:
    """Simulated RSQP card solving one QP structure.

    Parameters
    ----------
    problem:
        The QP to solve (unscaled; the host scales it during setup).
    customization:
        A :class:`ProblemCustomization`; pass the output of
        :func:`repro.customization.customize_problem` for the customized
        design or :func:`repro.customization.baseline_customization` for
        the reference architecture. Defaults to the customized design at
        ``c = 16``.
    settings:
        Solver settings; the accelerator honors ``rho``, ``sigma``,
        ``alpha``, ``eps_abs``, ``eps_rel``, ``scaling`` and
        ``max_iter``. Adaptive rho runs host-side in OSQP; the
        instruction stream keeps ``rho`` fixed (the paper notes PCG
        makes rho updates cheap — a host re-download — but the ROM
        program itself is static).
    compiled:
        Optional pre-compiled program with costs already attached (a
        cached artifact from :mod:`repro.serving`). Must have been
        compiled for the same dimensions, width and ``max_pcg_iter``;
        a mismatch raises :class:`ValueError`. When given, the
        compile + cost-attachment stage of construction is skipped —
        the warm path that the serving layer's architecture cache
        amortizes across structurally identical problems.
    backend:
        ``"compiled"`` (default) lowers programs to fused numpy
        closures with bulk cycle accounting (see
        :mod:`repro.hw.compiled`); ``"interpret"`` executes through
        the per-instruction interpreter. Both produce bit-identical
        solutions and identical cycle statistics; the interpreter is
        kept as the differential-testing oracle.
    verify:
        When True (default), statically verify the program against
        the host download contract before any execution (see
        :mod:`repro.verify`) and raise
        :class:`~repro.exceptions.VerificationError` carrying the
        diagnostics instead of failing mid-solve. The check walks the
        instruction stream once; disable only in tight benchmark
        loops that construct accelerators per iteration.
    """

    def __init__(self, problem: QProblem,
                 customization: ProblemCustomization | None = None,
                 settings: OSQPSettings | None = None,
                 *, c: int = 16, pcg_eps: float = 1e-7,
                 max_pcg_iter: int = 500,
                 compiled: CompiledProgram | None = None,
                 backend: str = "compiled",
                 verify: bool = True,
                 fault_injector=None,
                 recovery=None,
                 deadline_seconds: float | None = None,
                 scaling=None):
        self.problem = problem
        self.settings = settings if settings is not None else OSQPSettings()
        self._precomputed_scaling = scaling
        self._ruiz_plan = None
        if customization is None:
            customization = customize_problem(problem, c)
        self.customization = customization
        self.c = customization.c
        self.pcg_eps = float(pcg_eps)
        self.max_pcg_iter = int(max_pcg_iter)
        self.backend = validate_backend(backend)
        #: Optional FaultInjector armed on the machine before any
        #: execution; arms detection + checkpoint/rollback too.
        self.fault_injector = fault_injector
        #: RecoveryPolicy; None with no injector disables the per-
        #: segment corruption guard entirely (the fault-free path does
        #: not pay for checkpoints it will never restore).
        self.recovery = recovery
        #: Cooperative per-solve deadline, checked between segments.
        self.deadline_seconds = (float(deadline_seconds)
                                 if deadline_seconds is not None else None)
        #: Static verification on/off — covers both the pre-execution
        #: program passes and the compiled backend's codegen guard.
        self._verify = bool(verify)

        self._host_setup()
        self._build_machine()
        if compiled is None:
            compiled = compile_for_customization(
                customization, self.work.n, self.work.m,
                max_admm_iter=self.settings.max_iter,
                max_pcg_iter=self.max_pcg_iter)
        else:
            self._check_compiled(compiled)
        self.compiled: CompiledProgram = compiled
        if verify:
            self._verify_compiled(compiled)
        self._build_programs()
        self._download()

    # ------------------------------------------------------------------
    def _host_setup(self) -> None:
        """Scale the problem and pick rho exactly like the software solver."""
        scaling = self._precomputed_scaling
        if scaling is None:
            # The equilibration plan depends only on the bound sparsity
            # pattern: compute it once, reuse it on every numeric
            # refresh of this structure.
            if self._ruiz_plan is None:
                self._ruiz_plan = RuizPlan.for_problem(self.problem)
            scaling = ruiz_equilibrate(self.problem, self.settings.scaling,
                                       plan=self._ruiz_plan)
        helper = OSQPSolver(self.problem, self.settings, scaling=scaling)
        self.scaling = helper.scaling
        self.work = helper.work
        self.rho = helper.rho
        self.rho_vec = helper.rho_vec
        self.rho_updates = 0
        self._work_at = helper.at

    def _build_machine(self) -> None:
        """Bind the (numeric) scaled matrices to the simulated card."""
        customization = self.customization
        streams = {"P": self.work.P, "A": self.work.A, "At": self._work_at}
        self.machine = Machine(self.c, {
            name: MatrixResource(
                name=name, matrix=streams[name],
                spmv_cycles=customization.matrices[name].spmv_cycles,
                cvb_depth=customization.matrices[name].duplication_cycles)
            for name in ("P", "A", "At")})
        # Armed before the executor exists, so lowering sees the hook.
        self.machine.injector = self.fault_injector
        self._executor = (CompiledExecutor(self.machine,
                                           verify=self._verify)
                          if self.backend == "compiled" else None)

    def _run_program(self, program) -> ExecutionStats:
        """Execute through the selected backend (shared machine state)."""
        if self._executor is not None:
            return self._executor.run(program)
        return self.machine.run(program)

    def _build_programs(self) -> None:
        """Construct every host-issued Program once, at bind time.

        Stability matters beyond allocation: the compiled executor
        caches lowered blocks and whole-loop fusions by instruction-
        list identity, so stable Program/Loop objects let every
        segment of every re-solve hit the same bound nodes (and keep
        the executor's cache bounded across a long-lived session).
        """
        from .isa import DataTransfer, Loop, Program

        sections = self.compiled._sections
        self._refresh_program = Program(
            [DataTransfer("load", name)
             for name in ("rho", "rho_inv", "minv")])
        self._reload_program = Program(
            [DataTransfer("load", name)
             for name in ("q", "l", "u", "rho", "rho_inv", "minv")])
        self._prologue_program = Program(list(sections["prologue"]))
        self._epilogue_program = Program(list(sections["epilogue"]))
        self._loop_body = sections["admm_body"]
        self._loop_name = ADMM_LOOP
        self._segment_programs: dict = {}

    def _segment_program(self, segment: int):
        """The Program wrapping the iteration body at this trip count."""
        from .isa import Loop, Program

        program = self._segment_programs.get(segment)
        if program is None:
            program = Program([Loop(body=self._loop_body,
                                    max_iter=segment,
                                    name=self._loop_name)])
            self._segment_programs[segment] = program
        return program

    # ------------------------------------------------------------------
    def _check_same_structure(self, problem: QProblem) -> None:
        """Reject numeric updates that change the bound structure."""
        old = self.problem
        if problem.n != old.n or problem.m != old.m:
            raise ValueError(
                f"session is bound to n={old.n}, m={old.m}; update has "
                f"n={problem.n}, m={problem.m}")
        for name in ("P", "A"):
            new_mat = getattr(problem, name)
            old_mat = getattr(old, name)
            if (new_mat.indptr.shape != old_mat.indptr.shape
                    or new_mat.indices.shape != old_mat.indices.shape
                    or not np.array_equal(new_mat.indptr, old_mat.indptr)
                    or not np.array_equal(new_mat.indices,
                                          old_mat.indices)):
                raise ValueError(
                    f"sparsity pattern of {name} changed; a bound "
                    "accelerator only accepts same-structure numeric "
                    "updates")

    def refresh_numeric(self, problem: QProblem, *,
                        carry_rho: bool = False) -> None:
        """Install new numeric data for the *same* structure, in place.

        Re-runs the host setup (Ruiz equilibration depends on ``q``, so
        the scaled matrix values change even for a pure-vector update),
        rewrites the machine's matrix value banks in place — pattern,
        schedules, compiled programs, verification and every bound
        C pointer table stay untouched — and re-downloads the HBM
        vectors and scalar registers. After this call the machine is
        bit-identical to a freshly constructed accelerator for
        ``problem``, except ``carry_rho=True`` keeps the adapted step
        size from previous solves instead of the cold-start estimate.
        """
        self._check_same_structure(problem)
        prev_rho = self.rho
        self.problem = problem
        self._precomputed_scaling = None
        self._host_setup()
        if carry_rho:
            self.rho = prev_rho
            self.rho_vec = rho_vector_for(self.work, prev_rho)
        machine = self.machine
        machine.matrices["P"].update_values(self.work.P.data)
        machine.matrices["A"].update_values(self.work.A.data)
        machine.matrices["At"].update_values(self._work_at.data)
        self._download()

    def _check_compiled(self, compiled: CompiledProgram) -> None:
        """Validate an injected program against this problem + width."""
        ctx = compiled.context
        if ctx.c != self.c:
            raise ValueError(
                f"compiled program was costed for C={ctx.c}, "
                f"customization has C={self.c}")
        if (ctx.vector_length("x") != self.work.n
                or ctx.vector_length("z") != self.work.m):
            raise ValueError(
                f"compiled program is for n={ctx.vector_length('x')}, "
                f"m={ctx.vector_length('z')}; problem has "
                f"n={self.work.n}, m={self.work.m}")
        for name in ("P", "A", "At"):
            if ctx.spmv_cycles(name) != \
                    self.customization.matrices[name].spmv_cycles:
                raise ValueError(
                    f"compiled program's {name} SpMV cost disagrees with "
                    "the customization — was it built for this structure?")
            if ctx.cvb_depth(name) != \
                    self.customization.matrices[name].duplication_cycles:
                raise ValueError(
                    f"compiled program's {name} CVB depth disagrees with "
                    "the customization — VecDup would be mis-charged")

    def _verify_compiled(self, compiled: CompiledProgram) -> None:
        """Pre-execution static verification (def-before-use, hazards,
        cost bookkeeping); raises ``VerificationError`` on rejection."""
        # Imported lazily: repro.verify imports this package.
        from ..verify import verify_compiled_program
        report = verify_compiled_program(compiled)
        report.raise_if_failed("accelerator program rejected")

    # ------------------------------------------------------------------
    def _download(self) -> None:
        """Host -> HBM data movement and scalar register setup."""
        work = self.work
        machine = self.machine
        n, m = work.n, work.m
        machine.write_hbm("q", work.q)
        machine.write_hbm("l", np.nan_to_num(work.l, neginf=-1e30))
        machine.write_hbm("u", np.nan_to_num(work.u, posinf=1e30))
        machine.write_hbm("rho", self.rho_vec)
        machine.write_hbm("rho_inv", 1.0 / self.rho_vec)
        # Jacobi preconditioner of K = P + sigma I + A' diag(rho) A.
        machine.write_hbm("minv", jacobi_preconditioner(
            work, self.settings.sigma, self.rho_vec))
        machine.write_hbm("x", np.zeros(n))
        machine.write_hbm("z", np.zeros(m))
        machine.write_hbm("y", np.zeros(m))

        s = self.settings
        machine.set_scalar("sigma", s.sigma)
        machine.set_scalar("alpha_relax", s.alpha)
        machine.set_scalar("one_m_alpha", 1.0 - s.alpha)
        machine.set_scalar("eps_rel", s.eps_rel)
        machine.set_scalar("eps_abs_m", s.eps_abs * np.sqrt(max(m, 1)))
        machine.set_scalar("eps_abs_n", s.eps_abs * np.sqrt(max(n, 1)))
        machine.set_scalar("nq", float(np.linalg.norm(work.q)))
        machine.set_scalar("one", 1.0)
        machine.set_scalar("tiny", 1e-30)
        machine.set_scalar("pcg_eps2", self.pcg_eps ** 2)

    # ------------------------------------------------------------------
    def warm_start(self, x=None, y=None) -> None:
        """Provide initial iterates (unscaled), as for repeated solves.

        The backtesting/MPC amortization workloads solve long sequences
        of same-structure problems; warm-starting from the previous
        solution is how the host exploits that on the card.
        """
        machine = self.machine
        if x is not None:
            x_s = self.scaling.scale_x(np.asarray(x, dtype=np.float64))
            machine.write_hbm("x", x_s)
            machine.write_hbm("z", self.work.A.matvec(x_s))
        if y is not None:
            machine.write_hbm("y", self.scaling.scale_y(
                np.asarray(y, dtype=np.float64)))

    def _update_rho_from_device(self) -> bool:
        """Host-side adaptive rho (OSQP's rule, residuals read off-chip).

        The paper motivates PCG precisely because rho updates avoid the
        LDL^T refactorization: here the host recomputes the rho vectors
        and the Jacobi preconditioner and re-downloads them — the reload
        is charged to the accelerator as data transfers.
        """
        scalars = self.machine.scalars
        estimate = adaptive_rho_estimate(
            self.rho, scalars.get("rp", 0.0), scalars.get("rdual", 0.0),
            scalars.get("npz", 0.0), scalars.get("nd_all", 0.0))
        tol = self.settings.adaptive_rho_tolerance
        if not (estimate > tol * self.rho or estimate < self.rho / tol):
            return False
        self.rho = estimate
        self.rho_vec = rho_vector_for(self.work, estimate)
        machine = self.machine
        machine.write_hbm("rho", self.rho_vec)
        machine.write_hbm("rho_inv", 1.0 / self.rho_vec)
        machine.write_hbm("minv", jacobi_preconditioner(
            self.work, self.settings.sigma, self.rho_vec))
        # The accelerator reloads the three vectors (charged cycles).
        self._run_program(self._refresh_program)
        return True

    # -- fault detection and recovery ----------------------------------
    #: VB buffers carrying persistent ADMM state across iterations —
    #: everything else the ADMM body re-derives from these + HBM.
    _ADMM_STATE = ("x", "z", "y", "xt")

    def _snapshot_state(self) -> tuple:
        """Checkpoint of the cross-segment ADMM state (iterates +
        scalar registers), taken at segment boundaries."""
        machine = self.machine
        vb = {name: machine.vb[name].copy()
              for name in self._ADMM_STATE if name in machine.vb}
        return vb, dict(machine.scalars)

    def _state_corrupted(self, prev_worst: float, recovery) -> bool:
        """Non-finite iterates / residuals, or residual divergence."""
        machine = self.machine
        for name in self._ADMM_STATE:
            buf = machine.vb.get(name)
            if buf is not None and not np.all(np.isfinite(buf)):
                return True
        worst = machine.scalars.get("worst")
        if worst is not None and not np.isfinite(worst):
            return True
        if (worst is not None and np.isfinite(prev_worst)
                and worst > recovery.divergence_factor
                * max(prev_worst, 1.0)):
            return True
        return False

    def _rollback(self, checkpoint: tuple) -> None:
        """Restore the last good segment boundary.

        Heals possible problem-data corruption too: the host re-
        downloads the pristine HBM vectors and the accelerator reloads
        its on-chip copies (charged as data transfers — the reload is
        the rollback's bounded cost, on top of re-running one segment).
        """
        machine = self.machine
        self._download()
        self._run_program(self._reload_program)
        vb_snap, scalar_snap = checkpoint
        for name, arr in vb_snap.items():
            buf = machine.vb.get(name)
            if isinstance(buf, np.ndarray) and buf.shape == arr.shape:
                np.copyto(buf, arr)  # keep compiled stable buffers
            else:
                machine.vb[name] = arr.copy()
        machine.scalars.clear()
        machine.scalars.update(scalar_snap)

    def run(self) -> RSQPResult:
        """Execute the solve: prologue, ADMM segments with host-driven
        rho adaptation, epilogue. Returns the unscaled result.

        With a fault injector (or an explicit recovery policy) armed,
        each segment boundary checks the persistent ADMM state for
        non-finite values and residual divergence; a corrupted segment
        is rolled back to the last good checkpoint and re-run, at most
        ``recovery.max_rollbacks`` times, after which the run raises
        :class:`~repro.exceptions.FaultDetectedError`. A configured
        deadline is checked cooperatively between segments and raises
        :class:`~repro.exceptions.DeadlineExceededError`.
        """
        interval = max(self.settings.adaptive_rho_interval, 1)
        machine = self.machine
        self.rho_updates = 0
        guard = (self.fault_injector is not None
                 or self.recovery is not None)
        recovery = self.recovery
        if guard and recovery is None:
            from ..faults.policy import RecoveryPolicy
            recovery = RecoveryPolicy()
        deadline_at = (time.perf_counter() + self.deadline_seconds
                       if self.deadline_seconds is not None else None)
        rollbacks = 0

        def _events():
            return (tuple(self.fault_injector.events)
                    if self.fault_injector is not None else ())

        self._run_program(self._prologue_program)
        checkpoint = self._snapshot_state() if guard else None
        prev_worst = np.inf
        remaining = self.settings.max_iter
        converged = False
        while remaining > 0:
            if (deadline_at is not None
                    and time.perf_counter() > deadline_at):
                raise DeadlineExceededError(
                    f"solve overran its {self.deadline_seconds:.3g}s "
                    f"deadline with {remaining} iterations to go")
            segment = min(interval, remaining)
            before = machine.stats.loop_iterations.get(ADMM_LOOP, 0)
            self._run_program(self._segment_program(segment))
            executed = machine.stats.loop_iterations.get(ADMM_LOOP,
                                                         0) - before
            if guard and self._state_corrupted(prev_worst, recovery):
                if rollbacks >= recovery.max_rollbacks:
                    raise FaultDetectedError(
                        f"ADMM state corrupted after "
                        f"{rollbacks} rollbacks", events=_events())
                rollbacks += 1
                self._rollback(checkpoint)
                continue  # re-run the segment; budget stays
            remaining -= executed
            if machine.scalars.get("worst", np.inf) < 1.0:
                converged = True
                break
            if executed < segment:  # defensive: loop exited unconverged
                break
            if self.settings.adaptive_rho and remaining > 0:
                if self._update_rho_from_device():
                    self.rho_updates += 1
            if guard:
                checkpoint = self._snapshot_state()
                worst = machine.scalars.get("worst")
                if worst is not None and np.isfinite(worst):
                    prev_worst = worst
        self._run_program(self._epilogue_program)

        stats = machine.stats
        x = self.scaling.unscale_x(machine.read_hbm("x"))
        y = self.scaling.unscale_y(machine.read_hbm("y"))
        z = self.scaling.unscale_z(machine.read_hbm("z"))
        admm_iters = stats.loop_iterations.get(ADMM_LOOP, 0)
        pcg_iters = stats.loop_iterations.get(PCG_LOOP, 0)
        arch = self.customization.architecture
        return RSQPResult(
            x=x, y=y, z=z, converged=converged,
            admm_iterations=admm_iters, pcg_iterations=pcg_iters,
            total_cycles=stats.total_cycles,
            fmax_mhz=fmax_mhz(arch),
            power_watts=fpga_power_watts(arch),
            stats=stats, rollbacks=rollbacks,
            fault_events=_events())

    def estimate_cycles(self, admm_iterations: int, pcg_iterations: int,
                        rho_updates: int = 0) -> int:
        """Analytic cycle count (exact; see :mod:`repro.hw.compiler`).

        ``rho_updates`` charges the three-vector reload each host-driven
        step-size change costs.
        """
        refresh = 0
        if rho_updates:
            from .isa import DataTransfer
            refresh = rho_updates * sum(
                DataTransfer("load", name).cycles(self.compiled.context)
                for name in ("rho", "rho_inv", "minv"))
        return (self.compiled.estimate_cycles(admm_iterations,
                                              pcg_iterations) + refresh)


def compile_for_customization(customization: ProblemCustomization,
                              n: int, m: int, *, max_admm_iter: int,
                              max_pcg_iter: int) -> CompiledProgram:
    """Compile the OSQP program and attach a customization's cycle costs.

    The result depends only on the problem *structure* (dimensions plus
    the customization's schedules), never on numeric data, so it can be
    cached and shared across every structurally identical problem — the
    contract :mod:`repro.serving` relies on. The program is read-only
    during execution (all run state lives in the :class:`Machine`), so
    one compiled artifact may serve concurrent accelerator instances.
    """
    compiled = compile_osqp_program(n, m, max_admm_iter=max_admm_iter,
                                    max_pcg_iter=max_pcg_iter)
    attach_costs(compiled, customization.c,
                 spmv={name: customization.matrices[name].spmv_cycles
                       for name in ("P", "A", "At")},
                 depths={name: customization.matrices[name].duplication_cycles
                         for name in ("P", "A", "At")},
                 n=n, m=m)
    return compiled
