"""RSQP instruction set (paper Table 1).

The processing architecture is controlled by a simple instruction unit;
instructions activate the vector engine, the SpMV engine, and the data
movement modules. Cycle costs follow §3.1: vector operations and data
transfers take ``ceil(length / C)`` cycles, vector duplication takes the
CVB depth, and SpMV takes the scheduled pack count — plus a fixed
pipeline fill/drain overhead per instruction.

Programs are structured: a list of instructions and :class:`Loop` nodes
(the paper's Control instruction exits the enclosing loop when a scalar
residual drops below a threshold).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["VectorOpKind", "ScalarOpKind", "BINARY_SCALAR_OPS",
           "Instruction", "ScalarOp", "VectorOp", "DataTransfer",
           "VecDup", "SpMV", "Control", "Loop", "Program",
           "PIPELINE_OVERHEAD"]

#: Fixed per-instruction cycles: dispatch plus datapath fill/drain.
PIPELINE_OVERHEAD = 8


class VectorOpKind(enum.Enum):
    """Vector-engine operations (Table 1 'Vector Operations')."""

    AXPBY = "axpby"          # dst = alpha * src1 + beta * src2
    EWMUL = "ewmul"          # dst = src1 * src2 elementwise
    CLIP = "clip"            # dst = min(max(src1, lo), hi)
    DOT = "dot"              # scalar dst = <src1, src2>
    COPY = "copy"            # dst = src1
    SCALE_ADD = "scale_add"  # dst = src1 + alpha * src2


class ScalarOpKind(enum.Enum):
    """Scalar-register arithmetic (Table 1 'Scalar Arithmetic')."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOV = "mov"
    MAX = "max"
    SQRT = "sqrt"


#: Scalar ops that take two operands; the rest (MOV, SQRT) take one.
BINARY_SCALAR_OPS = frozenset({ScalarOpKind.ADD, ScalarOpKind.SUB,
                               ScalarOpKind.MUL, ScalarOpKind.DIV,
                               ScalarOpKind.MAX})


class Instruction:
    """Marker base class for executable instructions."""

    __slots__ = ()


@dataclass(frozen=True)
class ScalarOp(Instruction):
    """``dst = op(src1, src2)`` on the scalar register file.

    Arity is validated at construction: binary ops (ADD/SUB/MUL/DIV/MAX)
    require ``src2``, unary ops (MOV/SQRT) forbid it. A malformed
    instruction therefore fails where it is built, not deep inside the
    machine's arithmetic.
    """

    op: ScalarOpKind
    dst: str
    src1: str
    src2: str | None = None
    #: Generating-site label (set by the compiler); excluded from
    #: equality so binary round-trips, which drop it, still compare ==.
    site: str | None = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        if self.op in BINARY_SCALAR_OPS:
            if self.src2 is None:
                raise ValueError(
                    f"scalar op {self.op.value!r} is binary and requires "
                    f"src2 (dst={self.dst!r}, src1={self.src1!r})")
        elif self.src2 is not None:
            raise ValueError(
                f"scalar op {self.op.value!r} is unary and takes no "
                f"src2 (dst={self.dst!r}, got src2={self.src2!r})")

    def cycles(self, machine) -> int:
        return 1


@dataclass(frozen=True)
class VectorOp(Instruction):
    """A vector-engine operation over named vector buffers.

    ``alpha``/``beta`` name scalar registers (or are float literals) for
    the AXPBY/SCALE_ADD forms.
    """

    op: VectorOpKind
    dst: str
    srcs: tuple
    alpha: object = None
    beta: object = None
    site: str | None = field(default=None, compare=False, repr=False)

    def cycles(self, machine) -> int:
        length = machine.vector_length(self.srcs[0] if self.srcs
                                       else self.dst)
        return PIPELINE_OVERHEAD + _ceil_div(length, machine.c)


@dataclass(frozen=True)
class DataTransfer(Instruction):
    """Move a vector between HBM and the on-chip vector buffers."""

    direction: str  # "load" (HBM -> VB) or "store" (VB -> HBM)
    name: str
    site: str | None = field(default=None, compare=False, repr=False)

    def cycles(self, machine) -> int:
        return PIPELINE_OVERHEAD + _ceil_div(
            machine.vector_length(self.name), machine.c)


@dataclass(frozen=True)
class VecDup(Instruction):
    """Duplicate a vector buffer into a CVB (Table 1 'Vector Duplication').

    Cycle cost is the compressed CVB depth — the quantity the E_c
    optimization minimizes.
    """

    src: str
    cvb: str  # CVB bank name, e.g. the matrix it feeds ("P", "A", "At")
    site: str | None = field(default=None, compare=False, repr=False)

    def cycles(self, machine) -> int:
        return PIPELINE_OVERHEAD + machine.cvb_depth(self.cvb)


@dataclass(frozen=True)
class SpMV(Instruction):
    """Multiply a streamed matrix with a CVB-resident vector.

    Cycle cost is the scheduled pack count ``length(w_sched)`` — the
    quantity the E_p optimization minimizes.
    """

    matrix: str
    src: str
    dst: str
    site: str | None = field(default=None, compare=False, repr=False)

    def cycles(self, machine) -> int:
        return PIPELINE_OVERHEAD + machine.spmv_cycles(self.matrix)


@dataclass(frozen=True)
class Control(Instruction):
    """Exit the enclosing loop when ``reg < threshold_reg`` (Table 1)."""

    reg: str
    threshold_reg: str
    site: str | None = field(default=None, compare=False, repr=False)

    def cycles(self, machine) -> int:
        return 1


@dataclass
class Loop:
    """A bounded loop; Control instructions inside may exit it early."""

    body: list
    max_iter: int
    name: str = "loop"


@dataclass
class Program:
    """A straight-line prologue + loop nest for the instruction ROM."""

    instructions: list = field(default_factory=list)

    def append(self, item) -> None:
        self.instructions.append(item)

    def flatten_count(self) -> int:
        """Static instruction count (loops counted once)."""
        def count(items):
            total = 0
            for item in items:
                if isinstance(item, Loop):
                    total += count(item.body)
                else:
                    total += 1
            return total
        return count(self.instructions)


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)
