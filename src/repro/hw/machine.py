"""Cycle-accurate functional simulator of the RSQP processing architecture.

The machine executes a :class:`~repro.hw.isa.Program` numerically (numpy
holds the buffer contents) while charging every instruction the cycle
cost of §3.1 / Table 1. Because it runs the real numbers, integration
tests can assert that the accelerator converges to the same solution as
the reference software solver while the cycle counter provides the
performance model.

State:

* **HBM** — named vectors (problem data, results) and the streamed
  matrices (with their schedules).
* **VB** — on-chip vector buffers, accessed sequentially at ``C``
  elements/cycle.
* **CVB** — compressed vector buffers, one bank group per streamed
  matrix, holding the vector an SpMV multiplies.
* **Scalar registers** — results of dot products and scalar arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ShapeError, SimulationError
from . import cjit
from .isa import (BINARY_SCALAR_OPS, Control, DataTransfer, Instruction,
                  Loop, Program, ScalarOp, ScalarOpKind, SpMV, VecDup,
                  VectorOp, VectorOpKind)

__all__ = ["MatrixResource", "Machine", "ExecutionStats", "CYCLE_CLASSES",
           "DENSE_SPMV_LIMIT", "dot"]


def dot(a: np.ndarray, b: np.ndarray) -> float:
    """The DOT kernel shared by the interpreter and the compiled backend.

    Routes through the engine library's sequential ``k_dot`` when the C
    JIT is available (the same loop shape chunk codegen embeds, so fused
    and unfused DOTs agree bit for bit), else ``np.dot``. Mismatched
    shapes fall through to ``np.dot`` to preserve its error.
    """
    engine = cjit.engine()
    if engine is None or a.shape != b.shape or a.ndim != 1:
        return float(np.dot(a, b))
    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    ffi = engine.ffi
    return engine.lib.k_dot(ffi.cast("double *", a.ctypes.data),
                            ffi.cast("double *", b.ctypes.data), a.size)


#: Matrices with at most this many dense elements get a densified BLAS
#: matvec kernel (2 MiB of float64). The choice of numerical kernel is a
#: functional-simulator implementation detail: cycle accounting always
#: uses the *scheduled* pack count, never the kernel's own cost.
DENSE_SPMV_LIMIT = 1 << 18


@dataclass
class MatrixResource:
    """A matrix streamed from HBM with its schedule and CVB layout.

    ``apply`` is the SpMV kernel shared by the interpreter and the
    compiled backend, which keeps the two backends bit-identical by
    construction. The kernel is chosen once at resource build, in
    priority order:

    1. the :mod:`repro.hw.cjit` C row-sum kernel (engine-faithful
       sequential per-row accumulation, O(nnz)), when a C toolchain is
       available;
    2. a densified BLAS gemv for small matrices
       (``m * n <= DENSE_SPMV_LIMIT``);
    3. the numpy CSR matvec.
    """

    name: str
    matrix: object        # CSRMatrix
    spmv_cycles: int      # scheduled pack count (nnz + Ep) / C
    cvb_depth: int        # compressed duplication depth
    dense: np.ndarray | None = field(default=None, repr=False,
                                     compare=False)

    def __post_init__(self):
        self.ckernel = None
        self._carrays = None
        self._cptrs = None
        engine = cjit.engine()
        m, n = self.matrix.shape
        if engine is not None:
            val = np.ascontiguousarray(self.matrix.data, dtype=np.float64)
            col = np.ascontiguousarray(self.matrix.indices, dtype=np.int64)
            ip = np.ascontiguousarray(self.matrix.indptr, dtype=np.int64)
            ffi = engine.ffi
            self._carrays = (val, col, ip)  # keep the memory alive
            self._cptrs = (ffi.cast("double *", val.ctypes.data),
                           ffi.cast("long *", col.ctypes.data),
                           ffi.cast("long *", ip.ctypes.data))
            self._cffi = ffi
            self.ckernel = engine.lib.k_csr_matvec
        elif self.dense is None and m * n <= DENSE_SPMV_LIMIT:
            dense = np.zeros((m, n))
            rows = np.repeat(np.arange(m), np.diff(self.matrix.indptr))
            np.add.at(dense, (rows, self.matrix.indices), self.matrix.data)
            self.dense = dense

    def update_values(self, data) -> None:
        """Install new numeric values for the *same* sparsity pattern.

        Strictly in place: every value array keeps its identity (and
        therefore its base address), so compiled closures, generated-C
        pointer tables, and cffi casts bound to this resource stay
        valid. The caller guarantees the pattern is unchanged — only
        the value array's shape is checked here.
        """
        data = np.asarray(data, dtype=np.float64)
        if data.shape != self.matrix.data.shape:
            raise ShapeError(
                f"matrix {self.name!r}: got {data.size} values for a "
                f"pattern with {self.matrix.data.size} stored entries")
        self.matrix.data[...] = data
        if self._carrays is not None:
            self._carrays[0][...] = data
        if self.dense is not None:
            m, _ = self.matrix.shape
            self.dense[...] = 0.0
            rows = np.repeat(np.arange(m), np.diff(self.matrix.indptr))
            np.add.at(self.dense, (rows, self.matrix.indices), data)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """``matrix @ x`` through the resource's chosen kernel."""
        m, n = self.matrix.shape
        if self.ckernel is not None:
            if x.shape != (n,):
                raise ShapeError(
                    f"matvec: expected vector of length {n}, "
                    f"got shape {x.shape}")
            x = np.ascontiguousarray(x, dtype=np.float64)
            y = np.empty(m)
            ffi = self._cffi
            self.ckernel(*self._cptrs,
                         ffi.cast("double *", x.ctypes.data),
                         ffi.cast("double *", y.ctypes.data), m)
            return y
        if self.dense is not None:
            if x.shape != (n,):
                raise ShapeError(
                    f"matvec: expected vector of length {n}, "
                    f"got shape {x.shape}")
            return np.dot(self.dense, x)
        return self.matrix.matvec(x)


#: The cycle-accounting classes an execution may charge, keyed by the
#: instruction class name. These are the only keys ``by_class`` may
#: contain after a run of either backend.
CYCLE_CLASSES = ("ScalarOp", "VectorOp", "DataTransfer", "VecDup",
                 "SpMV", "Control")


@dataclass
class ExecutionStats:
    """Cycle accounting of one program run.

    Accounting rules (shared by the interpreter and the compiled
    backend, so their stats are directly comparable):

    * Every executed instruction — including a :class:`~repro.hw.isa.
      Control` exit test, whether or not it fires — charges its cycle
      cost to exactly one of :data:`CYCLE_CLASSES` and increments
      ``instructions_executed``. Control *is* an instruction the
      sequencer issues each loop iteration; its 1-cycle test is real
      work, which is why it counts as executed.
    * :class:`~repro.hw.isa.Loop` is control structure, not an
      instruction: loop bookkeeping charges **no** cycles and does not
      count toward ``instructions_executed``. Its trip counts accrue in
      ``loop_iterations`` (the iteration a Control exits from counts as
      an iteration — its instructions up to the Control did execute).
    """

    total_cycles: int = 0
    by_class: dict = field(default_factory=dict)
    instructions_executed: int = 0
    loop_iterations: dict = field(default_factory=dict)

    def charge(self, kind: str, cycles: int) -> None:
        self.total_cycles += cycles
        self.by_class[kind] = self.by_class.get(kind, 0) + cycles
        self.instructions_executed += 1

    def charge_block(self, cycles: int, by_class: dict,
                     instructions: int) -> None:
        """Charge a pre-aggregated straight-line block in O(classes).

        Used by the compiled backend: the per-instruction costs of a
        basic block are state-independent, so after the block's first
        execution its total is applied with one call instead of one
        :meth:`charge` per instruction.
        """
        self.total_cycles += cycles
        bc = self.by_class
        for kind, kind_cycles in by_class.items():
            bc[kind] = bc.get(kind, 0) + kind_cycles
        self.instructions_executed += instructions

    def reset(self) -> None:
        """Zero the accounting in place.

        Object identity is preserved deliberately: the compiled
        backend's lowered nodes capture the stats object at bind time,
        so a persistent session resets the counters between resolves
        without invalidating any bound program.
        """
        self.total_cycles = 0
        self.by_class.clear()
        self.instructions_executed = 0
        self.loop_iterations.clear()


class _LoopExit(Exception):
    """Internal: raised by Control to exit the enclosing loop."""


class Machine:
    """The RSQP accelerator: instruction interpreter + cycle counter."""

    def __init__(self, c: int, matrices: dict):
        self.c = int(c)
        self.matrices: dict[str, MatrixResource] = dict(matrices)
        self.hbm: dict[str, np.ndarray] = {}
        self.vb: dict[str, np.ndarray] = {}
        self.cvb: dict[str, np.ndarray] = {}
        self.scalars: dict[str, float] = {}
        self.stats = ExecutionStats()
        #: Optional :class:`repro.faults.FaultInjector`. Both backends
        #: call its hooks at the same logical points (after SpMV
        #: writes, HBM loads and CVB duplications), so an armed
        #: injector corrupts identically under either backend. Arm it
        #: before the first program execution — the compiled backend
        #: bakes the hook into its lowered closures.
        self.injector = None

    # -- state helpers ---------------------------------------------------
    def write_hbm(self, name: str, values) -> None:
        """Host-side write (CPU -> HBM), not charged to the accelerator."""
        self.hbm[name] = np.asarray(values, dtype=np.float64).copy()

    def read_hbm(self, name: str) -> np.ndarray:
        return self.hbm[name].copy()

    def set_scalar(self, name: str, value: float) -> None:
        self.scalars[name] = float(value)

    def vector_length(self, name: str) -> int:
        for space in (self.vb, self.hbm, self.cvb):
            if name in space:
                return int(space[name].size)
        raise SimulationError(f"unknown vector {name!r}")

    def spmv_cycles(self, matrix: str) -> int:
        return self.matrices[matrix].spmv_cycles

    def cvb_depth(self, matrix: str) -> int:
        return self.matrices[matrix].cvb_depth

    def _vector(self, name: str) -> np.ndarray:
        if name in self.vb:
            return self.vb[name]
        if name in self.cvb:
            return self.cvb[name]
        raise SimulationError(f"vector {name!r} not resident on chip")

    def _scalar_or_literal(self, ref) -> float:
        if isinstance(ref, str):
            if ref not in self.scalars:
                raise SimulationError(f"unknown scalar register {ref!r}")
            return self.scalars[ref]
        return float(ref)

    # -- execution -------------------------------------------------------
    def run(self, program: Program) -> ExecutionStats:
        self._execute_block(program.instructions)
        return self.stats

    def _execute_block(self, items) -> None:
        for item in items:
            if isinstance(item, Loop):
                self._execute_loop(item)
            else:
                self._execute_instruction(item)

    def _execute_loop(self, loop: Loop) -> None:
        iterations = 0
        for _ in range(loop.max_iter):
            try:
                self._execute_block(loop.body)
                iterations += 1
            except _LoopExit:
                iterations += 1
                break
        self.stats.loop_iterations[loop.name] = \
            self.stats.loop_iterations.get(loop.name, 0) + iterations

    def _execute_instruction(self, instr: Instruction) -> None:
        cycles = instr.cycles(self)
        self.stats.charge(type(instr).__name__, cycles)
        if isinstance(instr, ScalarOp):
            self._scalar_op(instr)
        elif isinstance(instr, VectorOp):
            self._vector_op(instr)
        elif isinstance(instr, DataTransfer):
            self._data_transfer(instr)
        elif isinstance(instr, VecDup):
            out = self._vector(instr.src).copy()
            self.cvb[instr.cvb] = out
            if self.injector is not None:
                self.injector.on_cvb(instr.cvb, out)
        elif isinstance(instr, SpMV):
            resource = self.matrices[instr.matrix]
            src = self.cvb.get(instr.src)
            if src is None:
                raise SimulationError(
                    f"SpMV source {instr.src!r} not in CVB")
            out = resource.apply(src)
            self.vb[instr.dst] = out
            if self.injector is not None:
                self.injector.on_spmv(instr.dst, out)
        elif isinstance(instr, Control):
            value = self._scalar_or_literal(instr.reg)
            threshold = self._scalar_or_literal(instr.threshold_reg)
            if value < threshold:
                raise _LoopExit()
        else:
            raise SimulationError(f"unknown instruction {instr!r}")

    def _scalar_op(self, instr: ScalarOp) -> None:
        if instr.op in BINARY_SCALAR_OPS and instr.src2 is None:
            raise SimulationError(
                f"binary scalar op {instr.op.value!r} has no src2 "
                f"operand (dst={instr.dst!r})")
        a = self._scalar_or_literal(instr.src1)
        b = self._scalar_or_literal(instr.src2) \
            if instr.src2 is not None else None
        if instr.op is ScalarOpKind.ADD:
            out = a + b
        elif instr.op is ScalarOpKind.SUB:
            out = a - b
        elif instr.op is ScalarOpKind.MUL:
            out = a * b
        elif instr.op is ScalarOpKind.DIV:
            if b == 0.0:
                raise SimulationError("scalar division by zero")
            out = a / b
        elif instr.op is ScalarOpKind.MAX:
            out = max(a, b)
        elif instr.op is ScalarOpKind.SQRT:
            if a < 0.0:
                raise SimulationError("sqrt of a negative scalar")
            out = float(np.sqrt(a))
        elif instr.op is ScalarOpKind.MOV:
            out = a
        else:  # pragma: no cover - enum is closed
            raise SimulationError(f"unknown scalar op {instr.op}")
        self.scalars[instr.dst] = float(out)

    def _vector_op(self, instr: VectorOp) -> None:
        kind = instr.op
        if kind is VectorOpKind.DOT:
            a = self._vector(instr.srcs[0])
            b = self._vector(instr.srcs[1])
            self.scalars[instr.dst] = dot(a, b)
            return
        if kind is VectorOpKind.AXPBY:
            alpha = self._scalar_or_literal(instr.alpha)
            beta = self._scalar_or_literal(instr.beta)
            out = (alpha * self._vector(instr.srcs[0])
                   + beta * self._vector(instr.srcs[1]))
        elif kind is VectorOpKind.SCALE_ADD:
            alpha = self._scalar_or_literal(instr.alpha)
            out = (self._vector(instr.srcs[0])
                   + alpha * self._vector(instr.srcs[1]))
        elif kind is VectorOpKind.EWMUL:
            out = self._vector(instr.srcs[0]) * self._vector(instr.srcs[1])
        elif kind is VectorOpKind.CLIP:
            out = np.clip(self._vector(instr.srcs[0]),
                          self._vector(instr.srcs[1]),
                          self._vector(instr.srcs[2]))
        elif kind is VectorOpKind.COPY:
            out = self._vector(instr.srcs[0]).copy()
        else:  # pragma: no cover - enum is closed
            raise SimulationError(f"unknown vector op {kind}")
        self.vb[instr.dst] = out

    def _data_transfer(self, instr: DataTransfer) -> None:
        if instr.direction == "load":
            if instr.name not in self.hbm:
                raise SimulationError(f"HBM vector {instr.name!r} missing")
            out = self.hbm[instr.name].copy()
            self.vb[instr.name] = out
            if self.injector is not None:
                self.injector.on_load(instr.name, out)
        elif instr.direction == "store":
            self.hbm[instr.name] = self._vector(instr.name).copy()
        else:
            raise SimulationError(
                f"bad transfer direction {instr.direction!r}")
