"""Cycle-accurate functional simulator of the RSQP processing architecture.

The machine executes a :class:`~repro.hw.isa.Program` numerically (numpy
holds the buffer contents) while charging every instruction the cycle
cost of §3.1 / Table 1. Because it runs the real numbers, integration
tests can assert that the accelerator converges to the same solution as
the reference software solver while the cycle counter provides the
performance model.

State:

* **HBM** — named vectors (problem data, results) and the streamed
  matrices (with their schedules).
* **VB** — on-chip vector buffers, accessed sequentially at ``C``
  elements/cycle.
* **CVB** — compressed vector buffers, one bank group per streamed
  matrix, holding the vector an SpMV multiplies.
* **Scalar registers** — results of dot products and scalar arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import SimulationError
from .isa import (Control, DataTransfer, Instruction, Loop, Program,
                  ScalarOp, ScalarOpKind, SpMV, VecDup, VectorOp,
                  VectorOpKind)

__all__ = ["MatrixResource", "Machine", "ExecutionStats"]


@dataclass
class MatrixResource:
    """A matrix streamed from HBM with its schedule and CVB layout."""

    name: str
    matrix: object        # CSRMatrix
    spmv_cycles: int      # scheduled pack count (nnz + Ep) / C
    cvb_depth: int        # compressed duplication depth


@dataclass
class ExecutionStats:
    """Cycle accounting of one program run."""

    total_cycles: int = 0
    by_class: dict = field(default_factory=dict)
    instructions_executed: int = 0
    loop_iterations: dict = field(default_factory=dict)

    def charge(self, kind: str, cycles: int) -> None:
        self.total_cycles += cycles
        self.by_class[kind] = self.by_class.get(kind, 0) + cycles
        self.instructions_executed += 1


class _LoopExit(Exception):
    """Internal: raised by Control to exit the enclosing loop."""


class Machine:
    """The RSQP accelerator: instruction interpreter + cycle counter."""

    def __init__(self, c: int, matrices: dict):
        self.c = int(c)
        self.matrices: dict[str, MatrixResource] = dict(matrices)
        self.hbm: dict[str, np.ndarray] = {}
        self.vb: dict[str, np.ndarray] = {}
        self.cvb: dict[str, np.ndarray] = {}
        self.scalars: dict[str, float] = {}
        self.stats = ExecutionStats()

    # -- state helpers ---------------------------------------------------
    def write_hbm(self, name: str, values) -> None:
        """Host-side write (CPU -> HBM), not charged to the accelerator."""
        self.hbm[name] = np.asarray(values, dtype=np.float64).copy()

    def read_hbm(self, name: str) -> np.ndarray:
        return self.hbm[name].copy()

    def set_scalar(self, name: str, value: float) -> None:
        self.scalars[name] = float(value)

    def vector_length(self, name: str) -> int:
        for space in (self.vb, self.hbm, self.cvb):
            if name in space:
                return int(space[name].size)
        raise SimulationError(f"unknown vector {name!r}")

    def spmv_cycles(self, matrix: str) -> int:
        return self.matrices[matrix].spmv_cycles

    def cvb_depth(self, matrix: str) -> int:
        return self.matrices[matrix].cvb_depth

    def _vector(self, name: str) -> np.ndarray:
        if name in self.vb:
            return self.vb[name]
        if name in self.cvb:
            return self.cvb[name]
        raise SimulationError(f"vector {name!r} not resident on chip")

    def _scalar_or_literal(self, ref) -> float:
        if isinstance(ref, str):
            if ref not in self.scalars:
                raise SimulationError(f"unknown scalar register {ref!r}")
            return self.scalars[ref]
        return float(ref)

    # -- execution -------------------------------------------------------
    def run(self, program: Program) -> ExecutionStats:
        self._execute_block(program.instructions)
        return self.stats

    def _execute_block(self, items) -> None:
        for item in items:
            if isinstance(item, Loop):
                self._execute_loop(item)
            else:
                self._execute_instruction(item)

    def _execute_loop(self, loop: Loop) -> None:
        iterations = 0
        for _ in range(loop.max_iter):
            try:
                self._execute_block(loop.body)
                iterations += 1
            except _LoopExit:
                iterations += 1
                break
        self.stats.loop_iterations[loop.name] = \
            self.stats.loop_iterations.get(loop.name, 0) + iterations

    def _execute_instruction(self, instr: Instruction) -> None:
        cycles = instr.cycles(self)
        self.stats.charge(type(instr).__name__, cycles)
        if isinstance(instr, ScalarOp):
            self._scalar_op(instr)
        elif isinstance(instr, VectorOp):
            self._vector_op(instr)
        elif isinstance(instr, DataTransfer):
            self._data_transfer(instr)
        elif isinstance(instr, VecDup):
            self.cvb[instr.cvb] = self._vector(instr.src).copy()
        elif isinstance(instr, SpMV):
            resource = self.matrices[instr.matrix]
            src = self.cvb.get(instr.src)
            if src is None:
                raise SimulationError(
                    f"SpMV source {instr.src!r} not in CVB")
            self.vb[instr.dst] = resource.matrix.matvec(src)
        elif isinstance(instr, Control):
            value = self._scalar_or_literal(instr.reg)
            threshold = self._scalar_or_literal(instr.threshold_reg)
            if value < threshold:
                raise _LoopExit()
        else:
            raise SimulationError(f"unknown instruction {instr!r}")

    def _scalar_op(self, instr: ScalarOp) -> None:
        a = self._scalar_or_literal(instr.src1)
        b = self._scalar_or_literal(instr.src2) \
            if instr.src2 is not None else None
        if instr.op is ScalarOpKind.ADD:
            out = a + b
        elif instr.op is ScalarOpKind.SUB:
            out = a - b
        elif instr.op is ScalarOpKind.MUL:
            out = a * b
        elif instr.op is ScalarOpKind.DIV:
            if b == 0.0:
                raise SimulationError("scalar division by zero")
            out = a / b
        elif instr.op is ScalarOpKind.MAX:
            out = max(a, b)
        elif instr.op is ScalarOpKind.SQRT:
            if a < 0.0:
                raise SimulationError("sqrt of a negative scalar")
            out = float(np.sqrt(a))
        elif instr.op is ScalarOpKind.MOV:
            out = a
        else:  # pragma: no cover - enum is closed
            raise SimulationError(f"unknown scalar op {instr.op}")
        self.scalars[instr.dst] = float(out)

    def _vector_op(self, instr: VectorOp) -> None:
        kind = instr.op
        if kind is VectorOpKind.DOT:
            a = self._vector(instr.srcs[0])
            b = self._vector(instr.srcs[1])
            self.scalars[instr.dst] = float(np.dot(a, b))
            return
        if kind is VectorOpKind.AXPBY:
            alpha = self._scalar_or_literal(instr.alpha)
            beta = self._scalar_or_literal(instr.beta)
            out = (alpha * self._vector(instr.srcs[0])
                   + beta * self._vector(instr.srcs[1]))
        elif kind is VectorOpKind.SCALE_ADD:
            alpha = self._scalar_or_literal(instr.alpha)
            out = (self._vector(instr.srcs[0])
                   + alpha * self._vector(instr.srcs[1]))
        elif kind is VectorOpKind.EWMUL:
            out = self._vector(instr.srcs[0]) * self._vector(instr.srcs[1])
        elif kind is VectorOpKind.CLIP:
            out = np.clip(self._vector(instr.srcs[0]),
                          self._vector(instr.srcs[1]),
                          self._vector(instr.srcs[2]))
        elif kind is VectorOpKind.COPY:
            out = self._vector(instr.srcs[0]).copy()
        else:  # pragma: no cover - enum is closed
            raise SimulationError(f"unknown vector op {kind}")
        self.vb[instr.dst] = out

    def _data_transfer(self, instr: DataTransfer) -> None:
        if instr.direction == "load":
            if instr.name not in self.hbm:
                raise SimulationError(f"HBM vector {instr.name!r} missing")
            self.vb[instr.name] = self.hbm[instr.name].copy()
        elif instr.direction == "store":
            self.hbm[instr.name] = self._vector(instr.name).copy()
        else:
            raise SimulationError(
                f"bad transfer direction {instr.direction!r}")
