"""Fine-grained SpMV engine simulation (paper §3.2-§3.4, Figure 1).

Where :mod:`repro.hw.machine` charges an SpMV instruction its scheduled
cycle count wholesale, this module simulates the engine's pipeline one
pack (clock cycle) at a time:

1. every lane reads its operand from its **CVB bank** at the depth row
   given by the index-translation table — verifying the First-Fit
   layout really serves ``C`` conflict-free reads per cycle;
2. the **MAC tree** reduces each structure segment to one partial dot
   product;
3. the **alignment buffer** collects the variable-width output packs
   back into ``C``-wide rows (Figure 2(f)), with long rows (``$``
   chunks) routed through the accumulate path (Figure 5's
   ``acc_complete`` input).

Two backends execute the model. ``interpret`` walks the schedule pack
by pack in Python — the readable reference. ``compiled`` precomputes a
:class:`_EngineKernel` per (schedule, layout) pair — flattened gather
indices, per-chunk segment boundaries, the CVB lane/row translation
arrays, and the whole cycle-level trace, which is schedule structure
and does not depend on ``x`` — and replaces the pack loop with a padded
segment reduction. The kernel is built once and cached on the schedule.

Both backends sum each chunk with the same operation sequence (strictly
left-to-right accumulation over the engine's padded MAC width), so
their results agree bit for bit; against ``A @ x`` the result is exact
in IEEE terms of that summation order — asserted by tests across random
matrices, architectures and vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..customization.cvb import CVBLayout
from ..customization.scheduler import Schedule
from ..exceptions import SimulationError
from .compiled import validate_backend

__all__ = ["SpMVTrace", "simulate_spmv"]


@dataclass
class SpMVTrace:
    """Cycle-level record of one SpMV execution."""

    input_cycles: int = 0
    outputs_per_cycle: list = field(default_factory=list)
    accumulate_events: int = 0
    bank_reads: int = 0
    alignment_rows: int = 0

    @property
    def total_outputs(self) -> int:
        return int(sum(self.outputs_per_cycle))


def _fill_banks(layout: CVBLayout, x: np.ndarray) -> np.ndarray:
    """Duplication control: write each element into its banks/row."""
    banks = np.full((layout.c, max(layout.depth, 1)), np.nan)
    used = np.flatnonzero(layout.location >= 0)
    if used.size:
        # One flat assignment instead of a per-element/per-bank loop;
        # np.nonzero walks row-major, preserving the loop's write order.
        elem, bank = np.nonzero(layout.requests[used])
        src = used[elem]
        banks[bank, layout.location[src]] = x[src]
    return banks


class _EngineKernel:
    """Schedule-structure arrays for the compiled backend, x-independent.

    Everything the pack loop derives from the schedule alone is
    flattened here once: gather columns, chunk values, padded positions
    for the MAC reduction, output rows split into first/continuation,
    the CVB translation (lane, depth-row) per operand, and the complete
    trace. Executing for a vector ``x`` is then a handful of vectorized
    operations.
    """

    __slots__ = ("cols", "vals", "pad_rows", "pad_pos", "width",
                 "nchunks", "first_rows", "first_idx", "cont_rows",
                 "cont_idx", "lanes", "bank_rows", "nrows", "trace_args",
                 "structural_error", "fallback")

    def __init__(self, sched: Schedule, layout: CVBLayout):
        encoding = sched.encoding
        matrix = encoding.matrix
        self.nrows = matrix.shape[0]
        self.structural_error = None
        self.fallback = False

        cols_parts, vals_parts = [], []
        chunk_rows, chunk_first, chunk_lens, lane_starts = [], [], [], []
        outputs_per_cycle = []
        for pack in sched.packs:
            rows_this_cycle = set()
            for slot in pack.slots:
                chunk = slot.chunk
                cols = encoding.chunk_columns(chunk)
                _, vals = matrix.row(chunk.row)
                cols_parts.append(cols)
                vals_parts.append(
                    vals[chunk.start:chunk.start + chunk.length])
                chunk_rows.append(chunk.row)
                chunk_first.append(chunk.first)
                chunk_lens.append(cols.size)
                lane_starts.append(slot.lane_start)
                if chunk.row in rows_this_cycle:
                    self.structural_error = SimulationError(
                        f"row {chunk.row} scheduled twice in one cycle")
                rows_this_cycle.add(chunk.row)
            outputs_per_cycle.append(len(pack.slots))

        self.cols = (np.concatenate(cols_parts) if cols_parts
                     else np.zeros(0, dtype=np.int64)).astype(np.int64)
        self.vals = (np.concatenate(vals_parts) if vals_parts
                     else np.zeros(0))
        lens = np.asarray(chunk_lens, dtype=np.int64)
        self.nchunks = lens.size
        self.width = int(lens.max()) if lens.size else 1
        self.width = max(self.width, 1)
        # Flat element -> (chunk, position-in-chunk) for padded scatter.
        self.pad_rows = np.repeat(np.arange(self.nchunks), lens)
        self.pad_pos = (np.arange(lens.sum())
                        - np.repeat(np.cumsum(lens) - lens, lens))

        rows = np.asarray(chunk_rows, dtype=np.int64)
        first = np.asarray(chunk_first, dtype=bool)
        order = np.arange(self.nchunks)
        self.first_rows = rows[first]
        self.first_idx = order[first]
        self.cont_rows = rows[~first]
        self.cont_idx = order[~first]
        # The scatter/accumulate decomposition (assign all first chunks,
        # then add continuations in order) matches the interpreter only
        # when each row's first chunk precedes its continuations and is
        # unique; a schedule violating that falls back to the pack loop.
        if np.unique(self.first_rows).size != self.first_rows.size:
            self.fallback = True
        else:
            first_pos = {int(r): int(i)
                         for r, i in zip(self.first_rows, self.first_idx)}
            for r, i in zip(self.cont_rows, self.cont_idx):
                if first_pos.get(int(r), self.nchunks) > i:
                    self.fallback = True
                    break

        # CVB translation arrays for the bank-read verification.
        self.lanes = (np.repeat(np.asarray(lane_starts, dtype=np.int64),
                                lens) + self.pad_pos)
        self.bank_rows = layout.location[self.cols]
        if (self.structural_error is None and self.cols.size
                and self.bank_rows.min() < 0):
            bad = self.pad_rows[np.argmin(self.bank_rows)]
            self.structural_error = SimulationError(
                f"element of row {chunk_rows[bad]} missing from CVB")

        total_outputs = int(sum(outputs_per_cycle))
        c = sched.architecture.c
        self.trace_args = dict(
            input_cycles=len(sched.packs),
            outputs_per_cycle=outputs_per_cycle,
            accumulate_events=int(np.count_nonzero(~first)),
            alignment_rows=-(-total_outputs // c),
        )

    def execute(self, layout, x, verify_banks):
        if self.structural_error is not None:
            raise self.structural_error
        args = self.trace_args
        trace = SpMVTrace(
            input_cycles=args["input_cycles"],
            outputs_per_cycle=list(args["outputs_per_cycle"]),
            accumulate_events=args["accumulate_events"],
            alignment_rows=args["alignment_rows"])
        gathered = x[self.cols]
        if verify_banks:
            banks = _fill_banks(layout, x)
            operands = banks[self.lanes, self.bank_rows]
            if not np.array_equal(operands, gathered):
                bad = int(np.flatnonzero(operands != gathered)[0])
                row_of = self.first_rows.tolist() + self.cont_rows.tolist()
                idx_of = self.first_idx.tolist() + self.cont_idx.tolist()
                chunk = int(self.pad_rows[bad])
                row = dict(zip(idx_of, row_of))[chunk]
                raise SimulationError(
                    "CVB bank read returned the wrong operand "
                    f"(row {row})")
            trace.bank_reads = int(self.cols.size)

        # Padded MAC reduction: strictly left-to-right accumulation over
        # ``width`` slots per chunk — the interpreter's exact order.
        padded = np.zeros((self.nchunks, self.width))
        padded[self.pad_rows, self.pad_pos] = self.vals * gathered
        partials = np.zeros(self.nchunks)
        for k in range(self.width):
            partials += padded[:, k]

        y = np.zeros(self.nrows)
        y[self.first_rows] = partials[self.first_idx]
        np.add.at(y, self.cont_rows, partials[self.cont_idx])
        return y, trace


def _kernel_for(sched: Schedule, layout: CVBLayout) -> _EngineKernel:
    cache = getattr(sched, "_engine_kernels", None)
    if cache is None:
        cache = {}
        sched._engine_kernels = cache
    entry = cache.get(id(layout))
    if entry is not None and entry[0] is layout:
        return entry[1]
    kernel = _EngineKernel(sched, layout)
    cache[id(layout)] = (layout, kernel)  # layout ref pins the id
    return kernel


def simulate_spmv(sched: Schedule, layout: CVBLayout, x,
                  *, verify_banks: bool = True, backend: str = "compiled"):
    """Execute a scheduled SpMV through the engine model.

    Parameters
    ----------
    sched:
        Pack schedule of the matrix (determines lane assignment).
    layout:
        CVB compression serving this schedule's access requests.
    x:
        The vector to multiply.
    verify_banks:
        Check every operand actually comes out of a conflict-free bank
        read (raises :class:`SimulationError` on translation bugs).
    backend:
        ``"compiled"`` (default) runs the vectorized kernel cached on
        the schedule; ``"interpret"`` walks the packs in Python. Both
        produce bit-identical results and traces.

    Returns
    -------
    (y, trace):
        The product ``A @ x`` and the cycle-level trace.
    """
    validate_backend(backend)
    encoding = sched.encoding
    matrix = encoding.matrix
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (encoding.vector_length,):
        raise SimulationError(
            f"vector must have length {encoding.vector_length}")

    if backend == "compiled":
        kernel = _kernel_for(sched, layout)
        if not kernel.fallback:
            return kernel.execute(layout, x, verify_banks)

    banks = _fill_banks(layout, x)
    y = np.zeros(matrix.shape[0])
    trace = SpMVTrace()
    width = max((slot.chunk.length for pack in sched.packs
                 for slot in pack.slots), default=1)
    width = max(int(width), 1)
    scratch = np.zeros(width)

    for pack in sched.packs:
        outputs = 0
        rows_touched_this_cycle = set()
        for slot in pack.slots:
            chunk = slot.chunk
            cols = encoding.chunk_columns(chunk)
            _, vals = matrix.row(chunk.row)
            vals = vals[chunk.start:chunk.start + chunk.length]
            if verify_banks and cols.size:
                lanes = slot.lane_start + np.arange(cols.size)
                rows = layout.location[cols]
                if np.any(rows < 0):
                    raise SimulationError(
                        f"element of row {chunk.row} missing from CVB")
                operands = banks[lanes, rows]
                if not np.array_equal(operands, x[cols]):
                    raise SimulationError(
                        "CVB bank read returned the wrong operand "
                        f"(row {chunk.row})")
                trace.bank_reads += cols.size
            # MAC tree: left-to-right over the padded engine width —
            # the same order the compiled kernel reduces in.
            scratch[:] = 0.0
            scratch[:cols.size] = vals * x[cols]
            acc = 0.0
            for p in scratch:
                acc += p
            partial = float(acc)
            if chunk.first:
                y[chunk.row] = partial
            else:
                # Figure 5: continuation chunks of a long row re-enter
                # through the accumulate (CNT_AS_FADD) path.
                y[chunk.row] += partial
                trace.accumulate_events += 1
            outputs += 1
            if chunk.row in rows_touched_this_cycle:
                raise SimulationError(
                    f"row {chunk.row} scheduled twice in one cycle")
            rows_touched_this_cycle.add(chunk.row)
        trace.input_cycles += 1
        trace.outputs_per_cycle.append(outputs)

    # Alignment: variable-width output packs are rotated into C-wide
    # rows; one row drains per write-back cycle.
    c = sched.architecture.c
    trace.alignment_rows = -(-trace.total_outputs // c)
    return y, trace
