"""Fine-grained SpMV engine simulation (paper §3.2-§3.4, Figure 1).

Where :mod:`repro.hw.machine` charges an SpMV instruction its scheduled
cycle count wholesale, this module simulates the engine's pipeline one
pack (clock cycle) at a time:

1. every lane reads its operand from its **CVB bank** at the depth row
   given by the index-translation table — verifying the First-Fit
   layout really serves ``C`` conflict-free reads per cycle;
2. the **MAC tree** reduces each structure segment to one partial dot
   product;
3. the **alignment buffer** collects the variable-width output packs
   back into ``C``-wide rows (Figure 2(f)), with long rows (``$``
   chunks) routed through the accumulate path (Figure 5's
   ``acc_complete`` input).

The simulated result must equal ``A @ x`` bit-for-bit in IEEE terms of
the same summation order — asserted by tests across random matrices,
architectures and vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..customization.cvb import CVBLayout
from ..customization.scheduler import Schedule
from ..exceptions import SimulationError

__all__ = ["SpMVTrace", "simulate_spmv"]


@dataclass
class SpMVTrace:
    """Cycle-level record of one SpMV execution."""

    input_cycles: int = 0
    outputs_per_cycle: list = field(default_factory=list)
    accumulate_events: int = 0
    bank_reads: int = 0
    alignment_rows: int = 0

    @property
    def total_outputs(self) -> int:
        return int(sum(self.outputs_per_cycle))


def _fill_banks(layout: CVBLayout, x: np.ndarray) -> np.ndarray:
    """Duplication control: write each element into its banks/row."""
    banks = np.full((layout.c, max(layout.depth, 1)), np.nan)
    for j in np.flatnonzero(layout.location >= 0):
        row = layout.location[j]
        for bank in np.flatnonzero(layout.requests[j]):
            banks[bank, row] = x[j]
    return banks


def simulate_spmv(sched: Schedule, layout: CVBLayout, x,
                  *, verify_banks: bool = True):
    """Execute a scheduled SpMV through the engine model.

    Parameters
    ----------
    sched:
        Pack schedule of the matrix (determines lane assignment).
    layout:
        CVB compression serving this schedule's access requests.
    x:
        The vector to multiply.
    verify_banks:
        Check every operand actually comes out of a conflict-free bank
        read (raises :class:`SimulationError` on translation bugs).

    Returns
    -------
    (y, trace):
        The product ``A @ x`` and the cycle-level trace.
    """
    encoding = sched.encoding
    matrix = encoding.matrix
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (encoding.vector_length,):
        raise SimulationError(
            f"vector must have length {encoding.vector_length}")

    banks = _fill_banks(layout, x)
    y = np.zeros(matrix.shape[0])
    trace = SpMVTrace()

    for pack in sched.packs:
        outputs = 0
        rows_touched_this_cycle = set()
        for slot in pack.slots:
            chunk = slot.chunk
            cols = encoding.chunk_columns(chunk)
            _, vals = matrix.row(chunk.row)
            vals = vals[chunk.start:chunk.start + chunk.length]
            if verify_banks and cols.size:
                lanes = slot.lane_start + np.arange(cols.size)
                rows = layout.location[cols]
                if np.any(rows < 0):
                    raise SimulationError(
                        f"element of row {chunk.row} missing from CVB")
                operands = banks[lanes, rows]
                if not np.array_equal(operands, x[cols]):
                    raise SimulationError(
                        "CVB bank read returned the wrong operand "
                        f"(row {chunk.row})")
                trace.bank_reads += cols.size
            partial = float(np.dot(vals, x[cols])) if cols.size else 0.0
            if chunk.first:
                y[chunk.row] = partial
            else:
                # Figure 5: continuation chunks of a long row re-enter
                # through the accumulate (CNT_AS_FADD) path.
                y[chunk.row] += partial
                trace.accumulate_events += 1
            outputs += 1
            if chunk.row in rows_touched_this_cycle:
                raise SimulationError(
                    f"row {chunk.row} scheduled twice in one cycle")
            rows_touched_this_cycle.add(chunk.row)
        trace.input_cycles += 1
        trace.outputs_per_cycle.append(outputs)

    # Alignment: variable-width output packs are rotated into C-wide
    # rows; one row drains per write-back cycle.
    c = sched.architecture.c
    trace.alignment_rows = -(-trace.total_outputs // c)
    return y, trace
