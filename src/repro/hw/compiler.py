"""Lowering first-order QP algorithms to the RSQP ISA.

Two algorithms compile onto the same problem-specific datapaths:

* :func:`compile_osqp_program` — OSQP ADMM (Algorithm 1) with the
  inner PCG loop (Algorithm 2), customized against the implicit
  reduced-KKT operator ``K = P + sigma I + A' rho A``;
* :func:`compile_pdqp_program` — restarted Halpern PDHG
  (:mod:`repro.solver.pdqp`), customized directly against the raw
  ``P`` / ``A`` / ``A'`` structures — no KKT system is ever formed.

Both emit the same shape of program:

* prologue — load problem vectors from HBM, initialize state;
* iteration loop(s) — the algorithm body, ending in an on-chip 2-norm
  termination check and a Control exit;
* epilogue — store ``x``, ``y``, ``z`` back to HBM.

Because every instruction's cycle cost is static (it depends only on
vector lengths, the SpMV schedules and the CVB depths), the compiled
program doubles as an exact analytic cost model:
:meth:`CompiledProgram.estimate_cycles` must equal the machine's
measured cycles for given iteration counts — a property the tests
assert.
"""

from __future__ import annotations

from typing import Dict

from .isa import (Control, DataTransfer, Loop, Program, ScalarOp,
                  ScalarOpKind, SpMV, VecDup, VectorOp, VectorOpKind)

__all__ = ["CompiledProgram", "compile_osqp_program",
           "compile_pdqp_program", "StaticCostContext", "attach_costs"]

#: Loop names used in the machine's iteration statistics.
ADMM_LOOP = "admm"
PCG_LOOP = "pcg"
PDHG_LOOP = "pdhg"


class StaticCostContext:
    """Duck-typed 'machine' exposing just what cycle formulas need."""

    def __init__(self, c: int, lengths: dict, spmv: dict, depths: dict):
        self.c = int(c)
        self._lengths = dict(lengths)
        self._spmv = dict(spmv)
        self._depths = dict(depths)

    def vector_length(self, name: str) -> int:
        return self._lengths[name]

    def spmv_cycles(self, matrix: str) -> int:
        return self._spmv[matrix]

    def cvb_depth(self, matrix: str) -> int:
        return self._depths[matrix]


class CompiledProgram:
    """A lowered program plus its static per-section cycle costs.

    Generic over the algorithm: ``section_cycles`` maps section names
    (``"prologue"``, loop bodies, ``"epilogue"``) to their static cost,
    and ``loop_sections`` maps each loop name to the section holding
    its per-iteration body. The legacy ADMM-era field quartet
    (``prologue_cycles`` / ``admm_body_cycles`` / ``pcg_body_cycles`` /
    ``epilogue_cycles``) remains available as read/write properties
    over that table, so existing callers (fault injection, tests)
    keep working.
    """

    def __init__(self, program: Program, context: StaticCostContext,
                 *, algorithm: str = "admm",
                 loop_sections: Dict[str, str] | None = None,
                 section_cycles: Dict[str, int] | None = None):
        self.program = program
        self.context = context
        self.algorithm = algorithm
        #: loop name -> section name of its per-iteration body.
        self.loop_sections = dict(loop_sections or {
            ADMM_LOOP: "admm_body", PCG_LOOP: "pcg_body"})
        self.section_cycles: Dict[str, int] = dict(section_cycles or {})
        #: section name -> instruction list (set by the compile_* fns).
        self._sections: Dict[str, list] = {}

    # -- legacy per-section fields (read/write views) -------------------
    @property
    def prologue_cycles(self) -> int:
        return self.section_cycles.get("prologue", 0)

    @prologue_cycles.setter
    def prologue_cycles(self, value: int) -> None:
        self.section_cycles["prologue"] = value

    @property
    def admm_body_cycles(self) -> int:
        return self.section_cycles.get("admm_body", 0)

    @admm_body_cycles.setter
    def admm_body_cycles(self, value: int) -> None:
        self.section_cycles["admm_body"] = value

    @property
    def pcg_body_cycles(self) -> int:
        return self.section_cycles.get("pcg_body", 0)

    @pcg_body_cycles.setter
    def pcg_body_cycles(self, value: int) -> None:
        self.section_cycles["pcg_body"] = value

    @property
    def epilogue_cycles(self) -> int:
        return self.section_cycles.get("epilogue", 0)

    @epilogue_cycles.setter
    def epilogue_cycles(self, value: int) -> None:
        self.section_cycles["epilogue"] = value

    @property
    def body_section(self) -> str:
        """The outermost iteration loop's body section name."""
        return "pdhg_body" if self.algorithm == "pdqp" else "admm_body"

    # -- cost model -----------------------------------------------------
    def estimate_cycles_for(self, iterations: Dict[str, int]) -> int:
        """Exact cycle count given per-loop trip counts (by loop name)."""
        total = (self.section_cycles.get("prologue", 0)
                 + self.section_cycles.get("epilogue", 0))
        for loop_name, trips in iterations.items():
            section = self.loop_sections[loop_name]
            total += trips * self.section_cycles.get(section, 0)
        return total

    def estimate_cycles(self, admm_iterations: int,
                        pcg_iterations: int) -> int:
        """Exact cycle count for given loop trip counts (ADMM programs).

        Kept for the original two-loop signature; PDQP programs use
        :meth:`estimate_cycles_for` with the ``"pdhg"`` loop name.
        """
        return (self.prologue_cycles
                + admm_iterations * self.admm_body_cycles
                + pcg_iterations * self.pcg_body_cycles
                + self.epilogue_cycles)


def _tag_sites(items: list, section: str) -> None:
    """Label instructions with their generating site (frozen-safe).

    The label names the compiler stage that emitted the instruction so
    verifier diagnostics can point at the *source* of a bad instruction
    rather than only its index in the lowered stream. Instructions that
    already carry a finer-grained site (e.g. from ``k_apply``) keep it.
    """
    for index, item in enumerate(items):
        if isinstance(item, Loop):
            continue  # loop bodies carry their own section labels
        if getattr(item, "site", None) is None:
            object.__setattr__(item, "site",
                               f"compiler.{section}[{index}]")


def _section_cycles(items, context) -> int:
    total = 0
    for item in items:
        if isinstance(item, Loop):
            continue  # inner loops are costed separately
        total += item.cycles(context)
    return total


def _install_sections(compiled: CompiledProgram,
                      sections: Dict[str, list]) -> CompiledProgram:
    for name, items in sections.items():
        _tag_sites(items, name)
    compiled._sections = dict(sections)
    for name, items in sections.items():
        compiled.section_cycles[name] = _section_cycles(
            items, compiled.context)
    return compiled


def compile_osqp_program(n: int, m: int, *, max_admm_iter: int,
                         max_pcg_iter: int) -> CompiledProgram:
    """Build the OSQP-on-RSQP instruction stream for an (n, m) problem.

    The host is expected to preload HBM with the scaled problem vectors
    (``q``, ``l``, ``u``, ``rho``, ``rho_inv``, ``minv``, initial ``x``,
    ``z``, ``y``) and the scalar registers (``sigma``, ``alpha_relax``,
    tolerance constants) — see
    :class:`repro.hw.accelerator.RSQPAccelerator`.
    """
    sc = ScalarOpKind
    vk = VectorOpKind

    prologue = []
    for name in ("q", "l", "u", "rho", "rho_inv", "minv", "x", "z", "y"):
        prologue.append(DataTransfer("load", name))
    # Warm-start buffer for PCG and an initial search state.
    prologue.append(VectorOp(vk.COPY, "xt", ("x",)))

    # ---- PCG body (Algorithm 2, one iteration) ------------------------
    def k_apply(src: str, dst: str) -> list:
        """dst = K src = P src + sigma src + A' (rho o (A src))."""
        items = [
            VecDup(src, "P"),
            SpMV("P", "P", "kp_p"),
            VecDup(src, "A"),
            SpMV("A", "A", "kp_a"),
            VectorOp(vk.EWMUL, "kp_ra", ("rho", "kp_a")),
            VecDup("kp_ra", "At"),
            SpMV("At", "At", "kp_at"),
            VectorOp(vk.AXPBY, "kp_tmp", ("kp_p", src),
                     alpha=1.0, beta="sigma"),
            VectorOp(vk.AXPBY, dst, ("kp_tmp", "kp_at"),
                     alpha=1.0, beta=1.0),
        ]
        _tag_sites(items, f"k_apply({src}->{dst})")
        return items

    # The loop-exit Control sits at the *end* of the body so a completed
    # trip always costs the same — that keeps the static cost model
    # exact. Divisions are guarded with max(., tiny) so a converged
    # (zero-residual) state coasts through one final harmless trip
    # instead of dividing 0/0.
    pcg_body = []
    pcg_body += k_apply("p", "kp")
    pcg_body += [
        VectorOp(vk.DOT, "pkp", ("p", "kp")),
        ScalarOp(sc.MAX, "pkp_safe", "pkp", "tiny"),
        ScalarOp(sc.DIV, "lam", "rd", "pkp_safe"),
        VectorOp(vk.SCALE_ADD, "xt", ("xt", "p"), alpha="lam"),
        VectorOp(vk.SCALE_ADD, "r", ("r", "kp"), alpha="lam"),
        VectorOp(vk.DOT, "rn2", ("r", "r")),
        VectorOp(vk.EWMUL, "d", ("minv", "r")),
        VectorOp(vk.DOT, "rd_new", ("r", "d")),
        ScalarOp(sc.MAX, "rd_safe", "rd", "tiny"),
        ScalarOp(sc.DIV, "mu", "rd_new", "rd_safe"),
        ScalarOp(sc.MOV, "rd", "rd_new"),
        VectorOp(vk.AXPBY, "p", ("d", "p"), alpha=-1.0, beta="mu"),
        Control("rn2", "pcg_thresh"),
    ]

    # ---- ADMM body (Algorithm 1, one iteration) ------------------------
    admm_body = []
    # rhs = sigma x - q + A'(rho o z - y)
    admm_body += [
        VectorOp(vk.EWMUL, "rz", ("rho", "z")),
        VectorOp(vk.AXPBY, "rzy", ("rz", "y"), alpha=1.0, beta=-1.0),
        VecDup("rzy", "At"),
        SpMV("At", "At", "atrzy"),
        VectorOp(vk.AXPBY, "sxq", ("x", "q"), alpha="sigma", beta=-1.0),
        VectorOp(vk.AXPBY, "rhs", ("sxq", "atrzy"), alpha=1.0, beta=1.0),
    ]
    # PCG init: r = K xt - rhs; d = minv o r; p = -d; rd = <r, d>;
    # threshold = eps_pcg^2 * <rhs, rhs>.
    admm_body += k_apply("xt", "kx")
    admm_body += [
        VectorOp(vk.AXPBY, "r", ("kx", "rhs"), alpha=1.0, beta=-1.0),
        VectorOp(vk.EWMUL, "d", ("minv", "r")),
        VectorOp(vk.AXPBY, "p", ("d", "d"), alpha=-1.0, beta=0.0),
        VectorOp(vk.DOT, "rd", ("r", "d")),
        VectorOp(vk.DOT, "bb", ("rhs", "rhs")),
        ScalarOp(sc.MUL, "pcg_thresh", "pcg_eps2", "bb"),
        Loop(body=pcg_body, max_iter=max_pcg_iter, name=PCG_LOOP),
    ]
    # z_tilde = A xt
    admm_body += [
        VecDup("xt", "A"),
        SpMV("A", "A", "zt"),
    ]
    # Relaxation, projection, dual update.
    admm_body += [
        VectorOp(vk.AXPBY, "x_new", ("xt", "x"),
                 alpha="alpha_relax", beta="one_m_alpha"),
        VectorOp(vk.AXPBY, "z_relax", ("zt", "z"),
                 alpha="alpha_relax", beta="one_m_alpha"),
        VectorOp(vk.EWMUL, "riy", ("rho_inv", "y")),
        VectorOp(vk.AXPBY, "z_arg", ("z_relax", "riy"),
                 alpha=1.0, beta=1.0),
        VectorOp(vk.CLIP, "z_new", ("z_arg", "l", "u")),
        VectorOp(vk.AXPBY, "dz", ("z_relax", "z_new"),
                 alpha=1.0, beta=-1.0),
        VectorOp(vk.EWMUL, "rdz", ("rho", "dz")),
        VectorOp(vk.AXPBY, "y", ("y", "rdz"), alpha=1.0, beta=1.0),
        VectorOp(vk.COPY, "x", ("x_new",)),
        VectorOp(vk.COPY, "z", ("z_new",)),
    ]
    # On-chip termination check (2-norm residuals):
    # prim: ||Ax - z|| <= eps_abs sqrt(m) + eps_rel max(||Ax||, ||z||)
    # dual: ||Px + q + A'y|| <= eps_abs sqrt(n)
    #       + eps_rel max(||Px||, ||A'y||, ||q||)
    admm_body += [
        VecDup("x", "A"),
        SpMV("A", "A", "ax"),
        VectorOp(vk.AXPBY, "rp_vec", ("ax", "z"), alpha=1.0, beta=-1.0),
        VectorOp(vk.DOT, "rp2", ("rp_vec", "rp_vec")),
        VectorOp(vk.DOT, "nax2", ("ax", "ax")),
        VectorOp(vk.DOT, "nz2", ("z", "z")),
        ScalarOp(sc.SQRT, "rp", "rp2"),
        ScalarOp(sc.MAX, "npz2", "nax2", "nz2"),
        ScalarOp(sc.SQRT, "npz", "npz2"),
        ScalarOp(sc.MUL, "eps_p_rel", "eps_rel", "npz"),
        ScalarOp(sc.ADD, "eps_p", "eps_abs_m", "eps_p_rel"),
        ScalarOp(sc.DIV, "ratio_p", "rp", "eps_p"),
        VecDup("x", "P"),
        SpMV("P", "P", "px"),
        VecDup("y", "At"),
        SpMV("At", "At", "aty"),
        VectorOp(vk.AXPBY, "rd_tmp", ("px", "aty"), alpha=1.0, beta=1.0),
        VectorOp(vk.AXPBY, "rd_vec", ("rd_tmp", "q"), alpha=1.0, beta=1.0),
        VectorOp(vk.DOT, "rdual2", ("rd_vec", "rd_vec")),
        VectorOp(vk.DOT, "npx2", ("px", "px")),
        VectorOp(vk.DOT, "naty2", ("aty", "aty")),
        ScalarOp(sc.SQRT, "rdual", "rdual2"),
        ScalarOp(sc.MAX, "nd2", "npx2", "naty2"),
        ScalarOp(sc.SQRT, "nd", "nd2"),
        ScalarOp(sc.MAX, "nd_all", "nd", "nq"),
        ScalarOp(sc.MUL, "eps_d_rel", "eps_rel", "nd_all"),
        ScalarOp(sc.ADD, "eps_d", "eps_abs_n", "eps_d_rel"),
        ScalarOp(sc.DIV, "ratio_d", "rdual", "eps_d"),
        ScalarOp(sc.MAX, "worst", "ratio_p", "ratio_d"),
        Control("worst", "one"),
    ]

    epilogue = [
        DataTransfer("store", "x"),
        DataTransfer("store", "y"),
        DataTransfer("store", "z"),
    ]

    program = Program()
    for item in prologue:
        program.append(item)
    program.append(Loop(body=admm_body, max_iter=max_admm_iter,
                        name=ADMM_LOOP))
    for item in epilogue:
        program.append(item)

    lengths = _vector_lengths(n, m)
    # Cost context placeholders; the accelerator fills in real schedule
    # numbers. Default zero costs keep the context usable standalone.
    context = StaticCostContext(c=1, lengths=lengths,
                                spmv={"P": 0, "A": 0, "At": 0},
                                depths={"P": 0, "A": 0, "At": 0})
    compiled = CompiledProgram(
        program=program, context=context, algorithm="admm",
        loop_sections={ADMM_LOOP: "admm_body", PCG_LOOP: "pcg_body"})
    return _install_sections(compiled, {
        "prologue": prologue,
        "admm_body": admm_body,
        "pcg_body": pcg_body,
        "epilogue": epilogue,
    })


def compile_pdqp_program(n: int, m: int, *,
                         max_iter: int) -> CompiledProgram:
    """Build the PDQP-on-RSQP instruction stream for an (n, m) problem.

    One Halpern-anchored PDHG iteration per loop trip, built entirely
    from SpMV (on the raw ``P``/``A``/``A'`` structures), AXPBY, CLIP
    and DOT — no KKT operator. The host preloads HBM with the scaled
    vectors (``q``, ``l``, ``u``, iterates ``x``, ``y`` and the Halpern
    anchors ``x0``, ``y0``) and the scalar registers (step sizes
    ``neg_tau``/``sigma``/``sigma_inv``/``neg_sigma``, the Halpern
    counter ``hk``, tolerance constants) — see
    :class:`repro.hw.pdqp.PDQPAccelerator`. Restarts are host-driven
    between loop segments (anchor refresh + ``hk`` reset), mirroring
    how the ADMM accelerator drives rho updates.
    """
    sc = ScalarOpKind
    vk = VectorOpKind

    prologue = []
    for name in ("q", "l", "u", "x", "y", "x0", "y0"):
        prologue.append(DataTransfer("load", name))
    # The loop body maintains px = P x and aty = A' y for the *next*
    # trip (they fall out of the residual evaluation); seed them here.
    prologue += [
        VecDup("x", "P"),
        SpMV("P", "P", "px"),
        VecDup("y", "At"),
        SpMV("At", "At", "aty"),
    ]

    pdhg_body = []
    # Linearized primal step: xp = x - tau (P x + q + A' y).
    pdhg_body += [
        VectorOp(vk.AXPBY, "g_tmp", ("px", "aty"), alpha=1.0, beta=1.0),
        VectorOp(vk.AXPBY, "grad", ("g_tmp", "q"), alpha=1.0, beta=1.0),
        VectorOp(vk.AXPBY, "xp", ("x", "grad"), alpha=1.0, beta="neg_tau"),
        VectorOp(vk.AXPBY, "xb", ("xp", "x"), alpha=2.0, beta=-1.0),
    ]
    # Dual step: y+ = v - sigma clip(v / sigma, l, u), v = y + sigma A xb.
    pdhg_body += [
        VecDup("xb", "A"),
        SpMV("A", "A", "axb"),
        VectorOp(vk.AXPBY, "v", ("y", "axb"), alpha=1.0, beta="sigma"),
        VectorOp(vk.AXPBY, "vs", ("v", "v"), alpha="sigma_inv", beta=0.0),
        VectorOp(vk.CLIP, "zc", ("vs", "l", "u")),
        VectorOp(vk.AXPBY, "yp", ("v", "zc"), alpha=1.0, beta="neg_sigma"),
    ]
    # Halpern anchoring: lam = 1 / hk with hk = k + 2; then
    # (x, y) = lam (x0, y0) + (1 - lam) (x+, y+).
    pdhg_body += [
        ScalarOp(sc.DIV, "lam", "one", "hk"),
        ScalarOp(sc.SUB, "one_m_lam", "one", "lam"),
        ScalarOp(sc.ADD, "hk", "hk", "one"),
        VectorOp(vk.AXPBY, "x", ("x0", "xp"), alpha="lam",
                 beta="one_m_lam"),
        VectorOp(vk.AXPBY, "y", ("y0", "yp"), alpha="lam",
                 beta="one_m_lam"),
    ]
    # On-chip termination check (2-norm residuals, z = clip(Ax, l, u)):
    # prim: ||Ax - z|| <= eps_abs sqrt(m) + eps_rel max(||Ax||, ||z||)
    # dual: ||Px + q + A'y|| <= eps_abs sqrt(n)
    #       + eps_rel max(||Px||, ||A'y||, ||q||)
    # The Px / A'y products double as next trip's gradient inputs.
    pdhg_body += [
        VecDup("x", "A"),
        SpMV("A", "A", "ax"),
        VectorOp(vk.CLIP, "z", ("ax", "l", "u")),
        VectorOp(vk.AXPBY, "rp_vec", ("ax", "z"), alpha=1.0, beta=-1.0),
        VectorOp(vk.DOT, "rp2", ("rp_vec", "rp_vec")),
        VectorOp(vk.DOT, "nax2", ("ax", "ax")),
        VectorOp(vk.DOT, "nz2", ("z", "z")),
        ScalarOp(sc.SQRT, "rp", "rp2"),
        ScalarOp(sc.MAX, "npz2", "nax2", "nz2"),
        ScalarOp(sc.SQRT, "npz", "npz2"),
        ScalarOp(sc.MUL, "eps_p_rel", "eps_rel", "npz"),
        ScalarOp(sc.ADD, "eps_p", "eps_abs_m", "eps_p_rel"),
        ScalarOp(sc.DIV, "ratio_p", "rp", "eps_p"),
        VecDup("x", "P"),
        SpMV("P", "P", "px"),
        VecDup("y", "At"),
        SpMV("At", "At", "aty"),
        VectorOp(vk.AXPBY, "rd_tmp", ("px", "aty"), alpha=1.0, beta=1.0),
        VectorOp(vk.AXPBY, "rd_vec", ("rd_tmp", "q"), alpha=1.0, beta=1.0),
        VectorOp(vk.DOT, "rdual2", ("rd_vec", "rd_vec")),
        VectorOp(vk.DOT, "npx2", ("px", "px")),
        VectorOp(vk.DOT, "naty2", ("aty", "aty")),
        ScalarOp(sc.SQRT, "rdual", "rdual2"),
        ScalarOp(sc.MAX, "nd2", "npx2", "naty2"),
        ScalarOp(sc.SQRT, "nd", "nd2"),
        ScalarOp(sc.MAX, "nd_all", "nd", "nq"),
        ScalarOp(sc.MUL, "eps_d_rel", "eps_rel", "nd_all"),
        ScalarOp(sc.ADD, "eps_d", "eps_abs_n", "eps_d_rel"),
        ScalarOp(sc.DIV, "ratio_d", "rdual", "eps_d"),
        ScalarOp(sc.MAX, "worst", "ratio_p", "ratio_d"),
        Control("worst", "one"),
    ]

    epilogue = [
        DataTransfer("store", "x"),
        DataTransfer("store", "y"),
        DataTransfer("store", "z"),
    ]

    program = Program()
    for item in prologue:
        program.append(item)
    program.append(Loop(body=pdhg_body, max_iter=max_iter,
                        name=PDHG_LOOP))
    for item in epilogue:
        program.append(item)

    lengths = _pdqp_vector_lengths(n, m)
    context = StaticCostContext(c=1, lengths=lengths,
                                spmv={"P": 0, "A": 0, "At": 0},
                                depths={"P": 0, "A": 0, "At": 0})
    compiled = CompiledProgram(
        program=program, context=context, algorithm="pdqp",
        loop_sections={PDHG_LOOP: "pdhg_body"})
    return _install_sections(compiled, {
        "prologue": prologue,
        "pdhg_body": pdhg_body,
        "epilogue": epilogue,
    })


def attach_costs(compiled: CompiledProgram, c: int, spmv: dict,
                 depths: dict, n: int, m: int) -> CompiledProgram:
    """Install real cycle costs (from a customization) into the program.

    The vector-length table comes from the program's own context (set
    at compile time, per algorithm); ``n``/``m`` are accepted for
    interface stability and cross-checked against it.
    """
    lengths = compiled.context._lengths
    if lengths.get("q") not in (None, n) or lengths.get("l") not in (None, m):
        raise ValueError(
            f"attach_costs: program was compiled for "
            f"(n={lengths.get('q')}, m={lengths.get('l')}), "
            f"got (n={n}, m={m})")
    context = StaticCostContext(c=c, lengths=lengths,
                                spmv=spmv, depths=depths)
    compiled.context = context
    for name, items in compiled._sections.items():
        compiled.section_cycles[name] = _section_cycles(items, context)
    return compiled


def _vector_lengths(n: int, m: int) -> dict:
    n_vectors = ("q", "x", "xt", "p", "d", "r", "kp", "kx", "kp_p",
                 "kp_at", "kp_tmp", "rhs", "sxq", "atrzy", "x_new", "px",
                 "aty", "rd_tmp", "rd_vec")
    m_vectors = ("l", "u", "rho", "rho_inv", "z", "y", "zt", "kp_a",
                 "kp_ra", "rz", "rzy", "z_relax", "riy", "z_arg", "z_new",
                 "dz", "rdz", "ax", "rp_vec")
    lengths = {name: n for name in n_vectors}
    lengths.update({name: m for name in m_vectors})
    lengths["minv"] = n
    return lengths


def _pdqp_vector_lengths(n: int, m: int) -> dict:
    n_vectors = ("q", "x", "x0", "xp", "xb", "g_tmp", "grad", "px",
                 "aty", "rd_tmp", "rd_vec")
    m_vectors = ("l", "u", "y", "y0", "axb", "v", "vs", "zc", "yp",
                 "ax", "z", "rp_vec")
    lengths: Dict[str, int] = {name: n for name in n_vectors}
    lengths.update({name: m for name in m_vectors})
    return lengths
