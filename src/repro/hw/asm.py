"""Instruction-ROM serialization: assembler listing and ROM sizing.

The RSQP control unit executes from an instruction ROM downloaded over
HBM (§3.5). This module renders a compiled :class:`Program` as a
human-readable listing (the artifact a hardware engineer would inspect)
and computes the ROM footprint.
"""

from __future__ import annotations

import struct

from ..exceptions import SimulationError
from .isa import (Control, DataTransfer, Loop, Program, ScalarOp,
                  ScalarOpKind, SpMV, VecDup, VectorOp, VectorOpKind)

__all__ = ["disassemble", "rom_words", "ROM_WORD_BYTES", "encode_program",
           "decode_program"]

#: Encoded instruction width: opcode + 3 operand fields + 2 immediates.
ROM_WORD_BYTES = 16


def _operand(ref) -> str:
    if isinstance(ref, str):
        return ref
    if ref is None:
        return "_"
    return f"#{ref:g}"


def _format_instruction(instr) -> str:
    if isinstance(instr, ScalarOp):
        return (f"s.{instr.op.value:<5s} {instr.dst}, "
                f"{_operand(instr.src1)}, {_operand(instr.src2)}")
    if isinstance(instr, VectorOp):
        srcs = ", ".join(instr.srcs)
        extra = ""
        if instr.alpha is not None or instr.beta is not None:
            extra = f"  [alpha={_operand(instr.alpha)}," \
                    f" beta={_operand(instr.beta)}]"
        return f"v.{instr.op.value:<9s} {instr.dst} <- {srcs}{extra}"
    if isinstance(instr, DataTransfer):
        arrow = "<-" if instr.direction == "load" else "->"
        return f"mem.{instr.direction:<5s} vb[{instr.name}] {arrow} hbm"
    if isinstance(instr, VecDup):
        return f"dup        cvb[{instr.cvb}] <- vb[{instr.src}]"
    if isinstance(instr, SpMV):
        return (f"spmv       vb[{instr.dst}] <- {instr.matrix} "
                f"@ cvb[{instr.src}]")
    if isinstance(instr, Control):
        return f"ctrl       exit if {instr.reg} < " \
               f"{_operand(instr.threshold_reg)}"
    return repr(instr)  # pragma: no cover - closed instruction set


def disassemble(program: Program, *, show_sites: bool = False) -> str:
    """Render the program as an indented assembler listing.

    With ``show_sites=True`` each line carries the instruction's
    generating-site label (``; compiler.pcg_body[3]``) when present —
    the same label verifier diagnostics cite. Off by default so the
    listing of a binary round-trip (which drops sites) matches the
    original's.
    """
    lines: list[str] = []
    address = 0

    def walk(items, depth):
        nonlocal address
        pad = "  " * depth
        for item in items:
            if isinstance(item, Loop):
                lines.append(f"{pad}loop {item.name} "
                             f"(max {item.max_iter}):")
                walk(item.body, depth + 1)
                lines.append(f"{pad}end {item.name}")
            else:
                text = f"{pad}{address:04d}: {_format_instruction(item)}"
                site = getattr(item, "site", None)
                if show_sites and site is not None:
                    text = f"{text:<60s} ; {site}"
                lines.append(text)
                address += 1

    walk(program.instructions, 0)
    return "\n".join(lines) + "\n"


def rom_words(program: Program) -> int:
    """Static instruction count = ROM words (loops stored once)."""
    # Loop headers consume one control word each.
    def count(items):
        total = 0
        for item in items:
            if isinstance(item, Loop):
                total += 1 + count(item.body)
            else:
                total += 1
        return total
    return count(program.instructions)

# ----------------------------------------------------------------------
# Binary ROM image: what the host actually downloads over HBM (§3.5).
# Layout: a symbol table (names referenced by instructions) followed by
# fixed-width instruction words. Loops serialize as LOOP/END marker words
# so the ROM stays a flat array the fetch unit can walk.
# ----------------------------------------------------------------------

_OP_SCALAR = 1
_OP_VECTOR = 2
_OP_TRANSFER = 3
_OP_VECDUP = 4
_OP_SPMV = 5
_OP_CONTROL = 6
_OP_LOOP = 7
_OP_END = 8

_MAGIC = b"RSQP"
_NO_SYMBOL = 0xFFFF
_WORD = struct.Struct("<BBHHHHdxx")  # opcode, sub, 4 symbol ids, 1 f64
assert _WORD.size == ROM_WORD_BYTES + 4  # doc constant covers payload


class _SymbolTable:
    def __init__(self):
        self.names: list[str] = []
        self.ids: dict[str, int] = {}

    def intern(self, name) -> int:
        if name is None:
            return _NO_SYMBOL
        if not isinstance(name, str):
            raise SimulationError(f"expected a name, got {name!r}")
        if name not in self.ids:
            self.ids[name] = len(self.names)
            self.names.append(name)
        return self.ids[name]


def _operand_pair(symbols, ref):
    """Split a scalar-or-register operand into (symbol id, immediate)."""
    if isinstance(ref, str):
        return symbols.intern(ref), 0.0
    if ref is None:
        return _NO_SYMBOL, 0.0
    return _NO_SYMBOL - 1, float(ref)  # 0xFFFE marks an immediate


def _encode_one(symbols, instr) -> bytes:
    if isinstance(instr, ScalarOp):
        sid1, imm1 = _operand_pair(symbols, instr.src1)
        sid2, imm2 = _operand_pair(symbols, instr.src2)
        # Only one immediate slot: encode src2's immediate, src1 must be
        # a register when src2 carries the immediate and vice versa.
        if sid1 == _NO_SYMBOL - 1 and sid2 == _NO_SYMBOL - 1:
            raise SimulationError(
                "scalar op with two immediates is not encodable")
        imm = imm1 if sid1 == _NO_SYMBOL - 1 else imm2
        sub = list(ScalarOpKind).index(instr.op)
        return _WORD.pack(_OP_SCALAR, sub, symbols.intern(instr.dst),
                          sid1, sid2, _NO_SYMBOL, imm)
    if isinstance(instr, VectorOp):
        sub = list(VectorOpKind).index(instr.op)
        srcs = list(instr.srcs) + [None] * (3 - len(instr.srcs))
        aid, a_imm = _operand_pair(symbols, instr.alpha)
        bid, b_imm = _operand_pair(symbols, instr.beta)
        # alpha/beta encode into two extra words when present.
        head = _WORD.pack(_OP_VECTOR, sub, symbols.intern(instr.dst),
                          symbols.intern(srcs[0]), symbols.intern(srcs[1]),
                          symbols.intern(srcs[2]), 0.0)
        tail_a = _WORD.pack(_OP_VECTOR, 0xA0, aid, 0, 0, 0, a_imm)
        tail_b = _WORD.pack(_OP_VECTOR, 0xB0, bid, 0, 0, 0, b_imm)
        return head + tail_a + tail_b
    if isinstance(instr, DataTransfer):
        sub = 0 if instr.direction == "load" else 1
        return _WORD.pack(_OP_TRANSFER, sub, symbols.intern(instr.name),
                          _NO_SYMBOL, _NO_SYMBOL, _NO_SYMBOL, 0.0)
    if isinstance(instr, VecDup):
        return _WORD.pack(_OP_VECDUP, 0, symbols.intern(instr.cvb),
                          symbols.intern(instr.src), _NO_SYMBOL,
                          _NO_SYMBOL, 0.0)
    if isinstance(instr, SpMV):
        return _WORD.pack(_OP_SPMV, 0, symbols.intern(instr.dst),
                          symbols.intern(instr.matrix),
                          symbols.intern(instr.src), _NO_SYMBOL, 0.0)
    if isinstance(instr, Control):
        sid, imm = _operand_pair(symbols, instr.threshold_reg)
        return _WORD.pack(_OP_CONTROL, 0, symbols.intern(instr.reg),
                          sid, _NO_SYMBOL, _NO_SYMBOL, imm)
    raise SimulationError(f"cannot encode {instr!r}")


def encode_program(program: Program) -> bytes:
    """Serialize a program to the ROM image downloaded over HBM."""
    symbols = _SymbolTable()
    body = bytearray()

    def walk(items):
        for item in items:
            if isinstance(item, Loop):
                body.extend(_WORD.pack(_OP_LOOP, 0,
                                       symbols.intern(item.name),
                                       _NO_SYMBOL, _NO_SYMBOL, _NO_SYMBOL,
                                       float(item.max_iter)))
                walk(item.body)
                body.extend(_WORD.pack(_OP_END, 0, _NO_SYMBOL, _NO_SYMBOL,
                                       _NO_SYMBOL, _NO_SYMBOL, 0.0))
            else:
                body.extend(_encode_one(symbols, item))

    walk(program.instructions)
    table = "\x00".join(symbols.names).encode("utf-8")
    header = _MAGIC + struct.pack("<II", len(table), len(body))
    return header + table + bytes(body)


def decode_program(image: bytes) -> Program:
    """Reconstruct a program from a ROM image (inverse of encode)."""
    if image[:4] != _MAGIC:
        raise SimulationError("bad ROM magic")
    table_len, body_len = struct.unpack_from("<II", image, 4)
    offset = 4 + 8  # magic + two u32 lengths
    table = image[offset:offset + table_len].decode("utf-8")
    names = table.split("\x00") if table else []
    body = image[offset + table_len:offset + table_len + body_len]
    if len(body) != body_len or body_len % _WORD.size:
        raise SimulationError("truncated ROM body")

    def operand_of(sid, imm):
        if sid == _NO_SYMBOL:
            return None
        if sid == _NO_SYMBOL - 1:
            return imm
        return names[sid]

    words = [body[i:i + _WORD.size]
             for i in range(0, len(body), _WORD.size)]
    stack: list[list] = [[]]
    loop_meta: list[tuple] = []
    index = 0
    while index < len(words):
        op, sub, f0, f1, f2, f3, imm = _WORD.unpack(words[index])
        if op == _OP_LOOP:
            loop_meta.append((names[f0], int(imm)))
            stack.append([])
        elif op == _OP_END:
            body_items = stack.pop()
            name, max_iter = loop_meta.pop()
            stack[-1].append(Loop(body=body_items, max_iter=max_iter,
                                  name=name))
        elif op == _OP_SCALAR:
            kind = list(ScalarOpKind)[sub]
            src1 = operand_of(f1, imm)
            src2 = operand_of(f2, imm)
            stack[-1].append(ScalarOp(kind, names[f0], src1, src2))
        elif op == _OP_VECTOR:
            kind = list(VectorOpKind)[sub]
            _, _, aid, _, _, _, a_imm = _WORD.unpack(words[index + 1])
            _, _, bid, _, _, _, b_imm = _WORD.unpack(words[index + 2])
            srcs = tuple(names[s] for s in (f1, f2, f3)
                         if s != _NO_SYMBOL)
            stack[-1].append(VectorOp(
                kind, names[f0], srcs,
                alpha=operand_of(aid, a_imm),
                beta=operand_of(bid, b_imm)))
            index += 2
        elif op == _OP_TRANSFER:
            stack[-1].append(DataTransfer(
                "load" if sub == 0 else "store", names[f0]))
        elif op == _OP_VECDUP:
            stack[-1].append(VecDup(src=names[f1], cvb=names[f0]))
        elif op == _OP_SPMV:
            stack[-1].append(SpMV(matrix=names[f1], src=names[f2],
                                  dst=names[f0]))
        elif op == _OP_CONTROL:
            stack[-1].append(Control(names[f0], operand_of(f1, imm)))
        else:
            raise SimulationError(f"unknown opcode {op}")
        index += 1
    if len(stack) != 1:
        raise SimulationError("unbalanced loop markers in ROM")
    return Program(stack[0])
