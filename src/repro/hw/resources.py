"""FPGA resource model (DSP/FF/LUT), calibrated against paper Table 3.

The fits are linear in interpretable quantities:

* **DSP** — exactly ``5 C`` in every Table 3 row (3 DSPs per
  single-precision multiply-accumulate lane at the paper's stated
  3-DSP/flop density, plus the vector engine's share).
* **FF** — a per-lane pipeline cost plus a per-output-tap cost:
  ``FF ~ 612.6 C + 234.5 total_outputs + 2181`` (max error ~7 % over
  Table 3).
* **LUT** — adds the routing crossbar cross-term that also limits
  ``f_max``: ``LUT ~ 288 C + 179 total_outputs + 248 (max_outputs x
  C / 64) + 3766`` (max error ~8 %).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResourceEstimate", "estimate_resources", "U50_LIMITS",
           "fits_device"]

#: AMD-Xilinx Alveo U50 resource capacity (paper Table 2 platform).
U50_LIMITS = {"dsp": 5952, "ff": 1_743_360, "lut": 871_680}


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated FPGA resource usage of one architecture."""

    dsp: int
    ff: int
    lut: int

    def utilization(self, limits: dict = None) -> dict:
        limits = limits if limits is not None else U50_LIMITS
        return {key: getattr(self, key) / limits[key]
                for key in ("dsp", "ff", "lut")}


# Calibrated coefficients (see module docstring).
_FF_PER_LANE = 612.6
_FF_PER_OUTPUT = 234.5
_FF_BASE = 2181.0
_LUT_PER_LANE = 288.0
_LUT_PER_OUTPUT = 179.0
_LUT_ROUTING = 248.0 / 64.0
_LUT_BASE = 3766.0
_DSP_PER_LANE = 5


def estimate_resources(architecture) -> ResourceEstimate:
    """Estimate DSP/FF/LUT of an :class:`Architecture`."""
    c = architecture.c
    total = architecture.total_outputs
    widest = architecture.max_outputs
    ff = _FF_PER_LANE * c + _FF_PER_OUTPUT * total + _FF_BASE
    lut = (_LUT_PER_LANE * c + _LUT_PER_OUTPUT * total
           + _LUT_ROUTING * widest * c + _LUT_BASE)
    return ResourceEstimate(dsp=_DSP_PER_LANE * c, ff=int(round(ff)),
                            lut=int(round(lut)))


def fits_device(architecture, limits: dict = None) -> bool:
    """Whether the architecture fits the target device (U50 default)."""
    limits = limits if limits is not None else U50_LIMITS
    est = estimate_resources(architecture)
    return all(getattr(est, key) <= limits[key] for key in limits)
