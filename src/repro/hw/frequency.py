"""Achievable clock frequency model, calibrated against paper Table 3.

Synthesizing the 11 architecture candidates of Table 3 reveals that
``f_max`` collapses onto a single axis: the product
``max_outputs x C`` — the size of the alignment/routing crossbar between
the MAC tree's widest output case and the ``C``-wide vector buffers (the
brown block of Figure 1, which the paper identifies as the critical
path). The calibration points:

======================  ==========  ==========
``max_outputs x C``     Table 3 rows  f_max (MHz)
======================  ==========  ==========
<= 128                  16{e}, 32{4d...}  300 (tool cap)
256                     16{16a1e}, 64{4e1g}  ~272
512                     32{16b4d1f}, 64{8d4e1g}  ~254
1024                    32{32a...}   ~176
4096                    64{64a4e1g}  121
======================  ==========  ==========

Between calibration points we interpolate linearly in
``log2(max_outputs x C)``.
"""

from __future__ import annotations

import numpy as np

from .isa import PIPELINE_OVERHEAD  # noqa: F401  (re-export convenience)

__all__ = ["fmax_mhz", "FMAX_CAP_MHZ"]

#: Vendor-tool frequency target: designs close at most this clock.
FMAX_CAP_MHZ = 300.0

#: (log2(max_outputs * C), f_max MHz) calibration table from Table 3.
_CALIBRATION = np.array([
    [7.0, 300.0],    # <= 128: routing is not the critical path
    [8.0, 272.0],    # 256
    [9.0, 254.0],    # 512
    [10.0, 176.0],   # 1024
    [12.0, 121.0],   # 4096
    [14.0, 75.0],    # extrapolation anchor for very wide designs
])


def fmax_mhz(architecture) -> float:
    """Model the achievable clock of an :class:`Architecture` in MHz."""
    complexity = architecture.max_outputs * architecture.c
    x = np.log2(max(complexity, 1))
    if x <= _CALIBRATION[0, 0]:
        return FMAX_CAP_MHZ
    return float(np.interp(x, _CALIBRATION[:, 0], _CALIBRATION[:, 1]))
