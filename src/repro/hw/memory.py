"""HBM memory-system model (paper §3.1).

The U50's HBM is the data exchange between host and accelerator; the
problem matrices are *partitioned across HBM channels* so the SpMV
engine can absorb ``C`` non-zeros per cycle. This module checks that a
chosen architecture is actually feedable: each streamed non-zero costs
8 bytes per cycle (a float32 value plus a packed column index), so a
width-``C`` engine at ``f`` MHz demands ``8 C f`` MB/s of sequential
read bandwidth, spread over enough channels.
"""

from __future__ import annotations

from dataclasses import dataclass

from .frequency import fmax_mhz

__all__ = ["HBMConfig", "U50_HBM", "MatrixPlacement", "HBMPlan",
           "plan_hbm_layout"]

#: Bytes streamed per matrix non-zero: float32 value + 32-bit index.
BYTES_PER_NNZ = 8
#: Bytes per dense vector element moved by data transfers.
BYTES_PER_ELEMENT = 4


@dataclass(frozen=True)
class HBMConfig:
    """One HBM subsystem."""

    channels: int
    bytes_per_s_per_channel: float
    capacity_bytes: int

    @property
    def total_bandwidth(self) -> float:
        return self.channels * self.bytes_per_s_per_channel


#: AMD-Xilinx U50: 8 GB HBM2, 32 pseudo-channels, ~14.4 GB/s each
#: (~460 GB/s aggregate).
U50_HBM = HBMConfig(channels=32, bytes_per_s_per_channel=14.4e9,
                    capacity_bytes=8 * 1024 ** 3)


@dataclass(frozen=True)
class MatrixPlacement:
    """Channel assignment for one streamed matrix."""

    name: str
    nnz: int
    bytes_total: int
    channels: tuple            # channel indices
    bandwidth_needed: float    # bytes/s while streaming

    @property
    def channels_used(self) -> int:
        return len(self.channels)


@dataclass
class HBMPlan:
    """Partitioning of all matrix streams over the HBM channels."""

    config: HBMConfig
    placements: dict           # name -> MatrixPlacement
    vector_bytes: int
    feasible: bool

    @property
    def bytes_total(self) -> int:
        return (sum(p.bytes_total for p in self.placements.values())
                + self.vector_bytes)

    @property
    def capacity_utilization(self) -> float:
        return self.bytes_total / self.config.capacity_bytes

    def summary(self) -> str:
        lines = [f"HBM plan ({self.config.channels} channels, "
                 f"{self.config.total_bandwidth / 1e9:.0f} GB/s): "
                 f"{'feasible' if self.feasible else 'INFEASIBLE'}"]
        for name, p in self.placements.items():
            lines.append(
                f"  {name}: {p.nnz} nnz, {p.bytes_total} B over "
                f"{p.channels_used} channel(s) "
                f"({p.bandwidth_needed / 1e9:.1f} GB/s burst)")
        lines.append(f"  capacity used: "
                     f"{100 * self.capacity_utilization:.2f} %")
        return "\n".join(lines)


def plan_hbm_layout(customization, *, config: HBMConfig = U50_HBM,
                    clock_mhz: float | None = None) -> HBMPlan:
    """Partition a customization's matrix streams across HBM channels.

    Channels are assigned round-robin, each matrix receiving enough
    channels to sustain its burst bandwidth ``8 C f`` (matrices stream
    one at a time in the instruction sequence, so channel sets may be
    sized per matrix independently; they still must exist physically,
    hence the per-matrix feasibility check against the channel count).
    """
    if clock_mhz is None:
        clock_mhz = fmax_mhz(customization.architecture)
    c = customization.c
    burst = BYTES_PER_NNZ * c * clock_mhz * 1e6

    placements: dict[str, MatrixPlacement] = {}
    feasible = True
    next_channel = 0
    for name, matrix_custom in customization.matrices.items():
        needed = max(1, int(-(-burst // config.bytes_per_s_per_channel)))
        if needed > config.channels:
            feasible = False
            needed = config.channels
        channels = tuple((next_channel + k) % config.channels
                         for k in range(needed))
        next_channel = (next_channel + needed) % config.channels
        placements[name] = MatrixPlacement(
            name=name, nnz=matrix_custom.nnz,
            bytes_total=BYTES_PER_NNZ * matrix_custom.nnz,
            channels=channels, bandwidth_needed=burst)

    problem = customization.problem
    vector_bytes = BYTES_PER_ELEMENT * 8 * (problem.n + problem.m)
    plan = HBMPlan(config=config, placements=placements,
                   vector_bytes=vector_bytes, feasible=feasible)
    if plan.bytes_total > config.capacity_bytes:
        plan.feasible = False
    return plan
