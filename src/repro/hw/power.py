"""FPGA power model.

The paper reports the U50 board drawing a steady ~19 W across the whole
benchmark (§5.4) against a 75 W TDP; we model a small static floor plus
a utilization-dependent dynamic term that stays near the measured value.
"""

from __future__ import annotations

from .resources import U50_LIMITS, estimate_resources

__all__ = ["fpga_power_watts", "FPGA_STATIC_W", "FPGA_DYNAMIC_MAX_W"]

#: Static board power (HBM, shell, transceivers).
FPGA_STATIC_W = 18.0
#: Dynamic power at full logic utilization.
FPGA_DYNAMIC_MAX_W = 20.0


def fpga_power_watts(architecture) -> float:
    """Board power of a running architecture (paper measures ~19 W)."""
    est = estimate_resources(architecture)
    util = max(est.utilization(U50_LIMITS).values())
    return FPGA_STATIC_W + FPGA_DYNAMIC_MAX_W * min(util, 1.0)
