"""Optional C kernel layer for the functional simulator (cffi + cc).

The compiled backend (:mod:`repro.hw.compiled`) lowers straight-line
runs of vector instructions into a single C function so the per-solve
hot loop pays one foreign call instead of one Python dispatch per
instruction. This module owns the build machinery:

* :func:`available` — probe once whether a working C toolchain exists.
* :func:`engine` — the process-wide generic kernel library (the shared
  CSR matvec both backends route SpMV through, keeping them
  bit-identical by construction).
* :func:`compile_module` — hash-addressed, disk-cached compilation of
  generated chunk sources (same source is compiled at most once per
  cache directory, ever).

Bit-exactness contract: kernels are compiled with ``-O2
-ffp-contract=off`` and no fast-math, so elementwise float64
expressions evaluate exactly like the equivalent numpy ufunc sequence
(IEEE-754 operations are order-free per element, and contraction into
FMA is disabled), and reduction loops stay strictly sequential (the
compiler may not reassociate floating-point addition). The CSR matvec
accumulates each row left to right — the same order as the SpMV
engine's per-chunk MAC accumulation, which makes the machine's SpMV
numerics engine-faithful when the JIT is active.

Everything degrades gracefully: no compiler, an unwritable cache
directory, or ``REPRO_JIT=0`` in the environment simply means
:func:`available` returns False and both backends fall back to their
pure-numpy paths (which are likewise bit-identical to each other).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import tempfile
from typing import Any, Sequence

from .effect_ir import EFFECT_IR_VERSION

__all__ = ["available", "engine", "compile_module", "CSR_MATVEC_BODY",
           "DOT_BODY", "CODEGEN_VERSION", "cache_dir"]

#: Canonical CSR row-sum loop. Chunk codegen embeds this exact shape so
#: an SpMV fused into a chunk produces the same bits as the engine
#: library's ``k_csr_matvec`` (sequential accumulation may not be
#: reassociated by the compiler, so the source shape pins the result).
CSR_MATVEC_BODY = """\
    for (long r = 0; r < nrows; ++r) {
        double acc = 0.0;
        for (long k = ip[r]; k < ip[r + 1]; ++k)
            acc += val[k] * x[col[k]];
        y[r] = acc;
    }
"""

#: Canonical dot-product loop (strictly sequential, left to right).
#: Both backends route DOT through ``k_dot`` when the JIT is active, and
#: chunk codegen embeds this exact shape, so a DOT fused into a chunk
#: produces the same bits as the engine library call.
DOT_BODY = """\
    double acc = 0.0;
    for (long i = 0; i < n; ++i)
        acc += a[i] * b[i];
"""

_ENGINE_CDEF = """
void k_csr_matvec(const double *val, const long *col, const long *ip,
                  const double *x, double *y, long nrows);
double k_dot(const double *a, const double *b, long n);
void k_csr_matvec_batch(const double *val, const long *col,
                        const long *ip, const double *x, double *y,
                        long nrows, long ncols, long nnz, long batch);
void k_dot_batch(const double *a, const double *b, long n, long batch,
                 double *out);
"""

# The batched kernels operate on lane-minor buffers — element i of lane
# b lives at [i * batch + b], so the innermost loops run across lanes
# over contiguous memory (auto-vectorizable at -O2) while each lane's
# accumulation order stays exactly the solo kernels': the k/i loops
# advance per lane precisely like CSR_MATVEC_BODY / DOT_BODY, and a
# memory-resident float64 accumulator adds identically to a register
# one (no reassociation, no contraction). Lane b of a batched call is
# therefore bit-identical to a solo call on lane b's data.
_ENGINE_SOURCE = """
void k_csr_matvec(const double *val, const long *col, const long *ip,
                  const double *x, double *y, long nrows)
{
%s}

double k_dot(const double *a, const double *b, long n)
{
%s    return acc;
}

void k_csr_matvec_batch(const double *val, const long *col,
                        const long *ip, const double *x, double *y,
                        long nrows, long ncols, long nnz, long batch)
{
    (void)ncols;
    const double * restrict v = val;
    const double * restrict xx = x;
    double * restrict yy = y;
    for (long r = 0; r < nrows; ++r) {
        double * restrict yr = yy + r * batch;
        for (long b = 0; b < batch; ++b)
            yr[b] = 0.0;
        for (long k = ip[r]; k < ip[r + 1]; ++k) {
            const double * restrict vk = v + k * batch;
            const double * restrict xk = xx + col[k] * batch;
            for (long b = 0; b < batch; ++b)
                yr[b] += vk[b] * xk[b];
        }
    }
}

void k_dot_batch(const double *a, const double *b, long n, long batch,
                 double *out)
{
    const double * restrict aa = a;
    const double * restrict bb = b;
    double * restrict oo = out;
    for (long j = 0; j < batch; ++j)
        oo[j] = 0.0;
    for (long i = 0; i < n; ++i) {
        const double * restrict ai = aa + i * batch;
        const double * restrict bi = bb + i * batch;
        for (long j = 0; j < batch; ++j)
            oo[j] += ai[j] * bi[j];
    }
}
""" % (CSR_MATVEC_BODY, DOT_BODY)

_COMPILE_ARGS = ["-O2", "-ffp-contract=off"]

#: Bump when generated-code *semantics* change without the generated
#: source text itself changing (codegen conventions, pointer-table
#: ABI, charge accounting contracts). Part of every module's cache key.
CODEGEN_VERSION = "1"

#: Fingerprint of the kernel layer a generated module may embed or
#: call into. Keying the disk cache on this (not just the generated
#: chunk source) means a cached ``.so`` can never be reused after
#: ``k_csr_matvec`` / ``k_dot``, the codegen contract, or the effect-IR
#: schema changes — a stale binary would silently break either the
#: bit-exactness guarantee or the static verifier's assumptions about
#: what the cached code does.
_KERNEL_VERSION = hashlib.sha256("\x00".join(
    [CODEGEN_VERSION, EFFECT_IR_VERSION, _ENGINE_CDEF,
     _ENGINE_SOURCE]).encode()).hexdigest()

#: The engine library compiles at -O3 (plus the host ISA when the
#: toolchain accepts -march=native) so the batched kernels' lane loops
#: (independent per iteration, `restrict`-qualified) vectorize across
#: lanes at full SIMD width. Bit-exactness is unaffected: no -O level
#: or ISA choice reassociates floating-point reductions without
#: fast-math (and contraction stays off), so the sequential solo loops
#: and each lane's accumulation order produce the same bits as at -O2.
_ENGINE_COMPILE_ARGS = ["-O3", "-ffp-contract=off", "-march=native"]
_ENGINE_FALLBACK_ARGS = ["-O3", "-ffp-contract=off"]

_state: dict[str, Any] = {"probed": False, "engine": None}


def cache_dir() -> str:
    """Directory holding compiled kernel modules, keyed by source hash."""
    return os.environ.get(
        "REPRO_JIT_CACHE",
        os.path.join(tempfile.gettempdir(), "repro_cjit"))


def _jit_enabled() -> bool:
    return os.environ.get("REPRO_JIT", "1") != "0"


def compile_module(cdef: str, source: str, tag: str = "k",
                   args: Sequence[str] | None = None,
                   libraries: Sequence[str] = ()) -> Any:
    """Compile (or load from cache) a cffi module for ``source``.

    Returns the imported module (``.lib`` / ``.ffi`` attributes) or
    ``None`` when the toolchain is unavailable or the build fails.
    Modules are stateless by contract — chunk functions receive their
    pointer tables as arguments — so one compiled module is safely
    shared by every executor (and thread) whose generated source
    matches. ``args`` overrides the compiler flags; ``libraries`` adds
    link libraries (e.g. ``("m",)`` for libm). The cache key covers the
    source, the flags, the libraries, and the kernel/codegen version
    fingerprint, so a stale ``.so`` is never reused across kernel-body
    or codegen-contract changes.
    """
    if not _jit_enabled():
        return None
    try:
        import cffi  # noqa: F401
    except ImportError:
        return None
    compile_args = list(_COMPILE_ARGS if args is None else args)
    libs = list(libraries)
    digest = hashlib.sha256(("\x00".join(
        [_KERNEL_VERSION, cdef, source] + compile_args + libs
    )).encode()).hexdigest()
    name = f"_repro_{tag}_{digest[:16]}"
    root = cache_dir()
    final = os.path.join(root, name)
    try:
        module = _load(name, final)
        if module is not None:
            return module
        os.makedirs(root, exist_ok=True)
        build = tempfile.mkdtemp(prefix=name + ".build.", dir=root)
        try:
            ffi = cffi.FFI()
            ffi.cdef(cdef)
            ffi.set_source(name, source, extra_compile_args=compile_args,
                           libraries=libs)
            ffi.compile(tmpdir=build, verbose=False)
            try:
                os.rename(build, final)
            except OSError:
                pass  # lost a build race; the winner's copy is fine
        finally:
            if os.path.isdir(build) and build != final:
                shutil.rmtree(build, ignore_errors=True)
        return _load(name, final)
    except Exception:
        return None


def _load(name: str, moddir: str) -> Any:
    if not os.path.isdir(moddir):
        return None
    for entry in sorted(os.listdir(moddir)):
        if entry.startswith(name) and entry.endswith(".so"):
            spec = importlib.util.spec_from_file_location(
                name, os.path.join(moddir, entry))
            if spec is None or spec.loader is None:
                return None
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            return module
    return None


def engine() -> Any:
    """The generic kernel library, or ``None`` when JIT is unavailable.

    Probed exactly once per process; a failed probe (missing compiler,
    read-only filesystem, ``REPRO_JIT=0``) pins the process to the
    numpy fallback so both backends stay mutually consistent.
    """
    if not _state["probed"]:
        _state["engine"] = (
            compile_module(_ENGINE_CDEF, _ENGINE_SOURCE, tag="engine",
                           args=_ENGINE_COMPILE_ARGS)
            or compile_module(_ENGINE_CDEF, _ENGINE_SOURCE, tag="engine",
                              args=_ENGINE_FALLBACK_ARGS))
        _state["probed"] = True
    return _state["engine"]


def available() -> bool:
    return engine() is not None
