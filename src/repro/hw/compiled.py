"""Compiled execution backend: lower programs to fused numpy closures.

The interpreter in :mod:`repro.hw.machine` pays a per-instruction
Python ``isinstance`` dispatch, dict lookups for every operand, and a
:meth:`~repro.hw.machine.ExecutionStats.charge` call per instruction —
executed thousands of times per QP solve. This module mirrors the
paper's one-time-customization / cheap-per-solve split at the simulator
level: a :class:`CompiledExecutor` lowers each straight-line run of
instructions ("basic block", split at :class:`~repro.hw.isa.Control`
tests and nested :class:`~repro.hw.isa.Loop` nodes) into a list of
fused closures, once, on the block's first execution.

What lowering precomputes:

* **Operand binding** — every vector operand resolves its buffer once;
  closures capture the arrays directly. To make that sound, the
  compiled backend maintains *one stable numpy buffer per VB/CVB name*
  and performs all writes in place (``out=`` ufuncs / ``np.copyto``),
  so a host re-download of e.g. ``rho`` lands in the very array the
  ADMM-body closures already hold. Consequence: vector lengths are
  static per name (the ISA programs we compile always are).
* **Scalar ops** — operands that are literals are constant-folded;
  register operands become direct dict accesses with no
  ``isinstance`` test per execution.
* **Cycle accounting** — per-instruction costs in this ISA are
  state-independent (lengths are static), so a block's total cycles,
  per-class breakdown and instruction count are computed during the
  first (charging) execution and afterwards applied with a single
  :meth:`~repro.hw.machine.ExecutionStats.charge_block` call per block
  execution instead of N ``charge`` calls. Only Control exits are
  evaluated numerically each iteration.
* **C chunk fusion** — when a C toolchain is available (see
  :mod:`repro.hw.cjit`), straight-line runs of two or more vector
  instructions (VecDup, SpMV, AXPBY/EWMUL/SCALE_ADD/COPY/DOT) are
  compiled into one generated C function per run and become a single
  foreign call. The generated per-element expressions replicate the
  closure fold table below exactly, SpMV embeds the engine library's
  row-sum body, and DOT embeds its sequential ``k_dot`` body — so
  fused, unfused, and interpreted execution all produce the same bits.
  Scalar inputs stream through an ``S`` table filled from the register
  file before each call; DOT results return through an ``O`` table
  (read in-chunk by later fused consumers) and are written back to the
  register file after the call. Chunk sources depend only on the
  instruction pattern, so the hash-addressed disk cache compiles each
  program shape once, ever.
* **Whole-loop fusion** — one tier above chunks: an entire
  :class:`~repro.hw.isa.Loop` body (vector ops, SpMV, scalar
  arithmetic, Control exit tests, nested loops, cycle accounting)
  compiles into a single C function entered once per loop execution,
  so the hot ADMM/PDHG iteration pays zero Python dispatch. Built only
  after the body's segments have bound (one node-path run), bypassed
  whenever a fault injector is armed, and falls back to the node path
  on any unsupported body — same bits either way.

The interpreter remains the differential-testing oracle: on error-free
runs the compiled backend produces bit-identical machine state and
identical :class:`~repro.hw.machine.ExecutionStats`. On *failing* runs
the exception type matches, but partial stats may differ (block costs
are applied after the block's closures run).
"""

from __future__ import annotations

import os

import numpy as np

from ..exceptions import ShapeError, SimulationError, VerificationError
from . import cjit
from .effect_ir import BufferRef, EffectIR, EffectStatement
from .isa import (BINARY_SCALAR_OPS, Control, DataTransfer, Loop, Program,
                  ScalarOp, ScalarOpKind, SpMV, VecDup, VectorOp,
                  VectorOpKind)
from .machine import Machine, _LoopExit

__all__ = ["CompiledExecutor", "BACKENDS", "validate_backend",
           "literal_operand"]

#: The two execution backends every runner exposes.
BACKENDS = ("interpret", "compiled")


def validate_backend(backend: str) -> str:
    """Check a backend name, returning it for chaining."""
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def literal_operand(ref) -> float | None:
    """The float value of a literal operand, or None for a register.

    Shared with the batched lowering (:mod:`repro.hw.batched`), which
    must fold exactly the same ``+-1.0`` coefficient cases to stay
    bit-identical with this backend's closures.
    """
    if ref is None or isinstance(ref, str):
        return None
    return float(ref)


_literal = literal_operand


# ---------------------------------------------------------------------------
# scalar arithmetic kernels (float-in/float-out, shared fold + closure path)

def _s_add(a, b):
    return float(a + b)


def _s_sub(a, b):
    return float(a - b)


def _s_mul(a, b):
    return float(a * b)


def _s_div(a, b):
    if b == 0.0:
        raise SimulationError("scalar division by zero")
    return float(a / b)


def _s_max(a, b):
    return float(max(a, b))


def _s_sqrt(a, b):
    if a < 0.0:
        raise SimulationError("sqrt of a negative scalar")
    return float(np.sqrt(a))


def _s_mov(a, b):
    return float(a)


_SCALAR_KERNELS = {
    ScalarOpKind.ADD: _s_add,
    ScalarOpKind.SUB: _s_sub,
    ScalarOpKind.MUL: _s_mul,
    ScalarOpKind.DIV: _s_div,
    ScalarOpKind.MAX: _s_max,
    ScalarOpKind.SQRT: _s_sqrt,
    ScalarOpKind.MOV: _s_mov,
}


# ---------------------------------------------------------------------------
# lowered program nodes

class _Segment:
    """A straight-line basic block, lazily lowered on first execution.

    The first execution charges and runs instruction by instruction
    (identical observable behaviour to the interpreter, including where
    an error leaves the stats); every later execution runs the fused
    closures and *defers* the block's pre-aggregated cycle cost: a
    pending execution counter accrues and the executor applies the
    total with one ``charge_block`` per :meth:`CompiledExecutor.run`
    (stats are only observed between runs, never mid-program).
    """

    __slots__ = ("_executor", "_instructions", "_stats", "_fns",
                 "_cycles", "_by_class", "_count", "pending")

    def __init__(self, executor: "CompiledExecutor", instructions: list):
        self._executor = executor
        self._instructions = instructions
        self._stats = executor.machine.stats
        self._fns = None
        self.pending = 0

    def run(self) -> None:
        fns = self._fns
        if fns is None:
            self._bind()
            return
        for fn in fns:
            fn()
        if self.pending == 0:
            self._executor._dirty.append(self)
        self.pending += 1

    def flush(self) -> None:
        count = self.pending
        if count:
            self.pending = 0
            if count == 1:
                self._stats.charge_block(self._cycles, self._by_class,
                                         self._count)
            else:
                self._stats.charge_block(
                    count * self._cycles,
                    {k: count * v for k, v in self._by_class.items()},
                    count * self._count)

    def _bind(self) -> None:
        executor = self._executor
        machine = executor.machine
        stats = self._stats
        fns: list = []
        total = 0
        by_class: dict = {}
        for instr in self._instructions:
            kind = type(instr).__name__
            cycles = instr.cycles(machine)
            stats.charge(kind, cycles)
            fn = executor._lower_instruction(instr)
            fn()
            fns.append(fn)
            total += cycles
            by_class[kind] = by_class.get(kind, 0) + cycles
        self._count = len(fns)
        # Chunk fusion collapses many ops into one C call with no
        # per-op hook points, so an armed fault injector keeps the
        # unfused closures (which share the same bits anyway).
        if executor.jit and machine.injector is None:
            fns = _fuse_chunks(executor, self._instructions, fns)
        self._fns = fns
        self._cycles = total
        self._by_class = by_class


class _ControlNode:
    """A Control exit test: evaluated every execution, charge deferred."""

    __slots__ = ("_executor", "_stats", "_value", "_threshold", "pending")

    def __init__(self, executor: "CompiledExecutor", instr: Control):
        self._executor = executor
        self._stats = executor.machine.stats
        self._value = executor._scalar_getter(instr.reg)
        self._threshold = executor._scalar_getter(instr.threshold_reg)
        self.pending = 0

    def run(self) -> None:
        if self.pending == 0:
            self._executor._dirty.append(self)
        self.pending += 1
        if self._value() < self._threshold():
            raise _LoopExit()

    def flush(self) -> None:
        count = self.pending
        if count:
            self.pending = 0
            self._stats.charge_block(count, {"Control": count}, count)


class _LoopNode:
    """A Loop wrapper; the body's lowered nodes are shared via the
    executor cache, while ``max_iter``/``name`` are read from this
    node's own Loop object (the accelerator re-wraps the same body
    list in fresh Loop objects per adaptive-rho segment).

    Once the body's segments are all bound (i.e. after the first full
    execution), the executor attempts *whole-loop fusion*: one
    generated C function covering the entire loop — vector ops, SpMV,
    scalar arithmetic, Control tests, nested loops and cycle
    accounting — entered once per :meth:`run`. Fusion is bypassed
    whenever a fault injector is armed (hooks fire on the node path)
    and falls back permanently on any unsupported body."""

    __slots__ = ("_executor", "_loop", "_nodes", "_stats", "_fused")

    def __init__(self, executor: "CompiledExecutor", loop: Loop):
        self._executor = executor
        self._loop = loop
        self._nodes = executor._lower_block(loop.body)
        self._stats = executor.machine.stats
        self._fused = None

    def run(self) -> None:
        executor = self._executor
        if executor.jit and executor.machine.injector is None:
            fused = self._fused
            if fused is None:
                fused = executor._fuse_loop(self._loop.body, self._nodes)
                if fused is not None:
                    self._fused = fused
            if fused and fused.run(self._loop):
                return
        loop = self._loop
        nodes = self._nodes
        iterations = 0
        for _ in range(loop.max_iter):
            try:
                for node in nodes:
                    node.run()
                iterations += 1
            except _LoopExit:
                iterations += 1
                break
        counts = self._stats.loop_iterations
        counts[loop.name] = counts.get(loop.name, 0) + iterations


def _nodes_bound(nodes: list) -> bool:
    """True when every segment in ``nodes`` (recursively) has bound."""
    for node in nodes:
        if isinstance(node, _Segment):
            if node._fns is None:
                return False
        elif isinstance(node, _LoopNode):
            if not _nodes_bound(node._nodes):
                return False
    return True


# ---------------------------------------------------------------------------

class CompiledExecutor:
    """Run :class:`~repro.hw.isa.Program` objects against a
    :class:`~repro.hw.machine.Machine` through lowered basic blocks.

    The executor shares the machine's state dicts and stats object, so
    host-side interactions (``write_hbm``, scalar reads, warm starts)
    work unchanged. Lowered blocks are cached by the identity of the
    instruction *list* — the compiler's section lists are long-lived,
    which is exactly what makes per-solve reuse pay; a strong reference
    to the keyed list is kept so ``id()`` reuse after garbage
    collection can never alias two different programs.
    """

    def __init__(self, machine: Machine, jit: bool | None = None,
                 verify: bool | None = None):
        self.machine = machine
        self._blocks: dict = {}
        self._loop_fused: dict = {}
        self._dirty: list = []
        if jit is None:
            self.jit = cjit.available()
        else:
            self.jit = bool(jit) and cjit.available()
        # Static codegen verification of every fused unit before its
        # first execution (memoized per effect-IR digest; see
        # repro.verify.codegen). REPRO_VERIFY_CODEGEN=0 is a global
        # kill switch that overrides any caller.
        if verify is None:
            verify = True
        self.verify = (bool(verify) and
                       os.environ.get("REPRO_VERIFY_CODEGEN", "1") != "0")

    # -- execution -------------------------------------------------------
    def run(self, program: Program):
        """Execute ``program``; returns the machine's stats object."""
        try:
            for node in self._lower_block(program.instructions):
                node.run()
        finally:
            self._flush()
        return self.machine.stats

    def _flush(self) -> None:
        """Apply deferred block charges; stats are exact between runs."""
        dirty = self._dirty
        if dirty:
            for node in dirty:
                node.flush()
            dirty.clear()

    def _lower_block(self, items: list) -> list:
        key = id(items)
        cached = self._blocks.get(key)
        if cached is not None and cached[0] is items:
            return cached[1]
        nodes: list = []
        current: list = []
        for item in items:
            if isinstance(item, Loop):
                if current:
                    nodes.append(_Segment(self, current))
                    current = []
                nodes.append(_LoopNode(self, item))
            elif isinstance(item, Control):
                if current:
                    nodes.append(_Segment(self, current))
                    current = []
                nodes.append(_ControlNode(self, item))
            else:
                current.append(item)
        if current:
            nodes.append(_Segment(self, current))
        self._blocks[key] = (items, nodes)
        return nodes

    def _fuse_loop(self, body: list, nodes: list):
        """Whole-loop fusion for ``body`` (cached by list identity).

        Returns a :class:`_FusedLoop`, ``False`` when the body is
        permanently unfusable (unsupported instruction, nested
        zero-trip loop, compile failure — the node path stays), or
        ``None`` when the body's segments have not all bound yet (the
        caller retries on a later run; only genuine build verdicts are
        cached).
        """
        key = id(body)
        cached = self._loop_fused.get(key)
        if cached is not None and cached[0] is body:
            return cached[1]
        if not _nodes_bound(nodes):
            return None
        try:
            builder = _LoopBuilder(self)
            builder.emit_body_ir(body)
            if self.verify:
                from ..verify.codegen import ensure_codegen_verified
                ensure_codegen_verified(builder.effect_ir(), body,
                                        self.machine)
            fused = builder._finish_loop()
        except VerificationError:
            raise
        except Exception:
            fused = None
        if fused is None:
            fused = False
        self._loop_fused[key] = (body, fused)
        return fused

    # -- operand binding -------------------------------------------------
    def _resident(self, name: str) -> np.ndarray:
        machine = self.machine
        if name in machine.vb:
            return machine.vb[name]
        if name in machine.cvb:
            return machine.cvb[name]
        raise SimulationError(f"vector {name!r} not resident on chip")

    def _dst_buffer(self, space: dict, name: str, length: int) -> np.ndarray:
        """The stable in-place destination buffer for ``name``."""
        buf = space.get(name)
        if (isinstance(buf, np.ndarray) and buf.dtype == np.float64
                and buf.shape == (length,)):
            return buf
        buf = np.zeros(length)
        space[name] = buf
        return buf

    def _scalar_getter(self, ref):
        """A zero-dispatch reader for a scalar register or literal."""
        if isinstance(ref, str):
            scalars = self.machine.scalars

            def get():
                try:
                    return scalars[ref]
                except KeyError:
                    raise SimulationError(
                        f"unknown scalar register {ref!r}") from None
            return get
        value = float(ref)
        return lambda: value

    # -- per-instruction lowering ---------------------------------------
    def _lower_instruction(self, instr):
        if isinstance(instr, ScalarOp):
            return self._lower_scalar(instr)
        if isinstance(instr, VectorOp):
            return self._lower_vector(instr)
        if isinstance(instr, DataTransfer):
            return self._lower_transfer(instr)
        if isinstance(instr, VecDup):
            return self._lower_vecdup(instr)
        if isinstance(instr, SpMV):
            return self._lower_spmv(instr)
        raise SimulationError(f"unknown instruction {instr!r}")

    def _hooked(self, fn, hook_name: str, site: str, buf: np.ndarray):
        """Wrap a closure with the machine's fault-injection hook.

        Bound at lowering time (injectors are armed before the first
        execution) so the fault-free path pays nothing.
        """
        injector = self.machine.injector
        if injector is None:
            return fn
        hook = getattr(injector, hook_name)

        def hooked():
            fn()
            hook(site, buf)
        return hooked

    def _lower_scalar(self, instr: ScalarOp):
        if instr.op in BINARY_SCALAR_OPS and instr.src2 is None:
            raise SimulationError(
                f"binary scalar op {instr.op.value!r} has no src2 "
                f"operand (dst={instr.dst!r})")
        scalars = self.machine.scalars
        dst = instr.dst
        kernel = _SCALAR_KERNELS[instr.op]
        a, b = instr.src1, instr.src2
        a_reg = isinstance(a, str)
        b_reg = isinstance(b, str)
        if not a_reg:
            a = float(a)
        if b is not None and not b_reg:
            b = float(b)

        if not a_reg and not b_reg:
            try:
                value = kernel(a, b)
            except SimulationError:
                value = None  # fold would trap: keep the trapping closure
            if value is not None:
                def fn():
                    scalars[dst] = value
                return fn

            def fn():
                scalars[dst] = kernel(a, b)
            return fn

        if a_reg and b_reg:
            def fn():
                try:
                    scalars[dst] = kernel(scalars[a], scalars[b])
                except KeyError as exc:
                    raise SimulationError(
                        f"unknown scalar register {exc.args[0]!r}") from None
        elif a_reg:
            def fn():
                try:
                    scalars[dst] = kernel(scalars[a], b)
                except KeyError:
                    raise SimulationError(
                        f"unknown scalar register {a!r}") from None
        else:
            def fn():
                try:
                    scalars[dst] = kernel(a, scalars[b])
                except KeyError:
                    raise SimulationError(
                        f"unknown scalar register {b!r}") from None
        return fn

    def _lower_vector(self, instr: VectorOp):
        machine = self.machine
        kind = instr.op
        srcs = instr.srcs
        if kind is VectorOpKind.DOT:
            a = self._resident(srcs[0])
            b = self._resident(srcs[1])
            scalars = machine.scalars
            dst = instr.dst
            engine = cjit.engine()
            if engine is not None and a.shape == b.shape:
                # Same sequential kernel the interpreter's dot() calls,
                # with both pointers prebound to the stable buffers.
                ffi = engine.ffi
                k_dot = engine.lib.k_dot
                pa = ffi.cast("double *", a.ctypes.data)
                pb = ffi.cast("double *", b.ctypes.data)
                n = a.size

                def fn(_hold=(a, b)):
                    scalars[dst] = k_dot(pa, pb, n)
                return fn

            def fn():
                scalars[dst] = float(np.dot(a, b))
            return fn
        if kind is VectorOpKind.AXPBY:
            a = self._resident(srcs[0])
            b = self._resident(srcs[1])
            dst = self._dst_buffer(machine.vb, instr.dst, a.size)
            # alpha/beta of exactly +-1.0 fold away their multiply:
            # x*1.0 == x, (-1.0)*x == -x and u + (-v) == u - v are all
            # exact IEEE identities, so these emit the same bits as the
            # interpreter's alpha*a + beta*b with fewer ufunc calls.
            al, be = _literal(instr.alpha), _literal(instr.beta)
            if al == 1.0 and be == 1.0:
                def fn():
                    np.add(a, b, out=dst)
                return fn
            if al == 1.0 and be == -1.0:
                def fn():
                    np.subtract(a, b, out=dst)
                return fn
            if al == 1.0:
                beta = self._scalar_getter(instr.beta)
                t2 = np.empty_like(b)

                def fn():
                    np.multiply(b, beta(), out=t2)
                    np.add(a, t2, out=dst)
                return fn
            if be == 1.0:
                alpha = self._scalar_getter(instr.alpha)
                t1 = np.empty_like(a)

                def fn():
                    np.multiply(a, alpha(), out=t1)
                    np.add(t1, b, out=dst)
                return fn
            if be == -1.0:
                alpha = self._scalar_getter(instr.alpha)
                t1 = np.empty_like(a)

                def fn():
                    np.multiply(a, alpha(), out=t1)
                    np.subtract(t1, b, out=dst)
                return fn
            if al == -1.0:
                beta = self._scalar_getter(instr.beta)
                t2 = np.empty_like(b)

                def fn():
                    np.multiply(b, beta(), out=t2)
                    np.subtract(t2, a, out=dst)
                return fn
            alpha = self._scalar_getter(instr.alpha)
            beta = self._scalar_getter(instr.beta)
            t1 = np.empty_like(a)
            t2 = np.empty_like(b)

            def fn():
                np.multiply(a, alpha(), out=t1)
                np.multiply(b, beta(), out=t2)
                np.add(t1, t2, out=dst)
            return fn
        if kind is VectorOpKind.SCALE_ADD:
            a = self._resident(srcs[0])
            b = self._resident(srcs[1])
            dst = self._dst_buffer(machine.vb, instr.dst, a.size)
            al = _literal(instr.alpha)
            if al == 1.0:
                def fn():
                    np.add(a, b, out=dst)
                return fn
            if al == -1.0:
                def fn():
                    np.subtract(a, b, out=dst)
                return fn
            alpha = self._scalar_getter(instr.alpha)
            t = np.empty_like(b)

            def fn():
                np.multiply(b, alpha(), out=t)
                np.add(a, t, out=dst)
            return fn
        if kind is VectorOpKind.EWMUL:
            a = self._resident(srcs[0])
            b = self._resident(srcs[1])
            dst = self._dst_buffer(machine.vb, instr.dst, a.size)

            def fn():
                np.multiply(a, b, out=dst)
            return fn
        if kind is VectorOpKind.CLIP:
            a = self._resident(srcs[0])
            lo = self._resident(srcs[1])
            hi = self._resident(srcs[2])
            dst = self._dst_buffer(machine.vb, instr.dst, a.size)

            def fn():
                np.clip(a, lo, hi, out=dst)
            return fn
        if kind is VectorOpKind.COPY:
            a = self._resident(srcs[0])
            dst = self._dst_buffer(machine.vb, instr.dst, a.size)

            def fn():
                np.copyto(dst, a)
            return fn
        raise SimulationError(f"unknown vector op {kind}")

    def _lower_transfer(self, instr: DataTransfer):
        machine = self.machine
        name = instr.name
        if instr.direction == "load":
            hbm = machine.hbm
            if name not in hbm:
                raise SimulationError(f"HBM vector {name!r} missing")
            dst = self._dst_buffer(machine.vb, name, int(hbm[name].size))

            def fn():
                src = hbm.get(name)
                if src is None:
                    raise SimulationError(f"HBM vector {name!r} missing")
                if src.shape != dst.shape:
                    raise SimulationError(
                        "compiled backend requires static vector lengths: "
                        f"HBM vector {name!r} changed from {dst.size} "
                        f"to {src.size} elements")
                np.copyto(dst, src)
            return self._hooked(fn, "on_load", name, dst)
        if instr.direction == "store":
            vec = self._resident(name)
            hbm = machine.hbm

            def fn():
                hbm[name] = vec.copy()
            return fn
        raise SimulationError(f"bad transfer direction {instr.direction!r}")

    def _lower_vecdup(self, instr: VecDup):
        machine = self.machine
        src = self._resident(instr.src)
        dst = self._dst_buffer(machine.cvb, instr.cvb, src.size)

        def fn():
            np.copyto(dst, src)
        return self._hooked(fn, "on_cvb", instr.cvb, dst)

    def _lower_spmv(self, instr: SpMV):
        machine = self.machine
        resource = machine.matrices[instr.matrix]
        src = machine.cvb.get(instr.src)
        if src is None:
            raise SimulationError(f"SpMV source {instr.src!r} not in CVB")
        matrix = resource.matrix
        rows = int(matrix.shape[0])
        if src.shape != (matrix.shape[1],):
            raise ShapeError(
                f"matvec: expected vector of length {matrix.shape[1]}, "
                f"got shape {src.shape}")
        dst = self._dst_buffer(machine.vb, instr.dst, rows)
        ckernel = resource.ckernel
        if ckernel is not None:
            # Same C row-sum kernel the interpreter's resource.apply()
            # calls, with every pointer prebound to the stable buffers.
            ffi = resource._cffi
            pv, pc, pi = resource._cptrs
            px = ffi.cast("double *", src.ctypes.data)
            py = ffi.cast("double *", dst.ctypes.data)

            def fn(_hold=(src, dst)):
                ckernel(pv, pc, pi, px, py, rows)
            return self._hooked(fn, "on_spmv", instr.dst, dst)
        dense = resource.dense
        if dense is not None:
            # Same BLAS gemv the interpreter's resource.apply() calls,
            # writing into the preallocated destination buffer.
            def fn():
                np.dot(dense, src, out=dst)
            return self._hooked(fn, "on_spmv", instr.dst, dst)
        # Inline CSRMatrix.matvec with preallocated scratch: the same
        # gather -> multiply -> cumsum -> endpoint-difference sequence
        # (bit-identical to the interpreter's matvec call), minus the
        # per-call allocations and wrapper checks.
        data = matrix.data
        indices = matrix.indices
        ip0 = matrix.indptr[:-1]
        ip1 = matrix.indptr[1:]
        nnz = int(data.size)
        if nnz == 0:
            def fn():
                dst[:] = 0.0
            return self._hooked(fn, "on_spmv", instr.dst, dst)
        products = np.empty(nnz)
        running = np.zeros(nnz + 1)
        run_view = running[1:]

        def fn():
            np.multiply(data, src[indices], out=products)
            np.copyto(run_view, products.cumsum())
            np.subtract(running[ip1], running[ip0], out=dst)
        return self._hooked(fn, "on_spmv", instr.dst, dst)


# ---------------------------------------------------------------------------
# C chunk fusion (cjit): collapse straight-line runs of vector-engine
# instructions into one generated C function call.

_CHUNK_CDEF = """
void chunk_run(double **B, long **IA, const long *L, const double *S,
               double *O);
"""

_CHUNKABLE_VECTOR_OPS = frozenset({VectorOpKind.AXPBY, VectorOpKind.EWMUL,
                                   VectorOpKind.SCALE_ADD,
                                   VectorOpKind.COPY, VectorOpKind.DOT})


def _chunkable(executor: CompiledExecutor, instr) -> bool:
    if isinstance(instr, VecDup):
        return True
    if isinstance(instr, VectorOp):
        return instr.op in _CHUNKABLE_VECTOR_OPS
    if isinstance(instr, SpMV):
        resource = executor.machine.matrices.get(instr.matrix)
        return resource is not None and resource.ckernel is not None
    return False


def _fuse_chunks(executor: CompiledExecutor, instrs: list,
                 fns: list) -> list:
    """Replace runs of >= 2 chunkable closures with one C call each.

    Any failure (unsupported pattern, compile error) keeps the numpy
    closures for that run — the fallback is always correct, the fusion
    is only faster.
    """
    out: list = []
    i, n = 0, len(instrs)
    while i < n:
        j = i
        while j < n and _chunkable(executor, instrs[j]):
            j += 1
        if j - i >= 2:
            fn = _build_chunk(executor, instrs[i:j])
            if fn is not None:
                out.append(fn)
            else:
                out.extend(fns[i:j])
        else:
            out.extend(fns[i:j if j > i else i + 1])
        i = max(j, i + 1)
    return out


def _build_chunk(executor: CompiledExecutor, instrs: list):
    try:
        builder = _ChunkBuilder(executor)
        for instr in instrs:
            builder.emit(instr)
        if executor.verify:
            from ..verify.codegen import ensure_codegen_verified
            ensure_codegen_verified(builder.effect_ir(), instrs,
                                    executor.machine)
        return builder.finish()
    except VerificationError:
        # A rejected unit is a genuine codegen defect, never a "fall
        # back to closures" situation: fail loudly.
        raise
    except Exception:
        return None


class _ChunkBuilder:
    """Generate one C function for a run of vector instructions.

    The generated source depends only on the instruction *pattern*
    (opcodes, operand folds, and which operands share buffers) — never
    on vector lengths, scalar values, or pointer addresses, which are
    all passed through the bound ``B``/``IA``/``L``/``S``/``O``
    tables. Equal
    patterns therefore hash to the same cached module, so a process
    compiles each program shape at most once ever per cache directory.

    Bit-exactness: every emitted per-element expression is exactly the
    expression the numpy closure path evaluates (see the AXPBY fold
    table in ``_lower_vector``), and the embedded SpMV loop is the
    engine library's ``k_csr_matvec`` body, so fused chunks produce the
    same bits as both the unfused closures and the interpreter.
    """

    def __init__(self, executor: CompiledExecutor):
        self.executor = executor
        self.machine = executor.machine
        self.bufs: list = []
        self._buf_ids: dict = {}
        self.iarrs: list = []
        self._iarr_ids: dict = {}
        self.lens: list = []
        self.getters: list = []
        self.outs: list = []          # scalar register names, per O slot
        self._scalar_slots: dict = {}  # register -> freshest O slot
        self.blocks: list = []
        # effect-IR recording (consumed by repro.verify.codegen)
        self.effects: list = []
        self._pending_reads: list = []  # ("reg"|"lit", ref, token)
        self._pending_lens: list = []   # (L slot, value)
        self._instr_index = -1
        self._charge_slot: int | None = None

    # -- effect recording ------------------------------------------------
    def _src_ref(self, name: str, arr: np.ndarray) -> BufferRef:
        space = "vb" if name in self.machine.vb else "cvb"
        return BufferRef(space, name, int(arr.shape[0]))

    def _record(self, op: str, index: str, bound: int, *, dst=None,
                srcs=(), expr: str = "", text: str = "", site=None,
                matrix=None, spmv_shape=None, index_arrays=None,
                nnz: int = 0, sreg_writes=(), lane_bound: int = 0) -> None:
        reads = self._pending_reads
        self._pending_reads = []
        len_slots = tuple(self._pending_lens)
        self._pending_lens = []
        self.effects.append(EffectStatement(
            op=op, index=index, bound=int(bound), dst=dst,
            srcs=tuple(srcs), expr=expr, text=text,
            lane_bound=int(lane_bound),
            sreg_reads=tuple((ref, tok) for kind, ref, tok in reads
                             if kind == "reg"),
            lit_reads=tuple((ref, tok) for kind, ref, tok in reads
                            if kind == "lit"),
            sreg_writes=tuple(sreg_writes), len_slots=len_slots,
            instr_index=self._instr_index, site=site, matrix=matrix,
            spmv_shape=spmv_shape, index_arrays=index_arrays, nnz=nnz,
            charge_slot=self._charge_slot))

    def effect_ir(self) -> EffectIR:
        return EffectIR(tier="chunk", batch=1,
                        statements=list(self.effects),
                        lens=tuple(self.lens),
                        source="".join(self.blocks))

    # -- operand tables --------------------------------------------------
    def buf(self, arr: np.ndarray) -> str:
        if arr.dtype != np.float64 or not arr.flags["C_CONTIGUOUS"]:
            raise SimulationError("chunk operand must be contiguous f64")
        key = id(arr)
        idx = self._buf_ids.get(key)
        if idx is None:
            idx = len(self.bufs)
            self.bufs.append(arr)
            self._buf_ids[key] = idx
        return f"B[{idx}]"

    def iarr(self, arr: np.ndarray) -> str:
        if arr.dtype != np.int64 or not arr.flags["C_CONTIGUOUS"]:
            raise SimulationError("chunk index array must be contiguous i64")
        key = id(arr)
        idx = self._iarr_ids.get(key)
        if idx is None:
            idx = len(self.iarrs)
            self.iarrs.append(arr)
            self._iarr_ids[key] = idx
        return f"IA[{idx}]"

    def length(self, n: int) -> str:
        # one slot per use: keeps the source canonical per pattern even
        # when two operand lengths happen to coincide at runtime
        self.lens.append(int(n))
        slot = len(self.lens) - 1
        self._pending_lens.append((slot, int(n)))
        return f"L[{slot}]"

    def scalar(self, ref) -> str:
        # A register a DOT earlier in this chunk wrote must be read from
        # its O slot — the S table is filled before the call and would
        # be stale.
        if isinstance(ref, str) and ref in self._scalar_slots:
            token = f"O[{self._scalar_slots[ref]}]"
            self._pending_reads.append(("reg", ref, token))
            return token
        self.getters.append(self.executor._scalar_getter(ref))
        token = f"S[{len(self.getters) - 1}]"
        if isinstance(ref, str):
            self._pending_reads.append(("reg", ref, token))
        else:
            self._pending_reads.append(("lit", float(ref), token))
        return token

    # -- emission --------------------------------------------------------
    def _elementwise(self, n: int, decls: list, expr: str) -> None:
        body = "".join(f"        {line}\n" for line in decls)
        self.blocks.append(
            "    {\n"
            f"        const long n = {self.length(n)};\n"
            + body +
            "        for (long i = 0; i < n; ++i)\n"
            f"            {expr};\n"
            "    }\n")

    def emit(self, instr) -> None:
        self._instr_index += 1
        if isinstance(instr, VecDup):
            src = self.executor._resident(instr.src)
            dst = self.executor._dst_buffer(self.machine.cvb, instr.cvb,
                                            src.size)
            self._elementwise(src.size, [
                f"const double *a = {self.buf(src)};",
                f"double *d = {self.buf(dst)};",
            ], "d[i] = a[i]")
            self._record("vecdup", "elementwise", src.size,
                         dst=BufferRef("cvb", instr.cvb, dst.shape[0]),
                         srcs=(self._src_ref(instr.src, src),),
                         expr="d[i] = a[i]",
                         site=getattr(instr, "site", None))
            return
        if isinstance(instr, SpMV):
            self._emit_spmv(instr)
            return
        if isinstance(instr, VectorOp):
            self._emit_vector(instr)
            return
        raise SimulationError(f"instruction not chunkable: {instr!r}")

    def _emit_vector(self, instr: VectorOp) -> None:
        executor = self.executor
        kind = instr.op
        site = getattr(instr, "site", None)
        a = executor._resident(instr.srcs[0])
        a_ref = self._src_ref(instr.srcs[0], a)
        if kind is VectorOpKind.COPY:
            dst = executor._dst_buffer(self.machine.vb, instr.dst, a.size)
            self._elementwise(a.size, [
                f"const double *a = {self.buf(a)};",
                f"double *d = {self.buf(dst)};",
            ], "d[i] = a[i]")
            self._record("copy", "elementwise", a.size,
                         dst=BufferRef("vb", instr.dst, dst.shape[0]),
                         srcs=(a_ref,), expr="d[i] = a[i]", site=site)
            return
        b = executor._resident(instr.srcs[1])
        b_ref = self._src_ref(instr.srcs[1], b)
        if kind is VectorOpKind.DOT:
            if a.shape != b.shape:
                raise SimulationError("dot operand shapes differ")
            slot = len(self.outs)
            self.outs.append(instr.dst)
            body = "".join("    " + line + "\n" if line.strip() else line
                           for line in cjit.DOT_BODY.splitlines())
            block = (
                "    {\n"
                f"        const double *a = {self.buf(a)};\n"
                f"        const double *b = {self.buf(b)};\n"
                f"        const long n = {self.length(a.size)};\n"
                + body +
                f"        O[{slot}] = acc;\n"
                "    }\n")
            self.blocks.append(block)
            self._record("dot", "reduce", a.size, srcs=(a_ref, b_ref),
                         text=block,
                         sreg_writes=((instr.dst, f"O[{slot}]"),),
                         site=site)
            self._scalar_slots[instr.dst] = slot
            return
        dst = executor._dst_buffer(self.machine.vb, instr.dst, a.size)
        dst_ref = BufferRef("vb", instr.dst, dst.shape[0])
        decls = [f"const double *a = {self.buf(a)};",
                 f"const double *b = {self.buf(b)};",
                 f"double *d = {self.buf(dst)};"]
        if kind is VectorOpKind.EWMUL:
            self._elementwise(a.size, decls, "d[i] = a[i] * b[i]")
            self._record("ewmul", "elementwise", a.size, dst=dst_ref,
                         srcs=(a_ref, b_ref), expr="d[i] = a[i] * b[i]",
                         site=site)
            return
        if kind is VectorOpKind.SCALE_ADD:
            al = _literal(instr.alpha)
            if al == 1.0:
                expr = "d[i] = a[i] + b[i]"
            elif al == -1.0:
                expr = "d[i] = a[i] - b[i]"
            else:
                decls.append(f"const double s0 = {self.scalar(instr.alpha)};")
                expr = "d[i] = a[i] + b[i] * s0"
            self._elementwise(a.size, decls, expr)
            self._record("scale_add", "elementwise", a.size, dst=dst_ref,
                         srcs=(a_ref, b_ref), expr=expr, site=site)
            return
        if kind is VectorOpKind.AXPBY:
            al, be = _literal(instr.alpha), _literal(instr.beta)
            if al == 1.0 and be == 1.0:
                expr = "d[i] = a[i] + b[i]"
            elif al == 1.0 and be == -1.0:
                expr = "d[i] = a[i] - b[i]"
            elif al == 1.0:
                decls.append(f"const double s0 = {self.scalar(instr.beta)};")
                expr = "d[i] = a[i] + b[i] * s0"
            elif be == 1.0:
                decls.append(f"const double s0 = {self.scalar(instr.alpha)};")
                expr = "d[i] = a[i] * s0 + b[i]"
            elif be == -1.0:
                decls.append(f"const double s0 = {self.scalar(instr.alpha)};")
                expr = "d[i] = a[i] * s0 - b[i]"
            elif al == -1.0:
                decls.append(f"const double s0 = {self.scalar(instr.beta)};")
                expr = "d[i] = b[i] * s0 - a[i]"
            else:
                decls.append(f"const double s0 = {self.scalar(instr.alpha)};")
                decls.append(f"const double s1 = {self.scalar(instr.beta)};")
                expr = "d[i] = a[i] * s0 + b[i] * s1"
            self._elementwise(a.size, decls, expr)
            self._record("axpby", "elementwise", a.size, dst=dst_ref,
                         srcs=(a_ref, b_ref), expr=expr, site=site)
            return
        raise SimulationError(f"vector op not chunkable: {kind}")

    def _emit_spmv(self, instr: SpMV) -> None:
        machine = self.machine
        resource = machine.matrices[instr.matrix]
        if resource.ckernel is None:
            raise SimulationError("SpMV resource has no C kernel")
        src = machine.cvb.get(instr.src)
        if src is None:
            raise SimulationError(f"SpMV source {instr.src!r} not in CVB")
        rows = int(resource.matrix.shape[0])
        dst = self.executor._dst_buffer(machine.vb, instr.dst, rows)
        val, col, ip = resource._carrays
        body = "".join("    " + line + "\n" if line.strip() else line
                       for line in cjit.CSR_MATVEC_BODY.splitlines())
        block = (
            "    {\n"
            f"        const double *val = {self.buf(val)};\n"
            f"        const long *col = {self.iarr(col)};\n"
            f"        const long *ip = {self.iarr(ip)};\n"
            f"        const double *x = {self.buf(src)};\n"
            f"        double *y = {self.buf(dst)};\n"
            f"        const long nrows = {self.length(rows)};\n"
            + body +
            "    }\n")
        self.blocks.append(block)
        shape = (rows, int(resource.matrix.shape[1]))
        self._record(
            "spmv", "gather", rows,
            dst=BufferRef("vb", instr.dst, dst.shape[0]),
            srcs=(BufferRef("matrix", instr.matrix, int(val.shape[0])),
                  BufferRef("cvb", instr.src, int(src.shape[0]))),
            text=block, site=getattr(instr, "site", None),
            matrix=instr.matrix, spmv_shape=shape,
            index_arrays=(col, ip), nnz=int(val.shape[0]))

    # -- finish ----------------------------------------------------------
    def finish(self):
        source = ("void chunk_run(double **B, long **IA, const long *L,\n"
                  "               const double *S, double *O)\n{\n"
                  + "".join(self.blocks) + "}\n")
        module = cjit.compile_module(_CHUNK_CDEF, source, tag="chunk")
        if module is None:
            return None
        ffi = module.ffi
        run = module.lib.chunk_run
        pB = ffi.new("double *[]",
                     [ffi.cast("double *", a.ctypes.data)
                      for a in self.bufs] or [ffi.NULL])
        pI = ffi.new("long *[]",
                     [ffi.cast("long *", a.ctypes.data)
                      for a in self.iarrs] or [ffi.NULL])
        pL = ffi.new("long[]", self.lens or [0])
        s_np = np.zeros(max(1, len(self.getters)))
        pS = ffi.cast("double *", s_np.ctypes.data)
        o_np = np.zeros(max(1, len(self.outs)))
        pO = ffi.cast("double *", o_np.ctypes.data)
        getters = tuple(self.getters)
        outs = tuple(enumerate(self.outs))
        scalars = self.machine.scalars
        hold = (tuple(self.bufs), tuple(self.iarrs), s_np, o_np)
        if not getters and not outs:
            def fn(_hold=hold):
                run(pB, pI, pL, pS, pO)
            return fn

        def fn(_hold=hold):
            for k, get in enumerate(getters):
                s_np[k] = get()
            run(pB, pI, pL, pS, pO)
            for k, name in outs:
                scalars[name] = float(o_np[k])
        return fn


# ---------------------------------------------------------------------------
# Whole-loop C fusion: one generated C function per (loop body, schedule),
# covering loop control, vector ops, SpMV, scalar arithmetic, Control exit
# tests, nested loops and cycle accounting. The host enters C once per
# Loop node execution — per-iteration Python dispatch drops to zero.

_LOOP_CDEF = """
long loop_run(double **B, long **IA, const long *L, double *S,
              unsigned char *W, long *CT, long *IT, long max_iter);
"""

_MISSING = object()


class _FusedLoop:
    """A compiled whole-loop body plus its bound operand tables.

    Call protocol (``run``): prefill the ``S`` scalar table from the
    register file (a missing register means the machine is in a state
    the fused code cannot reproduce — return False so the node path,
    which raises the interpreter's exact error, runs instead), zero
    the write-flag/charge/trip counters, enter C once, then apply
    cycle accounting from the ``CT`` block counters, loop trip counts
    from ``IT``, and write back every scalar register the C code
    flagged in ``W``.

    Accounting matches the node path exactly on error-free runs: each
    ``CT`` slot corresponds to one basic block (or Control test) with
    a precomputed (cycles, by_class, instructions) aggregate, and
    ``IT[0]``/nested slots reproduce the interpreter's
    ``loop_iterations`` updates (nested-loop keys only appear when the
    nested loop was actually entered). A trapped run (division by
    zero, negative sqrt) raises the interpreter's exception type;
    partial stats on failing runs may differ, as documented for the
    compiled backend generally.
    """

    __slots__ = ("_run", "_scalars", "_stats", "_s", "_w", "_ct", "_it",
                 "_prefill", "_writeback", "_charges", "_loops",
                 "_pB", "_pI", "_pL", "_pS", "_pW", "_pCT", "_pIT",
                 "_hold")

    def __init__(self, run, machine: Machine, tables: dict):
        self._run = run
        self._scalars = machine.scalars
        self._stats = machine.stats
        self._s = tables["s"]
        self._w = tables["w"]
        self._ct = tables["ct"]
        self._it = tables["it"]
        self._prefill = tables["prefill"]
        self._writeback = tables["writeback"]
        self._charges = tables["charges"]
        self._loops = tables["loops"]
        self._pB = tables["pB"]
        self._pI = tables["pI"]
        self._pL = tables["pL"]
        self._pS = tables["pS"]
        self._pW = tables["pW"]
        self._pCT = tables["pCT"]
        self._pIT = tables["pIT"]
        self._hold = tables["hold"]

    def run(self, loop: Loop) -> bool:
        scalars = self._scalars
        s = self._s
        for name, slot in self._prefill:
            value = scalars.get(name, _MISSING)
            if value is _MISSING:
                return False
            s[slot] = value
        self._w[:] = 0
        ct = self._ct
        ct[:] = 0
        it = self._it
        it[:] = 0
        rc = self._run(self._pB, self._pI, self._pL, self._pS, self._pW,
                       self._pCT, self._pIT, loop.max_iter)
        total = 0
        instrs = 0
        by_class: dict = {}
        for slot, (cycles, bc, count) in enumerate(self._charges):
            n = int(ct[slot])
            if not n:
                continue
            total += n * cycles
            instrs += n * count
            for kind, kind_cycles in bc.items():
                by_class[kind] = by_class.get(kind, 0) + n * kind_cycles
        if instrs:
            self._stats.charge_block(total, by_class, instrs)
        counts = self._stats.loop_iterations
        counts[loop.name] = counts.get(loop.name, 0) + int(it[0])
        for slot, name in self._loops:
            n = int(it[slot])
            if n:
                counts[name] = counts.get(name, 0) + n
        w = self._w
        for name, slot in self._writeback:
            if w[slot]:
                scalars[name] = float(s[slot])
        if rc == 1:
            raise SimulationError("scalar division by zero")
        if rc == 2:
            raise SimulationError("sqrt of a negative scalar")
        return True


class _LoopBuilder(_ChunkBuilder):
    """Generate one C function for an entire Loop body.

    Extends the chunk builder's operand tables (``B``/``IA``/``L``)
    with a read-write scalar table: every distinct scalar *register*
    gets one ``S`` slot (written in C with its ``W`` flag set; read
    in C after an in-loop write sees the fresh value, exactly like
    the interpreter's register file), and every literal occurrence
    gets its own ``S`` slot so the source stays pattern-canonical.
    Per-block charge counters (``CT``) and per-loop trip counters
    (``IT``) make the cycle accounting exact without any host work
    inside the loop.

    Bit-exactness carries over from the chunk layer: vector
    expressions are the closure fold table verbatim, SpMV/DOT embed
    the engine kernel bodies, CLIP's ternary chain evaluates
    ``np.clip`` exactly (NaN and signed-zero included), and scalar
    C arithmetic on IEEE doubles (`+ - * /`, ``sqrt``, the ``MAX``
    ternary) reproduces the Python float kernels bit for bit, with
    ``-ffp-contract=off`` ruling out FMA contraction.
    """

    def __init__(self, executor: CompiledExecutor):
        super().__init__(executor)
        self.s_entries: list = []     # ("reg", name) | ("lit", value)
        self._reg_slots: dict = {}
        self.reg_reads: set = set()
        self.reg_writes: set = set()
        self.code: list = []
        self.charges: list = []       # per CT slot: (cycles, by_class, n)
        self.loops: list = []         # (IT slot, name) for nested loops
        self.loop_meta: list = []     # (IT slot, name, max_iter)

    # -- scalar table (replaces the chunk S/O split) ---------------------
    def _reg_slot(self, name: str) -> int:
        slot = self._reg_slots.get(name)
        if slot is None:
            slot = len(self.s_entries)
            self.s_entries.append(("reg", name))
            self._reg_slots[name] = slot
        return slot

    def scalar(self, ref) -> str:
        if isinstance(ref, str):
            self.reg_reads.add(ref)
            token = f"S[{self._reg_slot(ref)}]"
            self._pending_reads.append(("reg", ref, token))
            return token
        slot = len(self.s_entries)
        self.s_entries.append(("lit", float(ref)))
        token = f"S[{slot}]"
        self._pending_reads.append(("lit", float(ref), token))
        return token

    def effect_ir(self) -> EffectIR:
        return EffectIR(tier="loop", batch=1,
                        statements=list(self.effects),
                        lens=tuple(self.lens),
                        s_entries=tuple(self.s_entries),
                        charges=tuple(self.charges),
                        loops=tuple(self.loop_meta),
                        reg_reads=frozenset(self.reg_reads),
                        reg_writes=frozenset(self.reg_writes),
                        source="".join(self.code))

    # -- emission --------------------------------------------------------
    def build(self, body: list):
        self.emit_body_ir(body)
        return self._finish_loop()

    def emit_body_ir(self, body: list) -> None:
        """Emit the loop body's source and effect IR (no compilation)."""
        self.code.append(
            "    for (long it0 = 0; it0 < max_iter; ++it0) {\n"
            "    IT[0]++;\n")
        self._emit_body(body, "loop_exit_0")
        self.code.append("    }\n"
                         "    loop_exit_0: ;\n")

    def _emit_body(self, items: list, exit_label: str) -> None:
        run: list = []
        for item in items:
            if isinstance(item, (Loop, Control)):
                self._flush_run(run)
                run = []
                if isinstance(item, Control):
                    self._emit_control(item, exit_label)
                else:
                    self._emit_loop(item)
            else:
                run.append(item)
        self._flush_run(run)

    def _flush_run(self, run: list) -> None:
        if not run:
            return
        machine = self.machine
        slot = len(self.charges)
        cycles = 0
        by_class: dict = {}
        for instr in run:
            kind = type(instr).__name__
            c = instr.cycles(machine)
            cycles += c
            by_class[kind] = by_class.get(kind, 0) + c
        self.charges.append((cycles, by_class, len(run)))
        self.code.append(f"    CT[{slot}]++;\n")
        self._charge_slot = slot
        for instr in run:
            if isinstance(instr, ScalarOp):
                self._emit_scalar(instr)
            elif isinstance(instr, (VectorOp, VecDup, SpMV)):
                before = len(self.blocks)
                self.emit(instr)
                self.code.extend(self.blocks[before:])
                del self.blocks[before:]
            else:
                # DataTransfer (host/HBM traffic) and anything unknown
                # stay on the node path.
                raise SimulationError(
                    f"instruction not loop-fusable: {instr!r}")

    def _emit_control(self, instr: Control, exit_label: str) -> None:
        slot = len(self.charges)
        self.charges.append((1, {"Control": 1}, 1))
        self._charge_slot = slot
        self._instr_index += 1
        value = self.scalar(instr.reg)
        threshold = self.scalar(instr.threshold_reg)
        text = (f"    CT[{slot}]++;\n"
                f"    if ({value} < {threshold}) goto {exit_label};\n")
        self.code.append(text)
        self._record("control", "control", 0,
                     expr=f"{value} < {threshold}", text=text,
                     site=getattr(instr, "site", None))

    def _emit_loop(self, loop: Loop) -> None:
        if loop.max_iter < 1:
            # a zero-trip nested loop must still create its
            # loop_iterations key; the node path handles that.
            raise SimulationError("nested loop with zero trip count")
        it_slot = 1 + len(self.loops)
        self.loops.append((it_slot, loop.name))
        self.loop_meta.append((it_slot, loop.name, int(loop.max_iter)))
        label = f"loop_exit_{it_slot}"
        var = f"it{it_slot}"
        self._charge_slot = None
        self._instr_index += 1
        self.code.append(
            "    {\n"
            f"    const long n_{var} = {self.length(loop.max_iter)};\n"
            f"    for (long {var} = 0; {var} < n_{var}; ++{var}) {{\n"
            f"    IT[{it_slot}]++;\n")
        self._record("loop", "loop", loop.max_iter,
                     site=getattr(loop, "site", None))
        self._emit_body(loop.body, label)
        self.code.append("    }\n"
                         "    }\n"
                         f"    {label}: ;\n")

    def _emit_scalar(self, instr: ScalarOp) -> None:
        if instr.op in BINARY_SCALAR_OPS and instr.src2 is None:
            raise SimulationError(
                f"binary scalar op {instr.op.value!r} has no src2 "
                f"operand (dst={instr.dst!r})")
        self._instr_index += 1
        a = self.scalar(instr.src1)
        b = self.scalar(instr.src2) if instr.src2 is not None else None
        op = instr.op
        guard = ""
        if op is ScalarOpKind.ADD:
            expr = f"{a} + {b}"
        elif op is ScalarOpKind.SUB:
            expr = f"{a} - {b}"
        elif op is ScalarOpKind.MUL:
            expr = f"{a} * {b}"
        elif op is ScalarOpKind.DIV:
            guard = f"    if ({b} == 0.0) return 1;\n"
            expr = f"{a} / {b}"
        elif op is ScalarOpKind.MAX:
            # Python's max(a, b) returns b iff b > a — NaN and signed
            # zeros included — which is exactly this ternary.
            expr = f"({b} > {a}) ? {b} : {a}"
        elif op is ScalarOpKind.SQRT:
            guard = f"    if ({a} < 0.0) return 2;\n"
            expr = f"sqrt({a})"
        elif op is ScalarOpKind.MOV:
            expr = a
        else:  # pragma: no cover - enum is closed
            raise SimulationError(f"unknown scalar op {op}")
        dst = self._reg_slot(instr.dst)
        self.reg_writes.add(instr.dst)
        text = guard + f"    S[{dst}] = {expr}; W[{dst}] = 1;\n"
        self.code.append(text)
        self._record(f"scalar:{op.value}", "scalar", 0, expr=expr,
                     text=text,
                     sreg_writes=((instr.dst, f"S[{dst}]"),),
                     site=getattr(instr, "site", None))

    def _emit_vector(self, instr: VectorOp) -> None:
        executor = self.executor
        kind = instr.op
        if kind is VectorOpKind.DOT:
            a = executor._resident(instr.srcs[0])
            b = executor._resident(instr.srcs[1])
            if a.shape != b.shape:
                raise SimulationError("dot operand shapes differ")
            slot = self._reg_slot(instr.dst)
            self.reg_writes.add(instr.dst)
            body = "".join("    " + line + "\n" if line.strip() else line
                           for line in cjit.DOT_BODY.splitlines())
            block = (
                "    {\n"
                f"        const double *a = {self.buf(a)};\n"
                f"        const double *b = {self.buf(b)};\n"
                f"        const long n = {self.length(a.size)};\n"
                + body +
                f"        S[{slot}] = acc;\n"
                f"        W[{slot}] = 1;\n"
                "    }\n")
            self.blocks.append(block)
            self._record("dot", "reduce", a.size,
                         srcs=(self._src_ref(instr.srcs[0], a),
                               self._src_ref(instr.srcs[1], b)),
                         text=block,
                         sreg_writes=((instr.dst, f"S[{slot}]"),),
                         site=getattr(instr, "site", None))
            return
        if kind is VectorOpKind.CLIP:
            a = executor._resident(instr.srcs[0])
            lo = executor._resident(instr.srcs[1])
            hi = executor._resident(instr.srcs[2])
            if lo.shape != a.shape or hi.shape != a.shape:
                raise SimulationError("clip operand shapes differ")
            dst = executor._dst_buffer(self.machine.vb, instr.dst, a.size)
            # max-then-min with NaN passthrough: evaluates np.clip
            # exactly (verified over all special-value triples).
            block = (
                "    {\n"
                f"        const double *a = {self.buf(a)};\n"
                f"        const double *lo = {self.buf(lo)};\n"
                f"        const double *hi = {self.buf(hi)};\n"
                f"        double *d = {self.buf(dst)};\n"
                f"        const long n = {self.length(a.size)};\n"
                "        for (long i = 0; i < n; ++i) {\n"
                "            const double av = a[i];\n"
                "            const double t = isnan(av) ? av"
                " : (av > lo[i] ? av : lo[i]);\n"
                "            d[i] = isnan(t) ? t : (t < hi[i] ? t : hi[i]);\n"
                "        }\n"
                "    }\n")
            self.blocks.append(block)
            self._record("clip", "elementwise", a.size,
                         dst=BufferRef("vb", instr.dst, dst.shape[0]),
                         srcs=(self._src_ref(instr.srcs[0], a),
                               self._src_ref(instr.srcs[1], lo),
                               self._src_ref(instr.srcs[2], hi)),
                         text=block, site=getattr(instr, "site", None))
            return
        # The generated elementwise loops never broadcast; the closure
        # path would (via numpy), so refuse non-conforming shapes here
        # and let the node path raise or broadcast as it always did.
        if len(instr.srcs) >= 2:
            a = executor._resident(instr.srcs[0])
            b = executor._resident(instr.srcs[1])
            if a.shape != b.shape:
                raise SimulationError("vector operand shapes differ")
        super()._emit_vector(instr)

    # -- finish ----------------------------------------------------------
    def _finish_loop(self):
        source = (
            "#include <math.h>\n"
            "\n"
            "long loop_run(double **B, long **IA, const long *L, double *S,\n"
            "              unsigned char *W, long *CT, long *IT,\n"
            "              long max_iter)\n"
            "{\n"
            "    (void)B; (void)IA; (void)L; (void)W;\n"
            + "".join(self.code) +
            "    return 0;\n"
            "}\n")
        module = cjit.compile_module(_LOOP_CDEF, source, tag="loop",
                                     libraries=("m",))
        if module is None:
            return None
        ffi = module.ffi
        n_s = max(1, len(self.s_entries))
        s_np = np.zeros(n_s)
        for slot, (kind, value) in enumerate(self.s_entries):
            if kind == "lit":
                s_np[slot] = value
        w_np = np.zeros(n_s, dtype=np.uint8)
        ct_np = np.zeros(max(1, len(self.charges)), dtype=np.int64)
        it_np = np.zeros(1 + len(self.loops), dtype=np.int64)
        tables = {
            "s": s_np, "w": w_np, "ct": ct_np, "it": it_np,
            "prefill": tuple((name, self._reg_slots[name])
                             for name in sorted(self.reg_reads)),
            "writeback": tuple((name, self._reg_slots[name])
                               for name in sorted(self.reg_writes)),
            "charges": tuple(self.charges),
            "loops": tuple(self.loops),
            "pB": ffi.new("double *[]",
                          [ffi.cast("double *", arr.ctypes.data)
                           for arr in self.bufs] or [ffi.NULL]),
            "pI": ffi.new("long *[]",
                          [ffi.cast("long *", arr.ctypes.data)
                           for arr in self.iarrs] or [ffi.NULL]),
            "pL": ffi.new("long[]", self.lens or [0]),
            "pS": ffi.cast("double *", s_np.ctypes.data),
            "pW": ffi.cast("unsigned char *", w_np.ctypes.data),
            "pCT": ffi.cast("long *", ct_np.ctypes.data),
            "pIT": ffi.cast("long *", it_np.ctypes.data),
            "hold": (tuple(self.bufs), tuple(self.iarrs)),
        }
        return _FusedLoop(module.lib.loop_run, self.machine, tables)
