"""Effect IR: the statically checkable record of generated C code.

Every C code generator in the simulator — the solo chunk builder and
whole-loop builder in :mod:`repro.hw.compiled` and the batched chunk
builder in :mod:`repro.hw.batched` — emits an :class:`EffectIR`
alongside the source text it generates. The IR is a per-statement
record of *effects*: which buffers each emitted loop reads and writes,
the loop bound it runs over, the scalar registers/literals it consumes
(and through which table token), the per-element expression text, and
— for the whole-loop tier — the charge-slot and trip-counter tables
the cycle accounting is applied from.

:mod:`repro.verify.codegen` consumes this IR to prove, before a
generated kernel ever runs, that every index stays in bounds, that no
statement observes state the solo interpreter would have ordered
differently, that the loop write-sets the batch snapshot-restore
machinery relies on are sound, that every expression is exactly the
ISA semantics it lowers (no reassociation or contraction — the
property the ``-ffp-contract=off`` bit-exactness contract pins at the
source level), and that the fused-tier cycle charges reconcile with
the static cost model.

The IR is emitted by the same builder methods that append the C text,
so it cannot drift from the source by construction; the *verifier*
recomputes every expectation independently from the ISA instructions.
:data:`EFFECT_IR_VERSION` participates in the cjit cache digest (see
:mod:`repro.hw.cjit`), so a cached ``.so`` can never be served with a
stale IR schema.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EFFECT_IR_VERSION", "BufferRef", "EffectStatement",
           "EffectIR"]

#: Schema version of the effect IR. Bump whenever the meaning of any
#: field changes; part of the cjit disk-cache key so compiled modules
#: and their IR can never disagree about the schema.
EFFECT_IR_VERSION = "1"


@dataclass(frozen=True)
class BufferRef:
    """One vector-space operand of an emitted statement.

    ``space`` keys the machine state dicts (``"vb"`` / ``"cvb"`` /
    ``"hbm"`` / ``"scalars"``) plus ``"matrix"`` for streamed matrix
    value blocks. ``length`` is the element count along the vector
    axis (the lane axis of a lane-minor ``(len, B)`` buffer is carried
    by :attr:`EffectIR.batch`, not here).
    """

    space: str
    name: str
    length: int


@dataclass(frozen=True, eq=False)
class EffectStatement:
    """One emitted C statement (loop, kernel block, or scalar line).

    ``index`` names the iteration shape of the emitted code:

    ``"elementwise"``
        ``for i in [0, bound)`` over solo ``(len,)`` buffers.
    ``"flat"``
        one loop over all ``len * batch`` contiguous elements of
        lane-minor buffers (``bound`` is the flattened count).
    ``"laned"``
        row loop over ``bound`` rows with an inner lane loop of
        ``lane_bound`` lanes.
    ``"gather"``
        the CSR SpMV row-sum (indirect reads through ``index_arrays``).
    ``"reduce"``
        the sequential DOT accumulation into a scalar.
    ``"scalar"``
        a scalar-register statement (no vector loop; ``lane_bound``
        is the lane count for the batched tier).
    ``"control"``
        a Control exit test (loop tier).
    ``"loop"``
        a nested-loop entry marker (loop tier; ``bound`` is
        ``max_iter``).
    """

    op: str
    index: str
    bound: int
    dst: BufferRef | None = None
    srcs: tuple[BufferRef, ...] = ()
    expr: str = ""
    text: str = ""
    lane_bound: int = 0
    #: Scalar-register reads as ``(register, token)`` pairs, in the
    #: order the emitted declarations bind them (s0 before s1).
    sreg_reads: tuple[tuple[str, str], ...] = ()
    #: Literal scalar operands as ``(value, token)`` pairs.
    lit_reads: tuple[tuple[float, str], ...] = ()
    #: Scalar-register writes as ``(register, token)`` pairs.
    sreg_writes: tuple[tuple[str, str], ...] = ()
    #: ``(L-table slot, value)`` pairs this statement's bounds read.
    len_slots: tuple[tuple[int, int], ...] = ()
    #: Position of the source instruction in the emitted unit's walk.
    instr_index: int = -1
    site: str | None = None
    matrix: str | None = None
    #: ``(rows, cols)`` of the SpMV matrix, when ``index == "gather"``.
    spmv_shape: tuple[int, int] | None = None
    #: ``(col, ip)`` int64 index arrays of the embedded CSR gather.
    index_arrays: tuple[Any, Any] | None = None
    nnz: int = 0
    #: CT charge slot this statement's cost accrues to (loop tier).
    charge_slot: int | None = None

    def vector_writes(self) -> tuple[tuple[str, str], ...]:
        """``(space, name)`` vector destinations of this statement."""
        if self.dst is None or self.dst.space == "scalars":
            return ()
        return ((self.dst.space, self.dst.name),)


@dataclass(eq=False)
class EffectIR:
    """The full effect record of one generated C unit.

    ``tier`` is ``"chunk"`` (solo straight-line fusion), ``"loop"``
    (whole-loop fusion) or ``"batch-chunk"`` (lane-minor batched
    fusion). ``lens`` is the runtime ``L`` table the generated code
    indexes its loop bounds from; ``consts`` the batched ``S``
    constant table; ``s_entries``/``charges``/``loops`` the loop
    tier's scalar-slot, charge-slot and trip-counter tables.
    """

    tier: str
    batch: int = 1
    version: str = EFFECT_IR_VERSION
    statements: list[EffectStatement] = field(default_factory=list)
    lens: tuple[int, ...] = ()
    consts: tuple[float, ...] = ()
    #: Loop tier: per-S-slot ``("reg", name)`` / ``("lit", value)``.
    s_entries: tuple[tuple[str, Any], ...] = ()
    #: Loop tier: per-CT-slot ``(cycles, by_class, instructions)``.
    charges: tuple[tuple[int, dict, int], ...] = ()
    #: Loop tier: ``(IT slot, loop name, max_iter)`` per nested loop.
    loops: tuple[tuple[int, str, int], ...] = ()
    reg_reads: frozenset = frozenset()
    reg_writes: frozenset = frozenset()
    source: str = ""

    def writes(self) -> set:
        """Every ``(space, name)`` this unit's statements write."""
        out: set = set()
        for stmt in self.statements:
            out.update(stmt.vector_writes())
            for name, _tok in stmt.sreg_writes:
                out.add(("scalars", name))
        return out

    def digest(self) -> str:
        """Stable fingerprint of the IR (shape, tables and source).

        Covers everything the verifier's analyses read, so one
        verification acceptance can be memoized per digest: two units
        with equal digests are verdict-equivalent.
        """
        h = hashlib.sha256()
        h.update(self.version.encode())
        h.update(self.tier.encode())
        h.update(str(self.batch).encode())
        h.update(repr(self.lens).encode())
        h.update(repr(self.consts).encode())
        h.update(repr(self.s_entries).encode())
        h.update(repr([(c, sorted(bc.items()), n)
                       for c, bc, n in self.charges]).encode())
        h.update(repr(self.loops).encode())
        h.update(repr(sorted(self.reg_reads)).encode())
        h.update(repr(sorted(self.reg_writes)).encode())
        for stmt in self.statements:
            h.update(repr((stmt.op, stmt.index, stmt.bound,
                           stmt.dst, stmt.srcs, stmt.expr, stmt.text,
                           stmt.lane_bound, stmt.sreg_reads,
                           stmt.lit_reads, stmt.sreg_writes,
                           stmt.len_slots, stmt.instr_index,
                           stmt.matrix, stmt.spmv_shape, stmt.nnz,
                           stmt.charge_slot)).encode())
            if stmt.index_arrays is not None:
                col, ip = stmt.index_arrays
                h.update(col.tobytes())
                h.update(ip.tobytes())
        h.update(self.source.encode())
        return h.hexdigest()
