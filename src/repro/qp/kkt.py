"""KKT system assembly and the implicit reduced-KKT operator.

Two linear systems appear in OSQP:

* the full quasi-definite KKT system (paper eq. 2)::

      [ P + sigma I   A'        ] [x]   [rhs_x]
      [ A            -diag(1/rho)] [v] = [rhs_z]

  factorized once per ``rho`` by the direct LDL^T backend, and

* the reduced positive-definite system (paper eq. 3)::

      (P + sigma I + A' diag(rho) A) x = rhs

  solved by PCG without ever forming the product ``A' diag(rho) A``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..sparse import CSCMatrix, CSRMatrix

__all__ = ["assemble_kkt_upper", "ReducedKKTOperator"]


def assemble_kkt_upper(p: CSRMatrix, a: CSRMatrix, sigma: float,
                       rho_vec: np.ndarray) -> CSCMatrix:
    """Upper triangle of the KKT matrix (eq. 2) in CSC form for LDL^T.

    Every diagonal entry is stored explicitly (QDLDL requires it), even
    when ``P`` has structural zeros on its diagonal.
    """
    n = p.shape[0]
    m = a.shape[0]
    if a.shape[1] != n:
        raise ShapeError("A must have as many columns as P")
    rho_vec = np.asarray(rho_vec, dtype=np.float64)
    if rho_vec.shape != (m,):
        raise ShapeError("rho_vec must have length m")

    pr, pc, pv = p.triu().to_coo()
    rows = [pr, np.arange(n, dtype=np.int64)]
    cols = [pc, np.arange(n, dtype=np.int64)]
    vals = [pv, np.full(n, float(sigma))]

    # A goes into the upper-right block as A' (rows of A become columns).
    ar, ac, av = a.to_coo()
    rows.append(ac)
    cols.append(ar + n)
    vals.append(av)

    # Lower-right block: -diag(1/rho).
    rows.append(np.arange(n, n + m, dtype=np.int64))
    cols.append(np.arange(n, n + m, dtype=np.int64))
    vals.append(-1.0 / rho_vec)

    return CSCMatrix.from_coo(np.concatenate(rows), np.concatenate(cols),
                              np.concatenate(vals), (n + m, n + m))


class ReducedKKTOperator:
    """Matrix-free operator ``K = P + sigma I + A' diag(rho) A`` (eq. 3).

    The paper stresses that ``K`` must never be formed explicitly because
    ``A'A`` can destroy sparsity; the operator performs the matvec in
    three sparse stages and exposes the exact diagonal for the Jacobi
    preconditioner.
    """

    def __init__(self, p: CSRMatrix, a: CSRMatrix, sigma: float, rho_vec,
                 a_transpose: CSRMatrix | None = None):
        if a.shape[1] != p.shape[0]:
            raise ShapeError("A must have as many columns as P")
        self.p = p
        self.a = a
        # The hardware datapath stores A' explicitly (separate HBM
        # streams for A and A'); the software operator accepts it too so
        # both paths multiply by the same object.
        self.at = a_transpose if a_transpose is not None else a.transpose()
        if self.at.shape != (a.shape[1], a.shape[0]):
            raise ShapeError("a_transpose has the wrong shape")
        self.sigma = float(sigma)
        self.update_rho(rho_vec)

    def update_rho(self, rho_vec) -> None:
        """Install a new (vector) step-size; O(m), no refactorization."""
        rho_vec = np.asarray(rho_vec, dtype=np.float64)
        if rho_vec.ndim == 0:
            rho_vec = np.full(self.a.shape[0], float(rho_vec))
        if rho_vec.shape != (self.a.shape[0],):
            raise ShapeError("rho_vec must have length m")
        if np.any(rho_vec <= 0):
            raise ShapeError("rho must be positive")
        self.rho_vec = rho_vec

    @property
    def n(self) -> int:
        return self.p.shape[0]

    def matvec(self, x) -> np.ndarray:
        ax = self.a.matvec(x)
        return (self.p.matvec(x) + self.sigma * x
                + self.at.matvec(self.rho_vec * ax))

    def diagonal(self) -> np.ndarray:
        """``diag(K)`` without forming ``K``: diag(P) + sigma + sum_i rho_i A_ij^2."""
        weighted = self.a.scale_rows(np.sqrt(self.rho_vec))
        return self.p.diagonal() + self.sigma + weighted.column_sq_sums()

    def rhs(self, x_prev, q, z_prev, y_prev) -> np.ndarray:
        """Right-hand side of eq. 3: ``sigma x - q + A'(rho z - y)``."""
        return (self.sigma * np.asarray(x_prev) - q
                + self.at.matvec(self.rho_vec * np.asarray(z_prev)
                                 - np.asarray(y_prev)))
