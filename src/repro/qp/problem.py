"""Quadratic program container.

The canonical problem form of the paper (eq. 1):

.. math::

    \\text{minimize } (1/2) x^T P x + q^T x
    \\quad \\text{subject to } l \\le A x \\le u

with :math:`P` positive semi-definite, :math:`A \\in R^{m \\times n}` and
possibly infinite bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ShapeError
from ..sparse import CSRMatrix

__all__ = ["QProblem"]


@dataclass
class QProblem:
    """A convex QP ``min 1/2 x'Px + q'x  s.t.  l <= Ax <= u``.

    Attributes
    ----------
    P:
        Symmetric objective matrix, shape ``(n, n)``. Stored full (both
        triangles); builders that only have the upper triangle should
        symmetrize first.
    q:
        Linear objective, length ``n``.
    A:
        Constraint matrix, shape ``(m, n)``.
    l, u:
        Lower/upper bounds, length ``m``; ``-inf``/``+inf`` entries
        encode one-sided constraints.
    name:
        Optional label (used by the benchmark suite and reports).
    """

    P: CSRMatrix
    q: np.ndarray
    A: CSRMatrix
    l: np.ndarray
    u: np.ndarray
    name: str = field(default="qp")

    def __post_init__(self):
        self.q = np.asarray(self.q, dtype=np.float64)
        self.l = np.asarray(self.l, dtype=np.float64)
        self.u = np.asarray(self.u, dtype=np.float64)
        n = self.P.shape[0]
        m = self.A.shape[0]
        if self.P.shape != (n, n):
            raise ShapeError("P must be square")
        if self.q.shape != (n,):
            raise ShapeError(f"q must have length n={n}")
        if self.A.shape[1] != n:
            raise ShapeError("A must have n columns")
        if self.l.shape != (m,) or self.u.shape != (m,):
            raise ShapeError(f"l and u must have length m={m}")
        if np.any(np.isnan(self.l)) or np.any(np.isnan(self.u)):
            raise ShapeError("bounds must not contain NaN")
        if np.any(self.l > self.u):
            raise ShapeError("every lower bound must satisfy l <= u")
        if not self._structurally_symmetric():
            raise ShapeError("P must be symmetric")

    @classmethod
    def _trusted(cls, P: CSRMatrix, q: np.ndarray, A: CSRMatrix,
                 l: np.ndarray, u: np.ndarray, name: str = "qp") -> "QProblem":
        """Construct without validation.

        For internally derived problems only — e.g. diagonally scaled
        copies of an already-validated problem, where symmetry, bound
        ordering and shapes are preserved by construction. The vector
        arguments must already be float64 ndarrays of the right length.
        """
        self = cls.__new__(cls)
        self.P = P
        self.q = q
        self.A = A
        self.l = l
        self.u = u
        self.name = name
        return self

    def _structurally_symmetric(self, tol: float = 1e-9) -> bool:
        """Check P == P^T by comparing canonical COO forms (O(nnz log nnz))."""
        r1, c1, v1 = self.P.to_coo()
        pt = self.P.transpose()
        r2, c2, v2 = pt.to_coo()
        if r1.size != r2.size:
            return False
        return (np.array_equal(r1, r2) and np.array_equal(c1, c2)
                and np.allclose(v1, v2, atol=tol))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of decision variables."""
        return self.P.shape[0]

    @property
    def m(self) -> int:
        """Number of constraints."""
        return self.A.shape[0]

    @property
    def nnz(self) -> int:
        """Total non-zeros ``nnz(P) + nnz(A)`` — the paper's size measure."""
        return self.P.nnz + self.A.nnz

    def objective(self, x) -> float:
        """Objective value ``1/2 x'Px + q'x``."""
        x = np.asarray(x, dtype=np.float64)
        return float(0.5 * np.dot(x, self.P.matvec(x)) + np.dot(self.q, x))

    def primal_residual(self, x, z=None) -> float:
        """Infinity norm of the constraint violation of ``Ax`` (or ``z``)."""
        ax = self.A.matvec(x) if z is None else np.asarray(z)
        below = np.maximum(self.l - ax, 0.0)
        above = np.maximum(ax - self.u, 0.0)
        viol = np.maximum(below, above)
        return float(viol.max()) if viol.size else 0.0

    def equality_mask(self) -> np.ndarray:
        """Boolean mask of rows with ``l == u`` (equality constraints)."""
        return self.l == self.u

    def is_feasible(self, x, tol: float = 1e-6) -> bool:
        return self.primal_residual(x) <= tol

    # ------------------------------------------------------------------
    def permute_variables(self, perm) -> "QProblem":
        """Symmetric variable permutation (paper §4.4).

        Returns the problem over ``x_new = x_old[perm]``: ``P`` is
        permuted symmetrically and the columns of ``A`` follow. Constraint
        rows are untouched, so ``l``/``u`` are shared.
        """
        perm = np.asarray(perm, dtype=np.int64)
        p_new = self.P.permute_rows(perm).permute_cols(perm)
        return QProblem(P=p_new, q=self.q[perm],
                        A=self.A.permute_cols(perm),
                        l=self.l.copy(), u=self.u.copy(),
                        name=self.name)

    def permute_constraints(self, perm) -> "QProblem":
        """Reorder constraint rows of ``A`` (and ``l``, ``u``) by ``perm``."""
        perm = np.asarray(perm, dtype=np.int64)
        return QProblem(P=self.P.copy(), q=self.q.copy(),
                        A=self.A.permute_rows(perm),
                        l=self.l[perm], u=self.u[perm], name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QProblem(name={self.name!r}, n={self.n}, m={self.m}, "
                f"nnz={self.nnz})")
