"""QP problem representation, scaling, and KKT assembly."""

from .kkt import ReducedKKTOperator, assemble_kkt_upper
from .problem import QProblem
from .scaling import (RuizPlan, Scaling, ruiz_equilibrate,
                      ruiz_equilibrate_batch)

__all__ = [
    "QProblem",
    "Scaling",
    "RuizPlan",
    "ruiz_equilibrate",
    "ruiz_equilibrate_batch",
    "ReducedKKTOperator",
    "assemble_kkt_upper",
]
