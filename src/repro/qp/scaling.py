"""Modified Ruiz equilibration, as used by OSQP.

Scaling replaces the problem ``(P, q, A, l, u)`` with

.. math::

    \\bar P = c D P D, \\quad \\bar q = c D q, \\quad
    \\bar A = E A D, \\quad \\bar l = E l, \\quad \\bar u = E u

where ``D``/``E`` are positive diagonal matrices equilibrating the
infinity norms of the columns of the stacked matrix ``[[P, A'], [A, 0]]``
and ``c`` normalizes the cost. Solutions map back as ``x = D x̄``,
``z = E^{-1} z̄``, ``y = E ȳ / c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse import CSRMatrix
from .problem import QProblem

__all__ = ["Scaling", "ruiz_equilibrate"]

#: Bounds on individual scaling factors (same spirit as OSQP's limits).
_MIN_SCALE = 1e-4
_MAX_SCALE = 1e4


@dataclass
class Scaling:
    """Result of equilibration: the scaled problem plus the scaling data."""

    problem: QProblem
    d: np.ndarray      # variable scaling (length n)
    e: np.ndarray      # constraint scaling (length m)
    c: float           # cost scaling

    @property
    def dinv(self) -> np.ndarray:
        return 1.0 / self.d

    @property
    def einv(self) -> np.ndarray:
        return 1.0 / self.e

    # -- mapping scaled iterates back to the original space ------------
    def unscale_x(self, x_bar) -> np.ndarray:
        return self.d * x_bar

    def unscale_z(self, z_bar) -> np.ndarray:
        return self.einv * z_bar

    def unscale_y(self, y_bar) -> np.ndarray:
        return self.e * y_bar / self.c

    # -- mapping original-space values into the scaled space -----------
    def scale_x(self, x) -> np.ndarray:
        return self.dinv * x

    def scale_z(self, z) -> np.ndarray:
        return self.e * z

    def scale_y(self, y) -> np.ndarray:
        return self.c * self.einv * y


def _col_inf_norms_csr(mat: CSRMatrix) -> np.ndarray:
    out = np.zeros(mat.shape[1])
    if mat.nnz:
        np.maximum.at(out, mat.indices, np.abs(mat.data))
    return out


def _row_inf_norms_csr(mat: CSRMatrix) -> np.ndarray:
    out = np.zeros(mat.shape[0])
    if mat.nnz:
        row_of = np.repeat(np.arange(mat.shape[0]), np.diff(mat.indptr))
        np.maximum.at(out, row_of, np.abs(mat.data))
    return out


def _limit(v: np.ndarray) -> np.ndarray:
    """Guard scaling factors: unit scale for empty rows/cols, clamp range."""
    v = np.where(v == 0.0, 1.0, v)
    return np.clip(v, _MIN_SCALE, _MAX_SCALE)


def ruiz_equilibrate(problem: QProblem, iterations: int = 10) -> Scaling:
    """Equilibrate a QP with ``iterations`` rounds of modified Ruiz scaling.

    ``iterations == 0`` returns an identity scaling (useful to disable
    scaling uniformly through one code path).
    """
    n, m = problem.n, problem.m
    d = np.ones(n)
    e = np.ones(m)
    c = 1.0
    p = problem.P.copy()
    q = problem.q.copy()
    a = problem.A.copy()
    l = problem.l.copy()
    u = problem.u.copy()

    for _ in range(iterations):
        # Column infinity norms of the stacked matrix [[P, A'], [A, 0]]:
        # first n columns see P's columns and A's columns; last m columns
        # see A's rows (through A').
        norm_n = np.maximum(_col_inf_norms_csr(p), _col_inf_norms_csr(a))
        norm_m = _row_inf_norms_csr(a)
        delta_n = 1.0 / np.sqrt(_limit(norm_n))
        delta_m = 1.0 / np.sqrt(_limit(norm_m))

        p = p.scale_rows(delta_n).scale_cols(delta_n)
        q = q * delta_n
        a = a.scale_rows(delta_m).scale_cols(delta_n)
        d *= delta_n
        e *= delta_m

        # Cost normalization (OSQP's gamma step).
        p_col_norms = _col_inf_norms_csr(p)
        mean_p = float(p_col_norms.mean()) if n else 1.0
        q_norm = float(np.abs(q).max()) if n else 1.0
        gamma_denominator = max(mean_p, q_norm)
        if gamma_denominator <= 0.0:
            gamma = 1.0
        else:
            gamma = 1.0 / np.clip(gamma_denominator, _MIN_SCALE, _MAX_SCALE)
        p = p * gamma
        q = q * gamma
        c *= gamma

    # Bounds are scaled once with the final E (infinities stay infinite).
    with np.errstate(invalid="ignore"):
        l_s = e * l
        u_s = e * u
    l_s[np.isneginf(problem.l)] = -np.inf
    u_s[np.isposinf(problem.u)] = np.inf

    scaled = QProblem(P=p, q=q, A=a, l=l_s, u=u_s, name=problem.name)
    return Scaling(problem=scaled, d=d, e=e, c=c)
