"""Modified Ruiz equilibration, as used by OSQP.

Scaling replaces the problem ``(P, q, A, l, u)`` with

.. math::

    \\bar P = c D P D, \\quad \\bar q = c D q, \\quad
    \\bar A = E A D, \\quad \\bar l = E l, \\quad \\bar u = E u

where ``D``/``E`` are positive diagonal matrices equilibrating the
infinity norms of the columns of the stacked matrix ``[[P, A'], [A, 0]]``
and ``c`` normalizes the cost. Solutions map back as ``x = D x̄``,
``z = E^{-1} z̄``, ``y = E ȳ / c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse import CSRMatrix
from .problem import QProblem

__all__ = ["Scaling", "ruiz_equilibrate", "ruiz_equilibrate_batch"]

#: Bounds on individual scaling factors (same spirit as OSQP's limits).
_MIN_SCALE = 1e-4
_MAX_SCALE = 1e4


@dataclass
class Scaling:
    """Result of equilibration: the scaled problem plus the scaling data."""

    problem: QProblem
    d: np.ndarray      # variable scaling (length n)
    e: np.ndarray      # constraint scaling (length m)
    c: float           # cost scaling

    @property
    def dinv(self) -> np.ndarray:
        return 1.0 / self.d

    @property
    def einv(self) -> np.ndarray:
        return 1.0 / self.e

    # -- mapping scaled iterates back to the original space ------------
    def unscale_x(self, x_bar) -> np.ndarray:
        return self.d * x_bar

    def unscale_z(self, z_bar) -> np.ndarray:
        return self.einv * z_bar

    def unscale_y(self, y_bar) -> np.ndarray:
        return self.e * y_bar / self.c

    # -- mapping original-space values into the scaled space -----------
    def scale_x(self, x) -> np.ndarray:
        return self.dinv * x

    def scale_z(self, z) -> np.ndarray:
        return self.e * z

    def scale_y(self, y) -> np.ndarray:
        return self.c * self.einv * y


def _col_inf_norms_csr(mat: CSRMatrix) -> np.ndarray:
    out = np.zeros(mat.shape[1])
    if mat.nnz:
        np.maximum.at(out, mat.indices, np.abs(mat.data))
    return out


def _row_inf_norms_csr(mat: CSRMatrix) -> np.ndarray:
    out = np.zeros(mat.shape[0])
    if mat.nnz:
        row_of = np.repeat(np.arange(mat.shape[0]), np.diff(mat.indptr))
        np.maximum.at(out, row_of, np.abs(mat.data))
    return out


def _limit(v: np.ndarray) -> np.ndarray:
    """Guard scaling factors: unit scale for empty rows/cols, clamp range."""
    v = np.where(v == 0.0, 1.0, v)
    return np.clip(v, _MIN_SCALE, _MAX_SCALE)


def ruiz_equilibrate(problem: QProblem, iterations: int = 10) -> Scaling:
    """Equilibrate a QP with ``iterations`` rounds of modified Ruiz scaling.

    ``iterations == 0`` returns an identity scaling (useful to disable
    scaling uniformly through one code path).
    """
    n, m = problem.n, problem.m
    d = np.ones(n)
    e = np.ones(m)
    c = 1.0
    p = problem.P.copy()
    q = problem.q.copy()
    a = problem.A.copy()
    l = problem.l.copy()
    u = problem.u.copy()

    for _ in range(iterations):
        # Column infinity norms of the stacked matrix [[P, A'], [A, 0]]:
        # first n columns see P's columns and A's columns; last m columns
        # see A's rows (through A').
        norm_n = np.maximum(_col_inf_norms_csr(p), _col_inf_norms_csr(a))
        norm_m = _row_inf_norms_csr(a)
        delta_n = 1.0 / np.sqrt(_limit(norm_n))
        delta_m = 1.0 / np.sqrt(_limit(norm_m))

        p = p.scale_rows(delta_n).scale_cols(delta_n)
        q = q * delta_n
        a = a.scale_rows(delta_m).scale_cols(delta_n)
        d *= delta_n
        e *= delta_m

        # Cost normalization (OSQP's gamma step).
        p_col_norms = _col_inf_norms_csr(p)
        mean_p = float(p_col_norms.mean()) if n else 1.0
        q_norm = float(np.abs(q).max()) if n else 1.0
        gamma_denominator = max(mean_p, q_norm)
        if gamma_denominator <= 0.0:
            gamma = 1.0
        else:
            gamma = 1.0 / np.clip(gamma_denominator, _MIN_SCALE, _MAX_SCALE)
        p = p * gamma
        q = q * gamma
        c *= gamma

    # Bounds are scaled once with the final E (infinities stay infinite).
    with np.errstate(invalid="ignore"):
        l_s = e * l
        u_s = e * u
    l_s[np.isneginf(problem.l)] = -np.inf
    u_s[np.isposinf(problem.u)] = np.inf

    scaled = QProblem(P=p, q=q, A=a, l=l_s, u=u_s, name=problem.name)
    return Scaling(problem=scaled, d=d, e=e, c=c)


def ruiz_equilibrate_batch(problems, iterations: int = 10) -> list[Scaling]:
    """Equilibrate B same-sparsity QPs in one vectorized pass.

    Returns per-problem :class:`Scaling` objects bit-identical to
    calling :func:`ruiz_equilibrate` on each problem individually. The
    batched math stacks every lane's numeric data lane-minor —
    ``(nnz, B)`` / ``(n, B)`` arrays — and mirrors the solo operation
    sequence exactly:

    * infinity norms use ``np.maximum.at`` with the shared index
      vectors (max is order-insensitive, so the per-lane result is the
      solo result to the bit);
    * the row/column scalings apply as the same two elementwise
      multiplies ``data * delta[row_of]`` then ``data * delta[indices]``
      that :meth:`CSRMatrix.scale_rows` / ``scale_cols`` perform;
    * the gamma step computes each lane's mean on a contiguous copy of
      its column (numpy's pairwise summation blocking differs between
      contiguous and strided reductions) and runs the scalar
      clip/branch per lane, exactly like the solo code.

    All problems must share one sparsity structure (same ``indices`` /
    ``indptr`` for both P and A) — the same precondition the batched
    accelerator imposes; raises :class:`ValueError` otherwise.
    """
    problems = list(problems)
    if not problems:
        raise ValueError("ruiz_equilibrate_batch needs at least one problem")
    first = problems[0]
    if len(problems) == 1:
        return [ruiz_equilibrate(first, iterations)]
    n, m = first.n, first.m
    bsz = len(problems)
    p_ind, p_ip = first.P.indices, first.P.indptr
    a_ind, a_ip = first.A.indices, first.A.indptr
    for pr in problems[1:]:
        if (pr.n != n or pr.m != m
                or not np.array_equal(pr.P.indices, p_ind)
                or not np.array_equal(pr.P.indptr, p_ip)
                or not np.array_equal(pr.A.indices, a_ind)
                or not np.array_equal(pr.A.indptr, a_ip)):
            raise ValueError(
                "batched equilibration requires one shared sparsity "
                f"structure; problem {pr.name!r} differs from "
                f"{first.name!r}")

    pd = np.stack([np.asarray(pr.P.data, dtype=np.float64)
                   for pr in problems], axis=1)
    ad = np.stack([np.asarray(pr.A.data, dtype=np.float64)
                   for pr in problems], axis=1)
    q = np.stack([np.asarray(pr.q, dtype=np.float64)
                  for pr in problems], axis=1)
    d = np.ones((n, bsz))
    e = np.ones((m, bsz))
    c = np.ones(bsz)
    p_row = np.repeat(np.arange(n), np.diff(p_ip))
    a_row = np.repeat(np.arange(m), np.diff(a_ip))

    # Segment-max plans: grouping each matrix's entries by column (and
    # A's by row — already grouped in CSR order) turns the per-column /
    # per-row infinity norms into `maximum.reduceat` calls over the
    # lane axis. Max over a set is order-insensitive, so regrouping
    # cannot change any lane's bits relative to the solo scan.
    def _segment_plan(group_ids, size):
        order = np.argsort(group_ids, kind="stable")
        sorted_ids = group_ids[order]
        if sorted_ids.size:
            starts = np.flatnonzero(
                np.r_[True, sorted_ids[1:] != sorted_ids[:-1]])
        else:
            starts = np.zeros(0, dtype=np.intp)
        return order, starts, sorted_ids[starts], size

    def _segment_max(values, plan):
        order, starts, present, size = plan
        out = np.zeros((size, bsz))
        if starts.size:
            out[present] = np.maximum.reduceat(values[order], starts,
                                               axis=0)
        return out

    p_by_col = _segment_plan(p_ind, n)
    a_by_col = _segment_plan(a_ind, n)
    a_by_row = _segment_plan(a_row, m)

    for _ in range(iterations):
        norm_n = np.maximum(_segment_max(np.abs(pd), p_by_col),
                            _segment_max(np.abs(ad), a_by_col))
        norm_m = _segment_max(np.abs(ad), a_by_row)
        delta_n = 1.0 / np.sqrt(_limit(norm_n))
        delta_m = 1.0 / np.sqrt(_limit(norm_m))

        pd = (pd * delta_n[p_row]) * delta_n[p_ind]
        q = q * delta_n
        ad = (ad * delta_m[a_row]) * delta_n[a_ind]
        d *= delta_n
        e *= delta_m

        p_col = _segment_max(np.abs(pd), p_by_col)
        if n:
            # Sum each lane along rows of the transposed copy: the solo
            # mean reduces a contiguous vector with numpy's pairwise
            # blocking, and an axis reduction over contiguous rows uses
            # the identical blocking per output element.
            mean_p = np.add.reduce(np.ascontiguousarray(p_col.T),
                                   axis=1) / n
            q_norm = np.abs(q).max(axis=0)
        else:
            mean_p = np.ones(bsz)
            q_norm = np.ones(bsz)
        gd = np.where(q_norm > mean_p, q_norm, mean_p)
        gammas = np.where(gd <= 0.0, 1.0,
                          1.0 / np.clip(gd, _MIN_SCALE, _MAX_SCALE))
        pd = pd * gammas
        q = q * gammas
        c *= gammas

    l = np.stack([np.asarray(pr.l, dtype=np.float64)
                  for pr in problems], axis=1)
    u = np.stack([np.asarray(pr.u, dtype=np.float64)
                  for pr in problems], axis=1)
    with np.errstate(invalid="ignore"):
        l_s = e * l
        u_s = e * u
    l_s[np.isneginf(l)] = -np.inf
    u_s[np.isposinf(u)] = np.inf

    out = []
    for b, pr in enumerate(problems):
        p_mat = CSRMatrix(first.P.shape, np.ascontiguousarray(pd[:, b]),
                          p_ind.copy(), p_ip.copy(), check=False)
        a_mat = CSRMatrix(first.A.shape, np.ascontiguousarray(ad[:, b]),
                          a_ind.copy(), a_ip.copy(), check=False)
        # Diagonal scaling of validated problems preserves every
        # QProblem invariant, so skip the per-lane re-validation.
        scaled = QProblem._trusted(
            p_mat, np.ascontiguousarray(q[:, b]), a_mat,
            np.ascontiguousarray(l_s[:, b]),
            np.ascontiguousarray(u_s[:, b]), name=pr.name)
        out.append(Scaling(problem=scaled,
                           d=np.ascontiguousarray(d[:, b]),
                           e=np.ascontiguousarray(e[:, b]),
                           c=float(c[b])))
    return out
