"""Modified Ruiz equilibration, as used by OSQP.

Scaling replaces the problem ``(P, q, A, l, u)`` with

.. math::

    \\bar P = c D P D, \\quad \\bar q = c D q, \\quad
    \\bar A = E A D, \\quad \\bar l = E l, \\quad \\bar u = E u

where ``D``/``E`` are positive diagonal matrices equilibrating the
infinity norms of the columns of the stacked matrix ``[[P, A'], [A, 0]]``
and ``c`` normalizes the cost. Solutions map back as ``x = D x̄``,
``z = E^{-1} z̄``, ``y = E ȳ / c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse import CSRMatrix
from .problem import QProblem

__all__ = ["Scaling", "RuizPlan", "ruiz_equilibrate", "ruiz_equilibrate_batch"]

#: Bounds on individual scaling factors (same spirit as OSQP's limits).
_MIN_SCALE = 1e-4
_MAX_SCALE = 1e4


@dataclass
class Scaling:
    """Result of equilibration: the scaled problem plus the scaling data."""

    problem: QProblem
    d: np.ndarray      # variable scaling (length n)
    e: np.ndarray      # constraint scaling (length m)
    c: float           # cost scaling

    @property
    def dinv(self) -> np.ndarray:
        return 1.0 / self.d

    @property
    def einv(self) -> np.ndarray:
        return 1.0 / self.e

    # -- mapping scaled iterates back to the original space ------------
    def unscale_x(self, x_bar) -> np.ndarray:
        return self.d * x_bar

    def unscale_z(self, z_bar) -> np.ndarray:
        return self.einv * z_bar

    def unscale_y(self, y_bar) -> np.ndarray:
        return self.e * y_bar / self.c

    # -- mapping original-space values into the scaled space -----------
    def scale_x(self, x) -> np.ndarray:
        return self.dinv * x

    def scale_z(self, z) -> np.ndarray:
        return self.e * z

    def scale_y(self, y) -> np.ndarray:
        return self.c * self.einv * y


def _limit(v: np.ndarray) -> np.ndarray:
    """Guard scaling factors: unit scale for empty rows/cols, clamp range."""
    v = np.where(v == 0.0, 1.0, v)
    return np.minimum(np.maximum(v, _MIN_SCALE), _MAX_SCALE)


def _segment_plan(group_ids: np.ndarray, size: int):
    """Precompute a grouping of entries by ``group_ids`` for segment maxima.

    Returns ``(order, starts, present, size)``: ``order`` sorts entries
    by group, ``starts`` marks each group's first sorted position, and
    ``present`` lists the group ids that actually occur. The sparsity
    pattern is loop invariant, so one plan serves every equilibration
    iteration.
    """
    order = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[order]
    if sorted_ids.size:
        starts = np.flatnonzero(
            np.r_[True, sorted_ids[1:] != sorted_ids[:-1]])
    else:
        starts = np.zeros(0, dtype=np.intp)
    return order, starts, sorted_ids[starts], size


def _segment_max(values: np.ndarray, plan) -> np.ndarray:
    """Per-group maxima over ``values`` (1-D solo or ``(nnz, B)`` batch).

    Max over a set is order-insensitive, so regrouping cannot change
    any bit relative to an entry-order scan; groups with no entries
    report 0.0, matching an ``np.maximum.at`` accumulation into zeros.
    """
    order, starts, present, size = plan
    out = np.zeros((size,) + values.shape[1:])
    if starts.size:
        out[present] = np.maximum.reduceat(values[order], starts, axis=0)
    return out


@dataclass
class RuizPlan:
    """Pattern-derived index plans for :func:`ruiz_equilibrate`.

    Everything here depends only on the sparsity structure of ``(P, A)``,
    so a bound accelerator (:meth:`repro.hw.accelerator.RSQPAccelerator.
    refresh_numeric`) computes it once and reuses it for every numeric
    refresh of the same structure.
    """

    nnz_p: int
    rid: np.ndarray           # per-entry row-factor index into [d, e]
    cid: np.ndarray           # per-entry column-factor index into d
    stacked_by_col: tuple     # segment plan over P&A entries by column
    a_by_row: tuple           # segment plan over A entries by row
    p_by_col: tuple           # segment plan over P entries by column

    @classmethod
    def for_problem(cls, problem: QProblem) -> "RuizPlan":
        n, m = problem.n, problem.m
        P, A = problem.P, problem.A
        p_row = np.repeat(np.arange(n), np.diff(P.indptr))
        a_row = np.repeat(np.arange(m), np.diff(A.indptr))
        rid = np.concatenate([p_row, n + a_row])
        cid = np.concatenate([P.indices, A.indices])
        return cls(nnz_p=P.nnz, rid=rid, cid=cid,
                   stacked_by_col=_segment_plan(cid, n),
                   a_by_row=_segment_plan(a_row, m),
                   p_by_col=_segment_plan(P.indices, n))


def ruiz_equilibrate(problem: QProblem, iterations: int = 10, *,
                     plan: RuizPlan | None = None) -> Scaling:
    """Equilibrate a QP with ``iterations`` rounds of modified Ruiz scaling.

    ``iterations == 0`` returns an identity scaling (useful to disable
    scaling uniformly through one code path).

    The iteration works on raw value arrays with segment plans computed
    once from the (loop-invariant) sparsity pattern: the row/column
    scalings are the same two elementwise multiplies
    ``data * delta[row_of]`` then ``data * delta[indices]`` that
    :meth:`CSRMatrix.scale_rows` / ``scale_cols`` perform, and the
    infinity norms are order-insensitive maxima — so the result is
    bit-identical to equilibrating through matrix objects while doing
    none of the per-iteration structure copies. This function sits on
    the session re-solve hot path (:mod:`repro.serving.session`);
    callers that equilibrate one structure repeatedly pass a cached
    :class:`RuizPlan` to skip even the pattern analysis.
    """
    n, m = problem.n, problem.m
    P, A = problem.P, problem.A
    p_ind, p_ip = P.indices, P.indptr
    a_ind, a_ip = A.indices, A.indptr
    q = problem.q.copy()
    c = 1.0
    if plan is None:
        plan = RuizPlan.for_problem(problem)

    # P's and A's values iterate in lockstep, so stack them into one
    # array: `vals[:nnz_p]` is P, the rest is A. The combined scaling
    # vector `de` holds [delta for the n variables, delta for the m
    # constraints]; `rid` maps each entry to its row factor in that
    # vector (A rows offset by n) and `cid` to its column factor.
    nnz_p = plan.nnz_p
    vals = np.concatenate([P.data, A.data])
    de = np.ones(n + m)
    rid = plan.rid
    cid = plan.cid
    # Column infinity norms of the stacked matrix [[P, A'], [A, 0]]:
    # first n columns see P's columns and A's columns (one segment plan
    # over the combined entries); last m columns see A's rows.
    stacked_by_col = plan.stacked_by_col
    a_by_row = plan.a_by_row
    p_by_col = plan.p_by_col

    for _ in range(iterations):
        abs_vals = np.abs(vals)
        norm_n = _segment_max(abs_vals, stacked_by_col)
        norm_m = _segment_max(abs_vals[nnz_p:], a_by_row)
        ext = 1.0 / np.sqrt(_limit(np.concatenate([norm_n, norm_m])))
        delta_n = ext[:n]

        vals = (vals * ext[rid]) * delta_n[cid]
        q = q * delta_n
        de *= ext

        # Cost normalization (OSQP's gamma step) applies to P only.
        p_col_norms = _segment_max(np.abs(vals[:nnz_p]), p_by_col)
        mean_p = float(p_col_norms.mean()) if n else 1.0
        q_norm = float(np.abs(q).max()) if n else 1.0
        gamma_denominator = max(mean_p, q_norm)
        if gamma_denominator <= 0.0:
            gamma = 1.0
        else:
            gamma = 1.0 / min(max(gamma_denominator, _MIN_SCALE), _MAX_SCALE)
        vals[:nnz_p] *= gamma
        q = q * gamma
        c *= gamma

    d = np.ascontiguousarray(de[:n])
    e = np.ascontiguousarray(de[n:])

    # Bounds are scaled once with the final E (infinities stay infinite).
    with np.errstate(invalid="ignore"):
        l_s = e * problem.l
        u_s = e * problem.u
    l_s[np.isneginf(problem.l)] = -np.inf
    u_s[np.isposinf(problem.u)] = np.inf

    p_mat = CSRMatrix(P.shape, np.ascontiguousarray(vals[:nnz_p]),
                      p_ind.copy(), p_ip.copy(), check=False)
    a_mat = CSRMatrix(A.shape, np.ascontiguousarray(vals[nnz_p:]),
                      a_ind.copy(), a_ip.copy(), check=False)
    # Diagonal scaling of a validated problem preserves every QProblem
    # invariant, so skip re-validation (it would transpose P per call).
    scaled = QProblem._trusted(p_mat, q, a_mat, l_s, u_s, problem.name)
    return Scaling(problem=scaled, d=d, e=e, c=c)


def ruiz_equilibrate_batch(problems, iterations: int = 10) -> list[Scaling]:
    """Equilibrate B same-sparsity QPs in one vectorized pass.

    Returns per-problem :class:`Scaling` objects bit-identical to
    calling :func:`ruiz_equilibrate` on each problem individually. The
    batched math stacks every lane's numeric data lane-minor —
    ``(nnz, B)`` / ``(n, B)`` arrays — and mirrors the solo operation
    sequence exactly:

    * infinity norms use ``np.maximum.at`` with the shared index
      vectors (max is order-insensitive, so the per-lane result is the
      solo result to the bit);
    * the row/column scalings apply as the same two elementwise
      multiplies ``data * delta[row_of]`` then ``data * delta[indices]``
      that :meth:`CSRMatrix.scale_rows` / ``scale_cols`` perform;
    * the gamma step computes each lane's mean on a contiguous copy of
      its column (numpy's pairwise summation blocking differs between
      contiguous and strided reductions) and runs the scalar
      clip/branch per lane, exactly like the solo code.

    All problems must share one sparsity structure (same ``indices`` /
    ``indptr`` for both P and A) — the same precondition the batched
    accelerator imposes; raises :class:`ValueError` otherwise.
    """
    problems = list(problems)
    if not problems:
        raise ValueError("ruiz_equilibrate_batch needs at least one problem")
    first = problems[0]
    if len(problems) == 1:
        return [ruiz_equilibrate(first, iterations)]
    n, m = first.n, first.m
    bsz = len(problems)
    p_ind, p_ip = first.P.indices, first.P.indptr
    a_ind, a_ip = first.A.indices, first.A.indptr
    for pr in problems[1:]:
        if (pr.n != n or pr.m != m
                or not np.array_equal(pr.P.indices, p_ind)
                or not np.array_equal(pr.P.indptr, p_ip)
                or not np.array_equal(pr.A.indices, a_ind)
                or not np.array_equal(pr.A.indptr, a_ip)):
            raise ValueError(
                "batched equilibration requires one shared sparsity "
                f"structure; problem {pr.name!r} differs from "
                f"{first.name!r}")

    pd = np.stack([np.asarray(pr.P.data, dtype=np.float64)
                   for pr in problems], axis=1)
    ad = np.stack([np.asarray(pr.A.data, dtype=np.float64)
                   for pr in problems], axis=1)
    q = np.stack([np.asarray(pr.q, dtype=np.float64)
                  for pr in problems], axis=1)
    d = np.ones((n, bsz))
    e = np.ones((m, bsz))
    c = np.ones(bsz)
    p_row = np.repeat(np.arange(n), np.diff(p_ip))
    a_row = np.repeat(np.arange(m), np.diff(a_ip))

    # Segment-max plans: grouping each matrix's entries by column (and
    # A's by row — already grouped in CSR order) turns the per-column /
    # per-row infinity norms into `maximum.reduceat` calls over the
    # lane axis (same plans the solo path uses, applied lane-wide).
    p_by_col = _segment_plan(p_ind, n)
    a_by_col = _segment_plan(a_ind, n)
    a_by_row = _segment_plan(a_row, m)

    for _ in range(iterations):
        norm_n = np.maximum(_segment_max(np.abs(pd), p_by_col),
                            _segment_max(np.abs(ad), a_by_col))
        norm_m = _segment_max(np.abs(ad), a_by_row)
        delta_n = 1.0 / np.sqrt(_limit(norm_n))
        delta_m = 1.0 / np.sqrt(_limit(norm_m))

        pd = (pd * delta_n[p_row]) * delta_n[p_ind]
        q = q * delta_n
        ad = (ad * delta_m[a_row]) * delta_n[a_ind]
        d *= delta_n
        e *= delta_m

        p_col = _segment_max(np.abs(pd), p_by_col)
        if n:
            # Sum each lane along rows of the transposed copy: the solo
            # mean reduces a contiguous vector with numpy's pairwise
            # blocking, and an axis reduction over contiguous rows uses
            # the identical blocking per output element.
            mean_p = np.add.reduce(np.ascontiguousarray(p_col.T),
                                   axis=1) / n
            q_norm = np.abs(q).max(axis=0)
        else:
            mean_p = np.ones(bsz)
            q_norm = np.ones(bsz)
        gd = np.where(q_norm > mean_p, q_norm, mean_p)
        gammas = np.where(gd <= 0.0, 1.0,
                          1.0 / np.clip(gd, _MIN_SCALE, _MAX_SCALE))
        pd = pd * gammas
        q = q * gammas
        c *= gammas

    l = np.stack([np.asarray(pr.l, dtype=np.float64)
                  for pr in problems], axis=1)
    u = np.stack([np.asarray(pr.u, dtype=np.float64)
                  for pr in problems], axis=1)
    with np.errstate(invalid="ignore"):
        l_s = e * l
        u_s = e * u
    l_s[np.isneginf(l)] = -np.inf
    u_s[np.isposinf(u)] = np.inf

    out = []
    for b, pr in enumerate(problems):
        p_mat = CSRMatrix(first.P.shape, np.ascontiguousarray(pd[:, b]),
                          p_ind.copy(), p_ip.copy(), check=False)
        a_mat = CSRMatrix(first.A.shape, np.ascontiguousarray(ad[:, b]),
                          a_ind.copy(), a_ip.copy(), check=False)
        # Diagonal scaling of validated problems preserves every
        # QProblem invariant, so skip the per-lane re-validation.
        scaled = QProblem._trusted(
            p_mat, np.ascontiguousarray(q[:, b]), a_mat,
            np.ascontiguousarray(l_s[:, b]),
            np.ascontiguousarray(u_s[:, b]), name=pr.name)
        out.append(Scaling(problem=scaled,
                           d=np.ascontiguousarray(d[:, b]),
                           e=np.ascontiguousarray(e[:, b]),
                           c=float(c[b])))
    return out
