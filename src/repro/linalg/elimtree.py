"""Elimination tree and symbolic analysis for sparse LDL^T.

Follows the QDLDL approach used by OSQP: the input is the *upper
triangle* (including every diagonal entry) of a symmetric quasi-definite
matrix in CSC form. The elimination tree parent array and per-column
non-zero counts of the Cholesky/LDL factor ``L`` are computed in one
pass.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import FactorizationError, ShapeError
from ..sparse import CSCMatrix

__all__ = ["etree", "UNKNOWN"]

#: Sentinel parent value for tree roots.
UNKNOWN = -1


def etree(upper: CSCMatrix):
    """Compute the elimination tree of an upper-triangular CSC matrix.

    Parameters
    ----------
    upper:
        Upper triangle (with diagonal) of a symmetric matrix.

    Returns
    -------
    parent:
        ``parent[i]`` is the elimination-tree parent of node ``i`` or
        :data:`UNKNOWN` for roots.
    l_colnnz:
        Number of below-diagonal non-zeros in each column of ``L``.

    Raises
    ------
    FactorizationError:
        If an entry lies below the diagonal or a diagonal entry is
        missing (QDLDL imposes the same requirements).
    """
    n = upper.shape[0]
    if upper.shape[0] != upper.shape[1]:
        raise ShapeError("elimination tree requires a square matrix")
    parent = np.full(n, UNKNOWN, dtype=np.int64)
    l_colnnz = np.zeros(n, dtype=np.int64)
    work = np.full(n, UNKNOWN, dtype=np.int64)
    indptr, indices = upper.indptr, upper.indices
    for j in range(n):
        work[j] = j
        start, end = indptr[j], indptr[j + 1]
        if start == end or indices[end - 1] != j:
            raise FactorizationError(
                f"column {j} has no diagonal entry (required for LDL^T)")
        for p in range(start, end):
            i = indices[p]
            if i > j:
                raise FactorizationError(
                    f"entry ({i}, {j}) below the diagonal; "
                    "input must be upper triangular")
            while work[i] != j:
                if parent[i] == UNKNOWN:
                    parent[i] = j
                l_colnnz[i] += 1
                work[i] = j
                i = parent[i]
    return parent, l_colnnz


def postorder(parent: np.ndarray) -> np.ndarray:
    """Post-order the elimination tree (children before parents)."""
    n = parent.size
    children: list[list[int]] = [[] for _ in range(n)]
    roots = []
    for i in range(n):
        if parent[i] == UNKNOWN:
            roots.append(i)
        else:
            children[parent[i]].append(i)
    order = np.empty(n, dtype=np.int64)
    k = 0
    stack: list[tuple[int, bool]] = [(r, False) for r in reversed(roots)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order[k] = node
            k += 1
        else:
            stack.append((node, True))
            for c in reversed(children[node]):
                stack.append((c, False))
    if k != n:
        raise FactorizationError("elimination tree is not a forest over all nodes")
    return order
