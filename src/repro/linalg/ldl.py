"""Sparse LDL^T factorization in the style of QDLDL (OSQP's direct solver).

The factorization targets symmetric *quasi-definite* matrices — exactly
the KKT matrices produced by OSQP's ADMM iteration, eq. (2) of the RSQP
paper — which admit an LDL^T factorization with non-zero diagonal ``D``
for any symmetric permutation.

The implementation is split into a symbolic phase (elimination tree and
column counts, reusable across iterations with the same sparsity) and a
numeric phase (the actual ``L`` and ``D`` values), mirroring how OSQP
caches the symbolic factorization and only refactorizes numerically when
``rho`` changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import FactorizationError
from ..sparse import CSCMatrix
from .elimtree import UNKNOWN, etree

__all__ = ["LDLFactor", "SymbolicFactor", "ldl_symbolic", "ldl_factor", "ldl_solve"]


@dataclass
class SymbolicFactor:
    """Result of the symbolic analysis of an upper-triangular CSC matrix."""

    n: int
    parent: np.ndarray
    l_colnnz: np.ndarray
    l_indptr: np.ndarray

    @property
    def l_nnz(self) -> int:
        return int(self.l_indptr[-1])


@dataclass
class LDLFactor:
    """Numeric LDL^T factor: ``M = L D L^T`` with unit-diagonal ``L``.

    ``L`` is stored *without* its unit diagonal, in CSC form
    (``l_indptr``, ``l_indices``, ``l_data``).
    """

    n: int
    l_indptr: np.ndarray
    l_indices: np.ndarray
    l_data: np.ndarray
    d: np.ndarray
    dinv: np.ndarray

    @property
    def num_positive_d(self) -> int:
        """Number of positive entries of ``D`` (inertia check)."""
        return int(np.count_nonzero(self.d > 0))

    def solve(self, b) -> np.ndarray:
        """Solve ``L D L^T x = b``."""
        return ldl_solve(self, b)

    def l_dense(self) -> np.ndarray:
        """Dense ``L`` including the unit diagonal (for tests/debugging)."""
        out = np.eye(self.n)
        for j in range(self.n):
            s, e = self.l_indptr[j], self.l_indptr[j + 1]
            out[self.l_indices[s:e], j] = self.l_data[s:e]
        return out


def ldl_symbolic(upper: CSCMatrix) -> SymbolicFactor:
    """Symbolic analysis: elimination tree and ``L`` column pointers."""
    parent, l_colnnz = etree(upper)
    n = upper.shape[0]
    l_indptr = np.zeros(n + 1, dtype=np.int64)
    l_indptr[1:] = np.cumsum(l_colnnz)
    return SymbolicFactor(n=n, parent=parent, l_colnnz=l_colnnz,
                          l_indptr=l_indptr)


def ldl_factor(upper: CSCMatrix,
               symbolic: SymbolicFactor | None = None) -> LDLFactor:
    """Numeric LDL^T factorization of an upper-triangular CSC matrix.

    Raises
    ------
    FactorizationError:
        On a structurally or numerically zero pivot — the matrix is not
        quasi-definite under this ordering.
    """
    if symbolic is None:
        symbolic = ldl_symbolic(upper)
    n = symbolic.n
    parent = symbolic.parent
    l_indptr = symbolic.l_indptr
    l_indices = np.zeros(symbolic.l_nnz, dtype=np.int64)
    l_data = np.zeros(symbolic.l_nnz)
    d = np.zeros(n)
    dinv = np.zeros(n)

    y_vals = np.zeros(n)
    y_markers = np.zeros(n, dtype=bool)
    y_idx = np.zeros(n, dtype=np.int64)
    elim_buffer = np.zeros(n, dtype=np.int64)
    next_space = l_indptr[:-1].copy()

    a_indptr, a_indices, a_data = upper.indptr, upper.indices, upper.data

    d[0] = a_data[a_indptr[1] - 1] if a_indptr[1] > a_indptr[0] else 0.0
    if d[0] == 0.0:
        raise FactorizationError("zero pivot at column 0")
    dinv[0] = 1.0 / d[0]

    for k in range(1, n):
        start, end = a_indptr[k], a_indptr[k + 1]
        # Canonical upper-triangular CSC puts the diagonal last in column k.
        d[k] = a_data[end - 1]
        nnz_y = 0
        for p in range(start, end - 1):
            i = a_indices[p]
            y_vals[i] = a_data[p]
            if not y_markers[i]:
                # Walk up the elimination tree collecting the reach of i.
                y_markers[i] = True
                elim_buffer[0] = i
                nnz_e = 1
                node = parent[i]
                while node != UNKNOWN and node < k:
                    if y_markers[node]:
                        break
                    y_markers[node] = True
                    elim_buffer[nnz_e] = node
                    nnz_e += 1
                    node = parent[node]
                while nnz_e > 0:
                    nnz_e -= 1
                    y_idx[nnz_y] = elim_buffer[nnz_e]
                    nnz_y += 1
        # Sparse triangular solve in reverse topological order.
        for q in range(nnz_y - 1, -1, -1):
            cidx = y_idx[q]
            y_c = y_vals[cidx]
            t = next_space[cidx]
            for p in range(l_indptr[cidx], t):
                y_vals[l_indices[p]] -= l_data[p] * y_c
            l_indices[t] = k
            l_jk = y_c * dinv[cidx]
            l_data[t] = l_jk
            d[k] -= y_c * l_jk
            next_space[cidx] = t + 1
            y_vals[cidx] = 0.0
            y_markers[cidx] = False
        if d[k] == 0.0:
            raise FactorizationError(f"zero pivot at column {k}")
        dinv[k] = 1.0 / d[k]

    return LDLFactor(n=n, l_indptr=l_indptr, l_indices=l_indices,
                     l_data=l_data, d=d, dinv=dinv)


def ldl_solve(factor: LDLFactor, b) -> np.ndarray:
    """Forward/backward substitution: solve ``L D L^T x = b``."""
    x = np.asarray(b, dtype=np.float64).copy()
    if x.shape != (factor.n,):
        raise FactorizationError(
            f"right-hand side must have length {factor.n}")
    indptr, indices, data = factor.l_indptr, factor.l_indices, factor.l_data
    n = factor.n
    # Forward: L y = b (unit lower triangular, columns left to right).
    for j in range(n):
        s, e = indptr[j], indptr[j + 1]
        if s != e:
            x[indices[s:e]] -= data[s:e] * x[j]
    # Diagonal: D z = y.
    x *= factor.dinv
    # Backward: L^T x = z (rows right to left).
    for j in range(n - 1, -1, -1):
        s, e = indptr[j], indptr[j + 1]
        if s != e:
            x[j] -= np.dot(data[s:e], x[indices[s:e]])
    return x
