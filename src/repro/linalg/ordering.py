"""Fill-reducing orderings for sparse symmetric factorization.

OSQP uses AMD; we implement a plain greedy minimum-degree ordering plus
reverse Cuthill-McKee, which are sufficient for the problem sizes the
pure-Python reproduction factorizes directly (the paper's hot path is the
PCG *indirect* solver, which needs no ordering).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..exceptions import ShapeError
from ..sparse import CSCMatrix

__all__ = ["symmetric_adjacency", "minimum_degree", "reverse_cuthill_mckee",
           "natural"]


def symmetric_adjacency(upper: CSCMatrix) -> list[set]:
    """Adjacency sets of the symmetric pattern (diagonal excluded)."""
    n = upper.shape[0]
    if upper.shape[0] != upper.shape[1]:
        raise ShapeError("adjacency requires a square matrix")
    adj: list[set] = [set() for _ in range(n)]
    rows, cols, _ = upper.to_coo()
    for i, j in zip(rows.tolist(), cols.tolist()):
        if i != j:
            adj[i].add(j)
            adj[j].add(i)
    return adj


def natural(n: int) -> np.ndarray:
    """The identity ordering."""
    return np.arange(n, dtype=np.int64)


def minimum_degree(upper: CSCMatrix) -> np.ndarray:
    """Greedy minimum-degree ordering with clique-update elimination.

    Returns ``perm`` such that eliminating variables in the order
    ``perm[0], perm[1], ...`` keeps fill low; use it as a symmetric
    permutation before :func:`repro.linalg.ldl.ldl_factor`.
    """
    adj = symmetric_adjacency(upper)
    n = len(adj)
    eliminated = np.zeros(n, dtype=bool)
    heap = [(len(adj[i]), i) for i in range(n)]
    heapq.heapify(heap)
    perm = np.empty(n, dtype=np.int64)
    k = 0
    while heap:
        deg, node = heapq.heappop(heap)
        if eliminated[node] or deg != len(adj[node]):
            continue  # stale heap entry
        eliminated[node] = True
        perm[k] = node
        k += 1
        neighbors = adj[node]
        # Clique update: connect the remaining neighbors pairwise.
        for u in neighbors:
            adj[u].discard(node)
        live = [u for u in neighbors if not eliminated[u]]
        for idx, u in enumerate(live):
            for v in live[idx + 1:]:
                if v not in adj[u]:
                    adj[u].add(v)
                    adj[v].add(u)
        for u in live:
            heapq.heappush(heap, (len(adj[u]), u))
        adj[node] = set()
    if k != n:
        raise ShapeError("ordering did not visit every node")
    return perm


def reverse_cuthill_mckee(upper: CSCMatrix) -> np.ndarray:
    """Reverse Cuthill-McKee bandwidth-reducing ordering."""
    adj = symmetric_adjacency(upper)
    n = len(adj)
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    degrees = np.array([len(a) for a in adj])
    for start in np.argsort(degrees):
        if visited[start]:
            continue
        visited[start] = True
        queue = [int(start)]
        while queue:
            node = queue.pop(0)
            order.append(node)
            nbrs = sorted((u for u in adj[node] if not visited[u]),
                          key=lambda u: len(adj[u]))
            for u in nbrs:
                visited[u] = True
            queue.extend(nbrs)
    return np.array(order[::-1], dtype=np.int64)
