"""Preconditioned Conjugate Gradient — Algorithm 2 of the RSQP paper.

This is the reference (software) implementation of the inner solver that
RSQP accelerates. The same algorithm, lowered to the RSQP instruction
set, runs on the hardware model in :mod:`repro.hw`; integration tests
assert both produce the same iterates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConvergenceError

__all__ = ["PCGResult", "pcg", "JacobiPreconditioner", "IdentityPreconditioner"]


@dataclass
class PCGResult:
    """Outcome of a PCG solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: list = field(default_factory=list)


class IdentityPreconditioner:
    """No-op preconditioner: ``M = I``."""

    def apply(self, r: np.ndarray) -> np.ndarray:
        return r.copy()


class JacobiPreconditioner:
    """Diagonal (Jacobi) preconditioner ``M = diag(K)``.

    The reduced KKT operator exposes its diagonal without forming ``K``
    (see :class:`repro.qp.kkt.ReducedKKTOperator`).
    """

    def __init__(self, diagonal):
        diagonal = np.asarray(diagonal, dtype=np.float64)
        if np.any(diagonal <= 0):
            raise ValueError("Jacobi preconditioner needs a positive diagonal")
        self._inv = 1.0 / diagonal

    def apply(self, r: np.ndarray) -> np.ndarray:
        return self._inv * r


def pcg(operator, b, *, x0=None, preconditioner=None, eps: float = 1e-7,
        max_iter: int = 2000, raise_on_fail: bool = False) -> PCGResult:
    """Solve ``K x = b`` for a positive-definite operator ``K``.

    Parameters
    ----------
    operator:
        Object with a ``matvec(x)`` method implementing ``K @ x``.
    b:
        Right-hand side.
    x0:
        Initial iterate (warm start); zeros by default.
    preconditioner:
        Object with ``apply(r)``; Jacobi on ``diag(K)`` when the operator
        exposes ``diagonal()`` and the identity otherwise.
    eps:
        Relative termination tolerance ``||r|| < eps * ||b||``.
    max_iter:
        Iteration budget.
    raise_on_fail:
        Raise :class:`ConvergenceError` instead of returning a
        non-converged result.

    Notes
    -----
    Follows Algorithm 2 of the paper: residual recurrence
    ``r <- r + lambda K p`` with ``r0 = K x0 - b`` (so the solution drives
    ``r`` to zero from that convention's sign).
    """
    b = np.asarray(b, dtype=np.float64)
    n = b.size
    if preconditioner is None:
        if hasattr(operator, "diagonal"):
            preconditioner = JacobiPreconditioner(operator.diagonal())
        else:
            preconditioner = IdentityPreconditioner()

    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return PCGResult(x=np.zeros(n), iterations=0, residual_norm=0.0,
                         converged=True, residual_history=[0.0])

    r = operator.matvec(x) - b
    d = preconditioner.apply(r)
    p = -d
    rd = float(np.dot(r, d))
    history = [float(np.linalg.norm(r))]
    if history[-1] < eps * b_norm:
        return PCGResult(x=x, iterations=0, residual_norm=history[-1],
                         converged=True, residual_history=history)

    iterations = 0
    converged = False
    for _ in range(max_iter):
        kp = operator.matvec(p)
        pkp = float(np.dot(p, kp))
        if pkp <= 0.0:
            raise ConvergenceError(
                "operator is not positive definite along the search "
                f"direction (p^T K p = {pkp:.3e})")
        lam = rd / pkp
        x = x + lam * p
        r = r + lam * kp
        iterations += 1
        res_norm = float(np.linalg.norm(r))
        history.append(res_norm)
        if res_norm < eps * b_norm:
            converged = True
            break
        d = preconditioner.apply(r)
        rd_next = float(np.dot(r, d))
        mu = rd_next / rd
        rd = rd_next
        p = -d + mu * p

    if not converged and raise_on_fail:
        raise ConvergenceError(
            f"PCG did not converge in {max_iter} iterations "
            f"(residual {history[-1]:.3e}, target {eps * b_norm:.3e})")
    return PCGResult(x=x, iterations=iterations, residual_norm=history[-1],
                     converged=converged, residual_history=history)
