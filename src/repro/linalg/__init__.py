"""Direct (LDL^T) and iterative (PCG) sparse linear solvers."""

from .elimtree import UNKNOWN, etree, postorder
from .ldl import (LDLFactor, SymbolicFactor, ldl_factor, ldl_solve,
                  ldl_symbolic)
from .ordering import (minimum_degree, natural, reverse_cuthill_mckee,
                       symmetric_adjacency)
from .pcg import (IdentityPreconditioner, JacobiPreconditioner, PCGResult,
                  pcg)

__all__ = [
    "etree",
    "postorder",
    "UNKNOWN",
    "LDLFactor",
    "SymbolicFactor",
    "ldl_symbolic",
    "ldl_factor",
    "ldl_solve",
    "minimum_degree",
    "reverse_cuthill_mckee",
    "natural",
    "symmetric_adjacency",
    "PCGResult",
    "pcg",
    "JacobiPreconditioner",
    "IdentityPreconditioner",
]
