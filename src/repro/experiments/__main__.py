"""CLI: regenerate any paper figure/table from the command line.

Examples::

    python -m repro.experiments --figure 9 --count 5
    python -m repro.experiments --figure 11 --families svm control
    python -m repro.experiments --table 3
    python -m repro.experiments --summary --count 3
"""

from __future__ import annotations

import argparse
import sys

from ..problems import generate
from . import (fig07_problem_dimensions, fig08_kkt_fraction,
               fig09_eta_improvement, fig10_customization_speedup,
               fig11_speedup_over_mkl, fig12_solver_runtime,
               fig13_power_efficiency, format_table, run_suite,
               summarize_records, table2_platforms, table3_tradeoff)

_RECORD_FIGURES = {
    8: (fig08_kkt_fraction, "Figure 8: % CPU solver time in KKT solve"),
    9: (fig09_eta_improvement, "Figure 9: eta improvement"),
    10: (fig10_customization_speedup,
         "Figure 10: customization speedup"),
    11: (fig11_speedup_over_mkl, "Figure 11: speedup over MKL"),
    12: (fig12_solver_runtime, "Figure 12: solver run time (s)"),
    13: (fig13_power_efficiency, "Figure 13: power efficiency"),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate RSQP paper figures/tables.")
    parser.add_argument("--figure", type=int, choices=[7] + list(
        _RECORD_FIGURES), help="figure number to regenerate")
    parser.add_argument("--table", type=int, choices=[2, 3],
                        help="table number to regenerate")
    parser.add_argument("--summary", action="store_true",
                        help="print headline aggregates")
    parser.add_argument("--count", type=int, default=5,
                        help="problems per family (20 = full suite)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="size multiplier on the largest instances")
    parser.add_argument("--families", nargs="*", default=None,
                        help="subset of problem families")
    args = parser.parse_args(argv)

    if args.table == 2:
        print(format_table(table2_platforms(), title="Table 2: platforms"))
        return 0
    if args.table == 3:
        problem = generate("svm", 240, seed=0)  # ~20k non-zeros
        print(format_table(
            table3_tradeoff(problem),
            title=f"Table 3: trade-off on {problem.name} "
                  f"(nnz={problem.nnz})"))
        return 0
    if args.figure == 7:
        rows = fig07_problem_dimensions(count=args.count, scale=args.scale,
                                        families=args.families)
        print(format_table(rows, title="Figure 7: benchmark dimensions"))
        return 0
    if args.figure in _RECORD_FIGURES or args.summary:
        records = run_suite(count=args.count, scale=args.scale,
                            families=args.families, progress=True)
        if args.summary:
            summary = summarize_records(records)
            for key, value in summary.items():
                print(f"{key}: {value}")
        if args.figure in _RECORD_FIGURES:
            producer, title = _RECORD_FIGURES[args.figure]
            print(format_table(producer(records), title=title))
        return 0
    parser.print_help()
    return 1


if __name__ == "__main__":
    sys.exit(main())
