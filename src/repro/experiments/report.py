"""Plain-text rendering of experiment results."""

from __future__ import annotations

__all__ = ["format_table", "summarize_records"]


def format_table(rows: list, *, columns: list | None = None,
                 title: str | None = None, floatfmt: str = ".3g") -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    columns = columns if columns is not None else list(rows[0].keys())

    def fmt(value):
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in table))
              for i, col in enumerate(columns)]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    out.append("  ".join("-" * w for w in widths))
    for line in table:
        out.append("  ".join(cell.ljust(w)
                             for cell, w in zip(line, widths)))
    return "\n".join(out) + "\n"


def summarize_records(records) -> dict:
    """Headline aggregates matching the paper's abstract claims."""
    if not records:
        return {}
    speedups = [r.customization_speedup for r in records]
    vs_cpu = [r.speedup_custom_vs_cpu for r in records]
    vs_gpu = [r.gpu_seconds / r.fpga_custom_seconds for r in records]
    # The GPU comparison is only meaningful where the GPU is a serious
    # contender (the paper's 6.9x headline is from that regime); on tiny
    # problems its launch-latency floor makes the ratio arbitrary.
    vs_gpu_large = [r.gpu_seconds / r.fpga_custom_seconds
                    for r in records if r.nnz >= 5_000] or vs_gpu
    eff = [r.fpga_throughput_per_watt / r.gpu_throughput_per_watt
           for r in records]
    eff_large = [r.fpga_throughput_per_watt / r.gpu_throughput_per_watt
                 for r in records if r.nnz >= 5_000] or eff
    by_family: dict[str, list] = {}
    for r in records:
        by_family.setdefault(r.family, []).append(r.customization_speedup)
    return {
        "problems": len(records),
        "customization_speedup_min": min(speedups),
        "customization_speedup_max": max(speedups),
        "speedup_vs_cpu_max": max(vs_cpu),
        "speedup_vs_gpu_max": max(vs_gpu),
        "speedup_vs_gpu_max_large": max(vs_gpu_large),
        "power_efficiency_vs_gpu_max": max(eff),
        "power_efficiency_vs_gpu_max_large": max(eff_large),
        "mean_customization_speedup_by_family": {
            fam: sum(vals) / len(vals) for fam, vals in by_family.items()},
    }
