"""Per-figure/table data producers (paper §5).

Each function returns a list of plain dict rows — the series a plot of
the corresponding paper figure would show — so benchmarks, tests, and
the CLI all print the same data.
"""

from __future__ import annotations

import numpy as np

from ..baselines import TABLE2
from ..customization import (baseline_customization, evaluate_architecture,
                             parse_architecture)
from ..hw import estimate_resources, fmax_mhz
from ..problems import benchmark_suite

__all__ = ["fig07_problem_dimensions", "fig08_kkt_fraction",
           "fig09_eta_improvement", "fig10_customization_speedup",
           "fig11_speedup_over_mkl", "fig12_solver_runtime",
           "fig13_power_efficiency", "table2_platforms",
           "table3_tradeoff", "TABLE3_CANDIDATES"]


def fig07_problem_dimensions(*, count: int = 20, scale: float = 1.0,
                             families=None) -> list:
    """Figure 7: nnz(P)+nnz(A) vs number of decision variables."""
    rows = []
    for entry in benchmark_suite(count=count, scale=scale,
                                 families=families):
        rows.append({"family": entry.family, "name": entry.name,
                     "nnz": entry.problem.nnz, "n": entry.problem.n,
                     "m": entry.problem.m})
    return rows


def fig08_kkt_fraction(records) -> list:
    """Figure 8: % of CPU solver time spent solving the KKT system."""
    return [{"family": r.family, "nnz": r.nnz,
             "kkt_percent": 100.0 * r.cpu_kkt_fraction}
            for r in records]


def fig09_eta_improvement(records) -> list:
    """Figure 9: improvement of eta after customization."""
    return [{"family": r.family, "nnz": r.nnz,
             "eta_baseline": r.eta_baseline, "eta_custom": r.eta_custom,
             "delta_eta": r.eta_improvement}
            for r in records]


def fig10_customization_speedup(records) -> list:
    """Figure 10: end-to-end solver speedup from customization."""
    return [{"family": r.family, "nnz": r.nnz,
             "speedup": r.customization_speedup,
             "architecture": r.architecture}
            for r in records]


def fig11_speedup_over_mkl(records) -> list:
    """Figure 11: FPGA (baseline/custom) and GPU speedup over MKL."""
    return [{"family": r.family, "nnz": r.nnz,
             "cuda": r.speedup_gpu_vs_cpu,
             "no_customization": r.speedup_baseline_vs_cpu,
             "customization": r.speedup_custom_vs_cpu}
            for r in records]


def fig12_solver_runtime(records) -> list:
    """Figure 12: absolute solver run time per backend."""
    return [{"family": r.family, "nnz": r.nnz,
             "cuda_s": r.gpu_seconds, "mkl_s": r.cpu_seconds,
             "customization_s": r.fpga_custom_seconds}
            for r in records]


def fig13_power_efficiency(records) -> list:
    """Figure 13: solves per second per watt, FPGA vs GPU."""
    return [{"family": r.family, "nnz": r.nnz,
             "fpga_throughput_per_watt": r.fpga_throughput_per_watt,
             "gpu_throughput_per_watt": r.gpu_throughput_per_watt,
             "fpga_watts": r.fpga_power_watts,
             "gpu_watts": r.gpu_power_watts}
            for r in records]


def table2_platforms() -> list:
    """Table 2: platform details."""
    return [{"device": d.name, "model": d.model,
             "peak_teraflops": d.peak_teraflops,
             "lithography_nm": d.lithography_nm, "tdp_watts": d.tdp_watts}
            for d in TABLE2]


#: The 11 architecture candidates of Table 3, paper order.
TABLE3_CANDIDATES = (
    "16{e}", "16{16a1e}", "32{32a4d1f}", "16{16a2d1e}", "64{64a4e1g}",
    "32{4d1f}", "32{32a4d2e1f}", "32{4d2e1f}", "32{16b4d1f}", "64{4e1g}",
    "64{8d4e1g}",
)


def table3_tradeoff(problem, candidates=TABLE3_CANDIDATES) -> list:
    """Table 3: performance/area trade-off of architecture candidates.

    Evaluated on one svm instance (the paper used one with 20 616
    non-zeros). ``spmv_per_us`` is the rate of complete reduced-KKT
    SpMV passes (P, A and A^T streams plus the vector duplication) the
    design sustains.
    """
    rows = []
    baselines = {}
    for name in candidates:
        arch = parse_architecture(name)
        if arch.c not in baselines:
            baselines[arch.c] = baseline_customization(problem, arch.c)
        if arch.n_structures == 1:
            # A bare C{full} design is the uncustomized baseline: no MAC
            # partitioning and no CVB compression (delta-eta = 0).
            custom = baselines[arch.c]
        else:
            custom = evaluate_architecture(problem, arch)
        cycles = sum(m.spmv_cycles + m.duplication_cycles
                     for m in custom.matrices.values())
        fmax = fmax_mhz(arch)
        res = estimate_resources(arch)
        rows.append({
            "architecture": name,
            "fmax_mhz": round(fmax),
            "delta_eta": custom.eta - baselines[arch.c].eta,
            "spmv_per_us": fmax / cycles if cycles else np.inf,
            "dsp": res.dsp, "ff": res.ff, "lut": res.lut,
        })
    return rows
