"""Experiment harness: suite runner, per-figure producers, reporting."""

from .figures import (TABLE3_CANDIDATES, fig07_problem_dimensions,
                      fig08_kkt_fraction, fig09_eta_improvement,
                      fig10_customization_speedup, fig11_speedup_over_mkl,
                      fig12_solver_runtime, fig13_power_efficiency,
                      table2_platforms, table3_tradeoff)
from .io import (load_records, records_from_json, records_to_json,
                 save_records)
from .report import format_table, summarize_records
from .runner import ProblemRecord, choose_width, run_problem, run_suite

__all__ = [
    "ProblemRecord",
    "run_problem",
    "run_suite",
    "choose_width",
    "fig07_problem_dimensions",
    "fig08_kkt_fraction",
    "fig09_eta_improvement",
    "fig10_customization_speedup",
    "fig11_speedup_over_mkl",
    "fig12_solver_runtime",
    "fig13_power_efficiency",
    "table2_platforms",
    "table3_tradeoff",
    "TABLE3_CANDIDATES",
    "format_table",
    "summarize_records",
    "records_to_json",
    "records_from_json",
    "save_records",
    "load_records",
]
