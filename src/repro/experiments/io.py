"""Persistence of experiment records (JSON).

Suite runs are the expensive part of regenerating the paper's figures;
saving the :class:`~repro.experiments.runner.ProblemRecord` list lets
figure producers re-run instantly and makes results diffable across
library versions.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from .runner import ProblemRecord

__all__ = ["records_to_json", "records_from_json", "save_records",
           "load_records"]

#: Bump when ProblemRecord's schema changes incompatibly.
SCHEMA_VERSION = 1


def records_to_json(records) -> str:
    """Serialize records to a JSON document string."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "records": [dataclasses.asdict(r) for r in records],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def records_from_json(text: str) -> list:
    """Deserialize records from :func:`records_to_json` output."""
    payload = json.loads(text)
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported records schema version {version!r} "
            f"(expected {SCHEMA_VERSION})")
    field_names = {f.name for f in dataclasses.fields(ProblemRecord)}
    records = []
    for row in payload["records"]:
        unknown = set(row) - field_names
        if unknown:
            raise ValueError(f"unknown record fields: {sorted(unknown)}")
        records.append(ProblemRecord(**row))
    return records


def save_records(records, path) -> Path:
    """Write records to ``path``; returns the path."""
    path = Path(path)
    path.write_text(records_to_json(records))
    return path


def load_records(path) -> list:
    """Read records written by :func:`save_records`."""
    return records_from_json(Path(path).read_text())
