"""Suite runner: one pass producing the data behind Figures 8-13.

For every benchmark problem the runner

1. solves it for real with the reference solver (indirect backend) —
   giving the ADMM/PCG iteration counts every backend is charged for,
2. runs the customization flow (baseline and problem-specific), and
3. evaluates the analytic time/power models: CPU (MKL-like), GPU
   (cuOSQP-like), FPGA baseline and FPGA customized.

All downstream figure producers consume the resulting
:class:`ProblemRecord` list, so every figure is derived from one
consistent dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines import (CPUModel, GPUModel, workload_from_result)
from ..customization import (ProblemCustomization, baseline_customization,
                             customize_problem)
from ..hw import fmax_mhz, fpga_power_watts
from ..hw.compiler import attach_costs, compile_osqp_program
from ..problems import benchmark_suite
from ..qp import QProblem
from ..solver import OSQPSettings, OSQPSolver

__all__ = ["ProblemRecord", "run_problem", "run_suite", "choose_width"]


def choose_width(nnz: int) -> int:
    """Datapath width by problem scale (paper: 'up to C = 64')."""
    if nnz < 5_000:
        return 16
    if nnz < 50_000:
        return 32
    return 64


@dataclass
class ProblemRecord:
    """Everything the figures need about one benchmark problem."""

    family: str
    name: str
    n: int
    m: int
    nnz: int
    c: int
    architecture: str
    admm_iterations: int
    pcg_iterations: int
    eta_baseline: float
    eta_custom: float
    fpga_baseline_seconds: float
    fpga_custom_seconds: float
    cpu_seconds: float
    gpu_seconds: float
    cpu_kkt_fraction: float
    fpga_power_watts: float
    gpu_power_watts: float
    extras: dict = field(default_factory=dict)

    # -- derived quantities used by the figures -------------------------
    @property
    def customization_speedup(self) -> float:
        """Figure 10: end-to-end gain of customization on the FPGA."""
        return self.fpga_baseline_seconds / self.fpga_custom_seconds

    @property
    def eta_improvement(self) -> float:
        """Figure 9: Delta eta from customization."""
        return self.eta_custom - self.eta_baseline

    @property
    def speedup_custom_vs_cpu(self) -> float:
        return self.cpu_seconds / self.fpga_custom_seconds

    @property
    def speedup_baseline_vs_cpu(self) -> float:
        return self.cpu_seconds / self.fpga_baseline_seconds

    @property
    def speedup_gpu_vs_cpu(self) -> float:
        return self.cpu_seconds / self.gpu_seconds

    @property
    def fpga_throughput_per_watt(self) -> float:
        """Figure 13: solves per second per watt."""
        return 1.0 / (self.fpga_custom_seconds * self.fpga_power_watts)

    @property
    def gpu_throughput_per_watt(self) -> float:
        return 1.0 / (self.gpu_seconds * self.gpu_power_watts)


def _fpga_seconds(problem: QProblem, custom: ProblemCustomization,
                  admm_iterations: int, pcg_iterations: int) -> float:
    """Analytic FPGA end-to-end time at the architecture's f_max."""
    compiled = compile_osqp_program(problem.n, problem.m,
                                    max_admm_iter=max(admm_iterations, 1),
                                    max_pcg_iter=max(pcg_iterations, 1))
    attach_costs(
        compiled, custom.c,
        spmv={name: custom.matrices[name].spmv_cycles
              for name in ("P", "A", "At")},
        depths={name: custom.matrices[name].duplication_cycles
                for name in ("P", "A", "At")},
        n=problem.n, m=problem.m)
    cycles = compiled.estimate_cycles(admm_iterations, pcg_iterations)
    return cycles / (fmax_mhz(custom.architecture) * 1e6)


def run_problem(problem: QProblem, family: str, *,
                settings: OSQPSettings | None = None,
                c: int | None = None,
                max_structures: int = 4,
                cpu_model: CPUModel | None = None,
                gpu_model: GPUModel | None = None) -> ProblemRecord:
    """Produce the full record for one problem."""
    settings = settings if settings is not None else OSQPSettings(
        eps_abs=1e-3, eps_rel=1e-3, max_iter=4000)
    cpu_model = cpu_model or CPUModel()
    gpu_model = gpu_model or GPUModel()
    width = c if c is not None else choose_width(problem.nnz)

    result = OSQPSolver(problem, settings).solve()
    workload = workload_from_result(problem, result)

    base = baseline_customization(problem, width)
    custom = customize_problem(problem, width,
                               max_structures=max_structures)

    admm = max(workload.admm_iterations, 1)
    pcg = max(workload.pcg_iterations, 1)
    fpga_base_s = _fpga_seconds(problem, base, admm, pcg)
    fpga_custom_s = _fpga_seconds(problem, custom, admm, pcg)
    cpu_s = cpu_model.solve_seconds(workload)
    gpu_s = gpu_model.solve_seconds(workload)
    kkt_fraction = (cpu_model.kkt_solve_seconds(workload)
                    / max(cpu_s, 1e-30))

    return ProblemRecord(
        family=family, name=problem.name, n=problem.n, m=problem.m,
        nnz=problem.nnz, c=width, architecture=str(custom.architecture),
        admm_iterations=workload.admm_iterations,
        pcg_iterations=workload.pcg_iterations,
        eta_baseline=base.eta, eta_custom=custom.eta,
        fpga_baseline_seconds=fpga_base_s,
        fpga_custom_seconds=fpga_custom_s,
        cpu_seconds=cpu_s, gpu_seconds=gpu_s,
        cpu_kkt_fraction=kkt_fraction,
        fpga_power_watts=fpga_power_watts(custom.architecture),
        gpu_power_watts=gpu_model.power_watts(workload),
        extras={"status": result.status.value,
                "search": None if custom.search is None
                else custom.search.evaluations})


def run_suite(*, count: int = 20, scale: float = 1.0,
              families: list | None = None,
              settings: OSQPSettings | None = None,
              progress: bool = False) -> list:
    """Run the full experiment over the benchmark suite."""
    records = []
    for entry in benchmark_suite(count=count, scale=scale,
                                 families=families):
        if progress:  # pragma: no cover - console feedback only
            print(f"running {entry.name} (nnz={entry.problem.nnz}) ...",
                  flush=True)
        records.append(run_problem(entry.problem, entry.family,
                                   settings=settings))
    return records
