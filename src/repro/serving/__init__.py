"""QP solver serving layer: fingerprint, cache, dispatch, metrics.

The production-facing front-end of the reproduction. A
:class:`SolverService` fingerprints each submitted
:class:`~repro.qp.QProblem` by sparsity structure, reuses one frozen
customization artifact (architecture + schedules + compiled program)
per structure from an LRU cache, and dispatches warm solves onto a
worker pool of simulated accelerators — amortizing the paper's
customization flow across repeated-structure workloads exactly the
way an FPGA deployment amortizes a bitstream.

Quick start::

    from repro.serving import SolverService

    with SolverService(workers=4) as service:
        results = service.solve_batch(problems)
        print(service.amortization_report())

``python -m repro.serving`` replays a benchmark-suite workload through
the service and prints a throughput/amortization report.
"""

from .arch_cache import (ArchArtifact, ArchCache, CacheStats, PersistedSpec,
                         build_artifact)
from .fingerprint import (StructureFingerprint, fingerprint_problem,
                          sparsity_string)
from .metrics import (Counter, Histogram, MetricsRegistry, merge_counters,
                      parse_sample_name)
from .pool import WorkerPool, reference_job, solve_job
from .service import ServeRecord, ServeResult, SolverService
from .session import BatchSolverSession, SolverSession
from .sharded import ShardedSolverService
from .shm_store import SegmentRef, ShmArtifactStore, attach_artifact
from .supervisor import ShardSupervisor

__all__ = [
    "ArchArtifact",
    "ArchCache",
    "CacheStats",
    "PersistedSpec",
    "build_artifact",
    "StructureFingerprint",
    "fingerprint_problem",
    "sparsity_string",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "WorkerPool",
    "solve_job",
    "reference_job",
    "ServeRecord",
    "ServeResult",
    "SolverService",
    "SolverSession",
    "BatchSolverSession",
    "ShardedSolverService",
    "ShardSupervisor",
    "ShmArtifactStore",
    "SegmentRef",
    "attach_artifact",
    "merge_counters",
    "parse_sample_name",
]
