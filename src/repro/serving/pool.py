"""Worker pool binding cached architectures to fresh numeric data.

A *solve job* is the warm path of the serving layer: take a frozen
:class:`~repro.serving.arch_cache.ArchArtifact` plus one concrete
problem instance, construct a simulated accelerator around the cached
customization and compiled program (host scaling, rho selection, HBM
download — no search, no scheduling, no compilation), optionally warm
start, and run.

Execution modes:

``thread`` (default)
    A :class:`~concurrent.futures.ThreadPoolExecutor`; numpy kernels
    release the GIL, so concurrent simulated solves overlap well.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor`; each job ships
    ``(problem, artifact)`` to a worker process — higher per-job cost,
    true parallelism for CPU-bound Python portions. Jobs must be
    module-level functions (ours are).
``serial``
    Run the job in the caller immediately and return an
    already-resolved future: deterministic, used by the tests.
"""

from __future__ import annotations

from concurrent.futures import (Future, ProcessPoolExecutor,
                                ThreadPoolExecutor)

from ..hw.accelerator import RSQPAccelerator, RSQPResult
from ..qp import QProblem
from ..solver import OSQPSettings
from .arch_cache import ArchArtifact

__all__ = ["WorkerPool", "solve_job", "reference_job"]

_MODES = ("thread", "process", "serial")


def solve_job(problem: QProblem, artifact: ArchArtifact,
              settings: OSQPSettings,
              warm_start: tuple | None = None,
              pcg_eps: float = 1e-7,
              backend: str = "compiled",
              verify: bool = True,
              injector=None,
              recovery=None,
              deadline_seconds: float | None = None) -> RSQPResult:
    """Bind a cached artifact to ``problem`` and run the accelerator.

    Module-level so process pools can pickle it. The injected compiled
    program is validated against the problem inside the accelerator —
    a structure mismatch (wrong artifact for this problem) raises
    rather than silently mis-costing. ``backend`` selects the program
    execution backend (``"interpret"`` or ``"compiled"``), orthogonal
    to the artifact's precompiled *program*.

    With ``verify`` (default), the artifact passes the static
    verification suite (:mod:`repro.verify`) before any solve touches
    it; a malformed artifact raises
    :class:`~repro.exceptions.VerificationError` with the full
    diagnostic report. Acceptance is memoized on the artifact, so
    repeated solves against a cached artifact check once.

    ``injector`` / ``recovery`` / ``deadline_seconds`` arm fault
    injection, checkpoint/rollback recovery and a cooperative per-job
    deadline on the accelerator (see :mod:`repro.faults`); the
    deadline raises :class:`~repro.exceptions.DeadlineExceededError`
    between ADMM segments rather than killing the worker.
    """
    if verify:
        from ..verify import ensure_artifact_verified
        ensure_artifact_verified(
            artifact, context=f"solve_job({artifact.fingerprint.key})")
    # The artifact-level check subsumes the accelerator's per-
    # construction program walk (and is memoized), so skip the latter.
    if getattr(artifact, "algorithm", "admm") == "pdqp":
        from ..hw.pdqp import PDQPAccelerator
        from ..solver.algorithms import get_algorithm
        pdqp_settings = get_algorithm("pdqp").coerce_settings(settings)
        accelerator = PDQPAccelerator(
            problem, customization=artifact.customization,
            settings=pdqp_settings, compiled=artifact.compiled,
            backend=backend, verify=False,
            fault_injector=injector, recovery=recovery,
            deadline_seconds=deadline_seconds)
    else:
        accelerator = RSQPAccelerator(
            problem, customization=artifact.customization,
            settings=settings, pcg_eps=pcg_eps,
            max_pcg_iter=artifact.max_pcg_iter,
            compiled=artifact.compiled, backend=backend, verify=False,
            fault_injector=injector, recovery=recovery,
            deadline_seconds=deadline_seconds)
    if warm_start is not None:
        x0, y0 = warm_start
        accelerator.warm_start(x=x0, y=y0)
    return accelerator.run()


def reference_job(problem: QProblem, settings: OSQPSettings,
                  warm_start: tuple | None = None,
                  algorithm: str = "admm"):
    """Software fallback: solve with the named reference implementation."""
    from ..solver.algorithms import get_algorithm
    algo = get_algorithm(algorithm)
    coerced = algo.coerce_settings(settings)
    if algorithm == "pdqp":
        from ..solver.pdqp import PDQPSolver
        solver = PDQPSolver(problem, coerced)
    else:
        from ..solver.osqp import OSQPSolver
        solver = OSQPSolver(problem, coerced)
    if warm_start is not None:
        x0, y0 = warm_start
        solver.warm_start(x=x0, y=y0)
    return solver.solve()


class WorkerPool:
    """Uniform submit interface over serial/thread/process execution."""

    def __init__(self, workers: int = 2, mode: str = "thread"):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.mode = mode
        self.workers = int(workers)
        self._closed = False
        if mode == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="rsqp-serving")
        elif mode == "process":
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        else:
            self._executor = None

    def submit(self, fn, *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)``; serial mode runs it now."""
        if self._closed:
            raise RuntimeError("pool is shut down")
        if self._executor is not None:
            return self._executor.submit(fn, *args, **kwargs)
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # propagate via the future contract
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True,
                 cancel_pending: bool = False) -> None:
        """Stop accepting work and (optionally) wait; idempotent.

        ``cancel_pending`` cancels every queued-but-not-started job so
        its future resolves as *cancelled* instead of leaking forever
        unresolved — the hard-shutdown path. Jobs already running are
        never interrupted; with ``wait`` they are still joined.
        """
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=wait,
                                    cancel_futures=cancel_pending)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
