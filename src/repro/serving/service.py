"""`SolverService` — the QP solver front-end with architecture reuse.

The paper's customization flow is built once per problem *structure*
and amortized over many solves; this service makes that operational:

1. every submitted problem is fingerprinted
   (:mod:`repro.serving.fingerprint`),
2. the fingerprint is looked up in an LRU architecture cache
   (:mod:`repro.serving.arch_cache`) — a hit skips the LZW search,
   scheduling, CVB compression *and* program compilation,
3. a worker (:mod:`repro.serving.pool`) binds the cached artifact to
   the request's numeric data and runs the simulated accelerator,
4. per-request records and a metrics registry
   (:mod:`repro.serving.metrics`) account for every stage.

Cold structures either build synchronously (``cold_policy="build"``,
the default) or, for latency-bounded deployments
(``cold_policy="fallback"``), are answered immediately by the
reference software :class:`~repro.solver.OSQPSolver` while the
customization flow runs in the background — the structure is warm for
every later request.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import (DeadlineExceededError, FaultDetectedError,
                          SimulationError)
from ..experiments.runner import choose_width
from ..faults import ResiliencePolicy, poison_artifact, solution_ok
from ..hw.compiled import validate_backend
from ..qp import QProblem
from ..solver import OSQPSettings, available_algorithms, choose_algorithm
from .arch_cache import (ArchArtifact, ArchCache, CacheStats,
                         build_artifact)
from .fingerprint import StructureFingerprint, fingerprint_problem
from .metrics import MetricsRegistry
from .pool import WorkerPool, reference_job, solve_job

__all__ = ["ServeRecord", "ServeResult", "SolverService"]

#: Cache tiers a request can be served from.
TIER_HIT = "hit"          # artifact found in memory
TIER_DISK = "disk"        # rebuilt from a persisted architecture decision
TIER_BUILD = "build"      # full customization flow ran
TIER_FALLBACK = "fallback"  # reference solver answered a cold request


@dataclass
class ServeRecord:
    """Accounting for one request, kept for reports and benchmarks."""

    request_id: int
    problem_name: str
    fingerprint_key: str
    c: int
    architecture: str
    tier: str
    backend: str  # "rsqp" | "reference"
    algorithm: str = "admm"  # "admm" | "pdqp"
    queue_seconds: float = 0.0
    #: Fingerprint + cache lookup + (on cold tiers) artifact build.
    setup_seconds: float = 0.0
    customize_seconds: float = 0.0
    compile_seconds: float = 0.0
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    simulated_cycles: int = 0
    simulated_seconds: float = 0.0
    admm_iterations: int = 0
    converged: bool = False
    # -- resilience accounting (repro.faults) --------------------------
    retries: int = 0
    rollbacks: int = 0
    faults_injected: int = 0
    degraded: bool = False
    deadline_missed: bool = False
    #: Lockstep batch width this request solved at (1 = solo).
    batch_width: int = 1

    @property
    def cache_hit(self) -> bool:
        return self.tier == TIER_HIT


@dataclass
class ServeResult:
    """Solution plus provenance; ``raw`` is the backend's own result."""

    x: np.ndarray
    y: np.ndarray
    z: np.ndarray
    converged: bool
    backend: str
    record: ServeRecord
    raw: object = field(repr=False, default=None)


class SolverService:
    """Batched QP solving with structure fingerprinting + arch reuse.

    Parameters
    ----------
    c:
        Datapath width; ``None`` (default) picks per problem by nnz
        via :func:`repro.experiments.runner.choose_width`.
    settings:
        Solver settings shared by accelerator and reference backends.
    workers, mode:
        Worker pool size and execution mode (``"thread"``,
        ``"process"`` or ``"serial"``); see
        :class:`repro.serving.pool.WorkerPool`. In process mode
        request handling stays on threads and only the numeric solves
        fan out to worker processes.
    cache_capacity, cache_path:
        LRU capacity and optional JSON persistence file for the
        architecture cache (loaded on construction if it exists,
        saved on :meth:`close`).
    cold_policy:
        ``"build"`` — cold structures run the customization flow
        in-line; ``"fallback"`` — cold structures are solved by the
        reference software solver immediately while the artifact
        builds in the background.
    backend:
        Execution backend for the simulated accelerator:
        ``"compiled"`` (default, lowered fused kernels) or
        ``"interpret"`` (the instruction-at-a-time oracle). Both
        produce bit-identical solutions and cycle counts; distinct
        from :attr:`ServeRecord.backend`, which records whether a
        request was served by the accelerator or the software
        fallback.
    verify:
        When True (default), every artifact passes the static
        verification suite (:mod:`repro.verify`) once, right after it
        enters the cache; a rejected artifact fails the request with a
        structured :class:`~repro.exceptions.VerificationError`
        (carrying the diagnostic report) instead of crashing mid-solve,
        and increments ``serving_verify_rejects_total``.
    algorithm:
        Which solver algorithm requests run on: a registered name
        (``"admm"``, ``"pdqp"``) pins every request to that algorithm;
        ``"auto"`` (default) picks per problem *structure* via
        :func:`repro.solver.choose_algorithm` — large sparse
        structures (where ADMM's inner PCG sweeps dominate the cycle
        count) go to the first-order PDQP pipeline, small, dense or
        extremely ill-scaled ones stay on ADMM. The choice is part of
        the cache key, so one service can hold artifacts for both.
    """

    def __init__(self, *, c: int | None = None,
                 settings: OSQPSettings | None = None,
                 workers: int = 2, mode: str = "thread",
                 cache_capacity: int = 128,
                 cache_path=None,
                 cold_policy: str = "build",
                 pcg_eps: float = 1e-7,
                 max_pcg_iter: int = 500,
                 backend: str = "compiled",
                 verify: bool = True,
                 fault_plan=None,
                 resilience: ResiliencePolicy | None = None,
                 algorithm: str = "auto",
                 max_batch: int = 32,
                 max_linger: float = 0.005):
        if cold_policy not in ("build", "fallback"):
            raise ValueError(
                f"cold_policy must be 'build' or 'fallback', "
                f"got {cold_policy!r}")
        if algorithm != "auto" and algorithm not in available_algorithms():
            raise ValueError(
                f"algorithm must be 'auto' or one of "
                f"{available_algorithms()}, got {algorithm!r}")
        self.algorithm = algorithm
        self.backend = validate_backend(backend)
        self.verify = bool(verify)
        #: Deterministic fault schedule (:class:`repro.faults.FaultPlan`)
        #: or None. Non-empty plans arm per-request hardware injectors
        #: and artifact poisoning; the resilience policy below decides
        #: how failures are retried and degraded.
        self.fault_plan = fault_plan if fault_plan else None
        self.resilience = (resilience if resilience is not None
                           else ResiliencePolicy())
        #: Backoff jitter stream — seeded, shared across requests under
        #: the service lock so retry timing is reproducible in serial
        #: mode and merely bounded in threaded mode.
        self._jitter_rng = self.resilience.jitter_rng()
        self.c = c
        self.settings = settings if settings is not None else OSQPSettings()
        self.cold_policy = cold_policy
        self.pcg_eps = float(pcg_eps)
        self.max_pcg_iter = int(max_pcg_iter)
        #: Coalescing bounds for :meth:`solve_batch` (see
        #: :class:`repro.batch.Coalescer`): widest lockstep batch and
        #: the linger budget a queued group may wait for more lanes.
        self.max_batch = int(max_batch)
        self.max_linger = float(max_linger)
        self.cache = ArchCache(capacity=cache_capacity, path=cache_path)
        self.metrics = MetricsRegistry()
        # Request handling always runs on threads (it touches the
        # in-process cache); process mode adds a solve-only pool.
        dispatch_mode = "thread" if mode == "process" else mode
        self._dispatch = WorkerPool(workers=workers, mode=dispatch_mode)
        self._solve_pool = (WorkerPool(workers=workers, mode="process")
                            if mode == "process" else None)
        self.mode = mode
        self._lock = threading.Lock()
        self._next_id = 0
        self._futures: dict[int, Future] = {}
        self._records: dict[int, ServeRecord] = {}
        self._background: list[Future] = []
        self._closed = False

    # ------------------------------------------------------------------
    # structure handling
    # ------------------------------------------------------------------
    def width_for(self, problem: QProblem) -> int:
        return self.c if self.c is not None else choose_width(problem.nnz)

    def cache_key(self, fingerprint: StructureFingerprint, c: int,
                  algorithm: str = "admm") -> str:
        """Structure key + the build parameters baked into an artifact.

        ``settings.max_iter`` is deliberately absent: the accelerator
        re-wraps the iteration body per segment at run time, so one
        compiled artifact serves any outer iteration limit. ADMM keys
        keep the historical form (so persisted v1 caches stay warm);
        other algorithms append their name.
        """
        base = f"{fingerprint.key}:c{c}:pcg{self.max_pcg_iter}"
        return base if algorithm == "admm" else f"{base}:{algorithm}"

    def _build_artifact(self, problem: QProblem,
                        fingerprint: StructureFingerprint,
                        c: int, key: str,
                        algorithm: str = "admm") -> ArchArtifact:
        """Full (or persisted-spec) build; the cache-miss path."""
        return build_artifact(
            problem, c, self.cache, fingerprint=fingerprint, key=key,
            max_admm_iter=self.settings.max_iter,
            max_pcg_iter=self.max_pcg_iter, metrics=self.metrics,
            algorithm=algorithm)

    def _ensure_artifact(self, problem: QProblem,
                         fingerprint: StructureFingerprint,
                         c: int,
                         algorithm: str = "admm"
                         ) -> tuple[ArchArtifact, str]:
        """Return ``(artifact, tier)``, building at most once per key."""
        key = self.cache_key(fingerprint, c, algorithm)
        had_spec = self.cache.persisted_spec(key) is not None
        artifact, was_hit = self.cache.get_or_build(
            key, lambda: self._build_artifact(problem, fingerprint, c, key,
                                              algorithm))
        tier = TIER_HIT if was_hit else (TIER_DISK if had_spec
                                         else TIER_BUILD)
        if self.verify:
            from ..exceptions import VerificationError
            from ..verify import ensure_artifact_verified
            try:
                ensure_artifact_verified(artifact, context=key)
            except VerificationError:
                self.metrics.counter(
                    "serving_verify_rejects_total").inc()
                # A cached artifact that fails static verification is
                # corrupt (e.g. poisoned in memory or on disk): drop it
                # and rebuild once from the persisted spec. Only a
                # fresh build that is *still* rejected — a real
                # compiler/search bug — propagates.
                self.cache.invalidate(key)
                artifact, _ = self.cache.get_or_build(
                    key, lambda: self._build_artifact(
                        problem, fingerprint, c, key, algorithm))
                try:
                    ensure_artifact_verified(artifact, context=key)
                except VerificationError:
                    self.metrics.counter(
                        "serving_verify_rejects_total").inc()
                    raise
                self.metrics.counter(
                    "serving_artifact_rebuilds_total").inc()
        return artifact, tier

    # ------------------------------------------------------------------
    # persistent sessions
    # ------------------------------------------------------------------
    def open_session(self, problem: QProblem, *,
                     carry_state: bool = True,
                     deadline: float | None = None):
        """Bind a persistent :class:`~repro.serving.session.SolverSession`
        to ``problem``'s structure.

        Pays the full request cost once — fingerprint, cache lookup or
        build, verification, accelerator construction — and returns a
        handle whose :meth:`~repro.serving.session.SolverSession.update`
        / :meth:`~repro.serving.session.SolverSession.resolve` loop
        re-solves with none of it. See :mod:`repro.serving.session`.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        from .session import SolverSession
        c = self.width_for(problem)
        fingerprint = fingerprint_problem(problem, c=c)
        algorithm = choose_algorithm(
            problem, override=None if self.algorithm == "auto"
            else self.algorithm)
        artifact, tier = self._ensure_artifact(problem, fingerprint, c,
                                               algorithm)
        self.metrics.counter("serving_session_opened_total").inc()
        self.metrics.counter(
            "serving_cache_hits_total" if tier == TIER_HIT
            else "serving_cache_misses_total").inc()
        return SolverSession(self, problem, artifact, tier, fingerprint,
                             c, algorithm, carry_state=carry_state,
                             deadline=deadline)

    def open_batch_session(self, problems):
        """Bind a lockstep
        :class:`~repro.serving.session.BatchSolverSession` to a fleet
        of same-structure problems (one artifact, one batched run per
        resolve). Every lane must share one artifact cache key.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        from .session import BatchSolverSession
        problems = list(problems)
        if not problems:
            raise ValueError("a batch session needs at least one lane")
        c = self.width_for(problems[0])
        fingerprint = fingerprint_problem(problems[0], c=c)
        algorithm = choose_algorithm(
            problems[0], override=None if self.algorithm == "auto"
            else self.algorithm)
        key = self.cache_key(fingerprint, c, algorithm)
        for idx, other in enumerate(problems[1:], start=1):
            c_other = self.width_for(other)
            other_key = self.cache_key(
                fingerprint_problem(other, c=c_other), c_other,
                choose_algorithm(
                    other, override=None if self.algorithm == "auto"
                    else self.algorithm))
            if other_key != key:
                raise ValueError(
                    f"lane {idx} has a different structure/width/"
                    "algorithm than lane 0; a batch session is "
                    "single-structure by construction")
        artifact, tier = self._ensure_artifact(problems[0], fingerprint,
                                               c, algorithm)
        self.metrics.counter("serving_session_opened_total").inc()
        return BatchSolverSession(self, problems, artifact, tier,
                                  fingerprint, c, algorithm)

    # ------------------------------------------------------------------
    # request lifecycle
    # ------------------------------------------------------------------
    def submit(self, problem: QProblem, *,
               warm_start: tuple | None = None,
               deadline: float | None = None,
               request_id: int | None = None) -> int:
        """Enqueue one solve; returns a request id for :meth:`result`.

        ``deadline`` is a per-request wall-clock budget in seconds,
        measured from submission; it overrides
        ``resilience.deadline_seconds`` and is enforced cooperatively
        inside the accelerator (between ADMM segments) and between
        retry attempts. A missed deadline degrades to the reference
        solver (when the policy allows) rather than returning late
        accelerator output.

        ``request_id`` lets an embedding layer (the sharded front door)
        impose its own id so fault-plan addressing and cross-process
        accounting line up with the global request stream; auto-
        assigned ids continue above any imposed id.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        with self._lock:
            if request_id is None:
                request_id = self._next_id
                self._next_id += 1
            else:
                request_id = int(request_id)
                self._next_id = max(self._next_id, request_id + 1)
        submitted = time.perf_counter()
        future = self._dispatch.submit(
            self._handle, request_id, problem, warm_start, submitted,
            deadline)
        with self._lock:
            self._futures[request_id] = future
        return request_id

    def result(self, request_id: int,
               timeout: float | None = None) -> ServeResult:
        """Block for a submitted request's result (re-entrant)."""
        with self._lock:
            future = self._futures.get(request_id)
        if future is None:
            raise KeyError(f"unknown request id {request_id}")
        return future.result(timeout=timeout)

    def solve(self, problem: QProblem, *,
              warm_start: tuple | None = None,
              timeout: float | None = None,
              deadline: float | None = None,
              request_id: int | None = None) -> ServeResult:
        """Synchronous convenience: submit + result."""
        return self.result(self.submit(problem, warm_start=warm_start,
                                       deadline=deadline,
                                       request_id=request_id),
                           timeout=timeout)

    def solve_batch(self, problems, *, warm_starts=None,
                    deadlines=None, timeout: float | None = None,
                    coalesce: bool = True,
                    request_ids=None) -> list[ServeResult]:
        """Solve many problems, coalescing same-structure requests
        into lockstep batches; results preserve submission order.

        Requests are grouped by artifact cache key (structure
        fingerprint + width + algorithm) through
        :class:`repro.batch.Coalescer` — a group ships the moment it
        reaches ``max_batch`` lanes and the remainder flushes when the
        synchronous call has queued everything. Each group solves as
        one :func:`repro.batch.solve_batch_job` run (lane results are
        bitwise identical to solo solves); a lane the batch freezes —
        injected fault, missed ``deadline`` — falls back to the solo
        resilient path alone, without disturbing its batchmates.
        ``deadlines`` are per-request budgets in seconds, as in
        :meth:`submit`. ``coalesce=False`` restores the per-request
        submit/result path. ``request_ids`` imposes caller-chosen ids
        exactly like :meth:`submit`'s ``request_id``.
        """
        problems = list(problems)
        if warm_starts is None:
            warm_starts = [None] * len(problems)
        if deadlines is None:
            deadlines = [None] * len(problems)
        if request_ids is None:
            request_ids = [None] * len(problems)
        if not (len(warm_starts) == len(deadlines) == len(request_ids)
                == len(problems)):
            raise ValueError("per-request argument lists must match the "
                             "number of problems")
        if not coalesce or len(problems) < 2:
            ids = [self.submit(p, warm_start=w, deadline=dl, request_id=r)
                   for p, w, dl, r in zip(problems, warm_starts,
                                          deadlines, request_ids)]
            return [self.result(i, timeout=timeout) for i in ids]
        if self._closed:
            raise RuntimeError("service is closed")

        from ..batch import Coalescer
        submitted = time.perf_counter()
        lanes = []
        for problem, warm, dl, rid_in in zip(problems, warm_starts,
                                             deadlines, request_ids):
            with self._lock:
                if rid_in is None:
                    rid = self._next_id
                    self._next_id += 1
                else:
                    rid = int(rid_in)
                    self._next_id = max(self._next_id, rid + 1)
            if dl is None:
                dl = self.resilience.deadline_seconds
            lanes.append({
                "rid": rid, "problem": problem, "warm": warm,
                "submitted": submitted,
                "deadline": dl,
                "deadline_at": (submitted + dl) if dl is not None
                               else None,
            })

        coalescer = Coalescer(max_batch=self.max_batch,
                              max_linger=self.max_linger)
        results: dict[int, ServeResult] = {}
        for idx, lane in enumerate(lanes):
            problem = lane["problem"]
            t_fp = time.perf_counter()
            c = self.width_for(problem)
            fingerprint = fingerprint_problem(problem, c=c)
            algorithm = choose_algorithm(
                problem, override=None if self.algorithm == "auto"
                else self.algorithm)
            key = self.cache_key(fingerprint, c, algorithm)
            lane["fingerprint"] = fingerprint
            lane["c"] = c
            lane["algorithm"] = algorithm
            lane["fp_seconds"] = time.perf_counter() - t_fp
            full = coalescer.offer(key, idx,
                                   deadline_at=lane["deadline_at"])
            if full is not None:
                self.metrics.counter("serving_batch_flushes_total",
                                     labels={"reason": "full"}).inc()
                self._solve_batch_group(key, [lanes[i] for i in full],
                                        results)
        for key, idxs in coalescer.flush_all():
            self.metrics.counter("serving_batch_flushes_total",
                                 labels={"reason": "drain"}).inc()
            self._solve_batch_group(key, [lanes[i] for i in idxs],
                                    results)
        return [results[lane["rid"]] for lane in lanes]

    def _solve_batch_group(self, key: str, group: list,
                           results: dict) -> None:
        """Solve one coalesced group; fall back lane-by-lane on error."""
        def solo(lane):
            results[lane["rid"]] = self._handle(
                lane["rid"], lane["problem"], lane["warm"],
                lane["submitted"], lane["deadline"])

        if len(group) == 1:
            solo(group[0])
            return
        from ..batch import solve_batch_job
        first = group[0]
        t_start = time.perf_counter()
        try:
            artifact, tier = self._ensure_artifact(
                first["problem"], first["fingerprint"], first["c"],
                first["algorithm"])
        except Exception:
            for lane in group:
                solo(lane)
            return
        t_ready = time.perf_counter()
        # Lanes beyond the first are true cache hits: the group key IS
        # the artifact key, so every extra lane reuses the resident
        # artifact. Touch the cache per lane so LRU order and hit-rate
        # accounting see each request, exactly like solo solves would.
        lane_tiers = [tier]
        for lane in group[1:]:
            self.cache.get(key)
            lane_tiers.append(TIER_HIT)
        plan = self.fault_plan
        injectors = [plan.injector_for(lane["rid"], 0)
                     if plan is not None else None for lane in group]
        try:
            bres = solve_batch_job(
                [lane["problem"] for lane in group], artifact,
                self.settings,
                warm_starts=[lane["warm"] for lane in group],
                pcg_eps=self.pcg_eps, verify=self.verify,
                injectors=injectors,
                deadline_ats=[lane["deadline_at"] for lane in group])
        except Exception:
            self.metrics.counter("serving_batch_aborts_total").inc()
            for lane in group:
                solo(lane)
            return
        t_done = time.perf_counter()
        self.metrics.counter("serving_batches_total").inc()
        self.metrics.histogram("serving_batch_width").observe(len(group))

        res = self.resilience
        for lane, lane_tier, raw, err in zip(group, lane_tiers,
                                             bres.results,
                                             bres.lane_errors):
            if raw is None:
                # Frozen lane (fault / deadline): the solo resilient
                # path owns retry, degradation and accounting.
                self.metrics.counter(
                    "serving_batch_lane_fallbacks_total",
                    labels={"reason": err or "unknown"}).inc()
                solo(lane)
                continue
            suspect = bool(raw.fault_events)
            check = (res.check == "always"
                     or (res.check == "auto" and suspect))
            if (check and not solution_ok(
                    lane["problem"], raw.x, raw.y, raw.z,
                    eps_abs=self.settings.eps_abs,
                    eps_rel=self.settings.eps_rel,
                    factor=res.check_factor)):
                # Same silent-corruption guarantee as the solo path: a
                # lane that fails the host KKT re-check never returns
                # batched output.
                self.metrics.counter(
                    "serving_silent_corruption_total").inc()
                self.metrics.counter(
                    "serving_batch_lane_fallbacks_total",
                    labels={"reason": "kkt"}).inc()
                solo(lane)
                continue
            faults_fired = len(raw.fault_events)
            if faults_fired:
                self.metrics.counter(
                    "serving_faults_injected_total").inc(faults_fired)
            self.metrics.counter("serving_requests_total").inc()
            self.metrics.counter("serving_batched_requests_total").inc()
            self.metrics.counter(
                "serving_cache_hits_total" if lane_tier == TIER_HIT
                else "serving_cache_misses_total").inc()
            setup_seconds = lane.get("fp_seconds", 0.0) + (
                t_ready - t_start if lane_tier != TIER_HIT else 0.0)
            record = ServeRecord(
                request_id=lane["rid"],
                problem_name=lane["problem"].name,
                fingerprint_key=lane["fingerprint"].key, c=lane["c"],
                architecture=artifact.architecture_string,
                tier=lane_tier,
                backend="rsqp", algorithm=lane["algorithm"],
                queue_seconds=t_start - lane["submitted"],
                setup_seconds=setup_seconds,
                customize_seconds=(artifact.customize_seconds
                                   if lane_tier in (TIER_BUILD, TIER_DISK)
                                   else 0.0),
                compile_seconds=(artifact.compile_seconds
                                 if lane_tier in (TIER_BUILD, TIER_DISK)
                                 else 0.0),
                solve_seconds=t_done - t_ready,
                total_seconds=t_done - lane["submitted"],
                simulated_cycles=raw.total_cycles,
                simulated_seconds=raw.solve_seconds,
                admm_iterations=raw.admm_iterations,
                converged=raw.converged,
                faults_injected=faults_fired,
                batch_width=len(group))
            with self._lock:
                self._records[lane["rid"]] = record
            self.metrics.histogram("serving_queue_seconds").observe(
                record.queue_seconds)
            self.metrics.histogram("serving_setup_seconds").observe(
                record.setup_seconds)
            self.metrics.histogram("serving_solve_seconds").observe(
                record.solve_seconds)
            self.metrics.histogram("serving_admm_iterations").observe(
                raw.admm_iterations)
            self.metrics.histogram("serving_simulated_cycles").observe(
                raw.total_cycles)
            if not raw.converged:
                self.metrics.counter("serving_unconverged_total").inc()
            results[lane["rid"]] = ServeResult(
                x=raw.x, y=raw.y, z=raw.z, converged=raw.converged,
                backend="rsqp", record=record, raw=raw)

    # ------------------------------------------------------------------
    def _handle(self, request_id: int, problem: QProblem,
                warm_start: tuple | None,
                submitted: float,
                deadline: float | None = None) -> ServeResult:
        t_start = time.perf_counter()
        queue_seconds = t_start - submitted
        c = self.width_for(problem)
        fingerprint = fingerprint_problem(problem, c=c)
        self.metrics.counter("serving_requests_total").inc()
        algorithm = choose_algorithm(
            problem, override=None if self.algorithm == "auto"
            else self.algorithm)
        self.metrics.counter("serving_algo_selected_total").inc()
        self.metrics.counter(
            f"serving_algo_selected_{algorithm}_total").inc()

        key = self.cache_key(fingerprint, c, algorithm)
        poisoned = self._apply_poisons(request_id, key)
        if deadline is None:
            deadline = self.resilience.deadline_seconds
        deadline_at = (submitted + deadline) if deadline is not None else None
        if self.cold_policy == "fallback":
            artifact = self.cache.get(key)
            if artifact is not None:
                tier = TIER_HIT
            else:
                tier = TIER_FALLBACK
                with self._lock:
                    self._background.append(self._dispatch.submit(
                        self._ensure_artifact, problem, fingerprint, c,
                        algorithm))
        else:
            artifact, tier = self._ensure_artifact(problem, fingerprint, c,
                                                   algorithm)
        t_ready = time.perf_counter()

        resil = {"retries": 0, "rollbacks": 0, "faults_injected": 0,
                 "degraded": False, "deadline_missed": False}
        if tier == TIER_FALLBACK:
            self.metrics.counter("serving_fallback_solves_total").inc()
            raw = self._run_reference(problem, warm_start, algorithm)
            backend = "reference"
            converged = raw.status.is_optimal
            x, y, z = raw.x, raw.y, raw.z
            simulated_cycles = 0
            simulated_seconds = 0.0
            admm_iterations = raw.info.iterations
            architecture = ""
        else:
            self.metrics.counter(
                "serving_cache_hits_total" if tier == TIER_HIT
                else "serving_cache_misses_total").inc()
            raw, resil = self._solve_resilient(
                request_id, problem, artifact, warm_start, deadline_at,
                resil)
            if resil["degraded"]:
                backend = "reference"
                converged = raw.status.is_optimal
                x, y, z = raw.x, raw.y, raw.z
                simulated_cycles = 0
                simulated_seconds = 0.0
                admm_iterations = raw.info.iterations
            else:
                backend = "rsqp"
                converged = raw.converged
                x, y, z = raw.x, raw.y, raw.z
                simulated_cycles = raw.total_cycles
                simulated_seconds = raw.solve_seconds
                admm_iterations = raw.admm_iterations
            architecture = artifact.architecture_string
        t_done = time.perf_counter()

        record = ServeRecord(
            request_id=request_id, problem_name=problem.name,
            fingerprint_key=fingerprint.key, c=c,
            architecture=architecture, tier=tier, backend=backend,
            algorithm=algorithm,
            queue_seconds=queue_seconds,
            setup_seconds=t_ready - t_start,
            customize_seconds=(artifact.customize_seconds
                               if artifact is not None
                               and tier in (TIER_BUILD, TIER_DISK)
                               else 0.0),
            compile_seconds=(artifact.compile_seconds
                             if artifact is not None
                             and tier in (TIER_BUILD, TIER_DISK)
                             else 0.0),
            solve_seconds=t_done - t_ready,
            total_seconds=t_done - submitted,
            simulated_cycles=simulated_cycles,
            simulated_seconds=simulated_seconds,
            admm_iterations=admm_iterations,
            converged=converged,
            retries=resil["retries"],
            rollbacks=resil["rollbacks"],
            faults_injected=resil["faults_injected"] + poisoned,
            degraded=resil["degraded"],
            deadline_missed=resil["deadline_missed"])
        with self._lock:
            self._records[request_id] = record
        self.metrics.histogram("serving_queue_seconds").observe(
            queue_seconds)
        self.metrics.histogram("serving_setup_seconds").observe(
            record.setup_seconds)
        self.metrics.histogram("serving_solve_seconds").observe(
            record.solve_seconds)
        self.metrics.histogram("serving_admm_iterations").observe(
            admm_iterations)
        if simulated_cycles:
            self.metrics.histogram("serving_simulated_cycles").observe(
                simulated_cycles)
        if not converged:
            self.metrics.counter("serving_unconverged_total").inc()
        return ServeResult(x=x, y=y, z=z, converged=converged,
                           backend=backend, record=record, raw=raw)

    def _apply_poisons(self, request_id: int, key: str) -> int:
        """Fire scheduled artifact-poison faults against the cache.

        Only an artifact already resident in memory can be poisoned
        (``peek`` — no LRU side effect); the corruption is then caught
        by static verification on the next :meth:`_ensure_artifact`
        and healed by the invalidate + rebuild path.
        """
        plan = self.fault_plan
        if plan is None:
            return 0
        fired = 0
        for _fault in plan.poisons_for(request_id):
            target = self.cache.peek(key)
            if target is None:
                continue
            poison_artifact(target)
            fired += 1
            self.metrics.counter("serving_faults_injected_total").inc()
        return fired

    def _solve_resilient(self, request_id, problem, artifact, warm_start,
                         deadline_at, resil):
        """Accelerator attempts with retry/backoff, then degradation.

        Returns ``(raw, resil)`` where ``raw`` is an
        :class:`~repro.hw.accelerator.RSQPResult` on success or the
        reference solver's result when every attempt failed and the
        policy degrades (``resil["degraded"]`` distinguishes them).
        The headline guarantee lives here: a solution that survived
        injected faults is re-checked against the KKT conditions on
        the host, so a silently-corrupted answer is treated exactly
        like a crash — retried, then degraded — never returned.
        """
        res = self.resilience
        plan = self.fault_plan
        attempt = 0
        last_exc: BaseException | None = None
        while attempt <= res.max_retries:
            remaining = None
            if deadline_at is not None:
                remaining = deadline_at - time.perf_counter()
                if remaining <= 0:
                    last_exc = DeadlineExceededError(
                        f"request {request_id} deadline expired before "
                        f"attempt {attempt}")
                    self._record_deadline_miss(deadline_at, resil)
                    break
            injector = (plan.injector_for(request_id, attempt)
                        if plan is not None else None)
            try:
                raw = self._run_accelerator(
                    problem, artifact, warm_start, injector=injector,
                    deadline_seconds=remaining)
            except DeadlineExceededError as exc:
                last_exc = exc
                self._count_injected(injector, exc, resil)
                self._record_deadline_miss(deadline_at, resil)
                break  # no budget left for another attempt
            except (FaultDetectedError, SimulationError) as exc:
                last_exc = exc
                self._count_injected(injector, exc, resil)
                attempt += 1
                if attempt > res.max_retries:
                    break
                resil["retries"] += 1
                self.metrics.counter("serving_retries_total").inc()
                with self._lock:
                    delay = res.backoff_seconds(attempt, self._jitter_rng)
                if remaining is not None:
                    delay = min(delay, max(remaining, 0.0))
                if delay > 0:
                    time.sleep(delay)
                continue
            self._count_injected(injector, None, resil, raw=raw)
            resil["rollbacks"] += raw.rollbacks
            if raw.rollbacks:
                self.metrics.counter(
                    "serving_fault_rollbacks_total").inc(raw.rollbacks)
            suspect = bool(raw.fault_events) or raw.rollbacks > 0
            check = (res.check == "always"
                     or (res.check == "auto" and suspect))
            if (raw.converged and check
                    and not solution_ok(
                        problem, raw.x, raw.y, raw.z,
                        eps_abs=self.settings.eps_abs,
                        eps_rel=self.settings.eps_rel,
                        factor=res.check_factor)):
                # Silent corruption: converged flag is up but the
                # solution does not satisfy KKT. Retry like a crash.
                last_exc = FaultDetectedError(
                    f"request {request_id} attempt {attempt}: solution "
                    "failed the host-side KKT re-check",
                    events=raw.fault_events)
                self.metrics.counter(
                    "serving_silent_corruption_total").inc()
                attempt += 1
                if attempt > res.max_retries:
                    break
                resil["retries"] += 1
                self.metrics.counter("serving_retries_total").inc()
                continue
            return raw, resil
        # Every attempt failed (or the deadline is gone).
        if not res.degrade:
            assert last_exc is not None
            raise last_exc
        self.metrics.counter("serving_degraded_total").inc()
        resil["degraded"] = True
        raw = self._run_reference(
            problem, warm_start, getattr(artifact, "algorithm", "admm"))
        return raw, resil

    def _count_injected(self, injector, exc, resil, raw=None) -> None:
        """Tally faults fired during one attempt, whatever its outcome.

        In-process execution reads the injector's own event log; with a
        process pool the injector object lives in the worker, so the
        count rides back on the result (or the raised fault error).
        """
        if injector is None:
            return
        if self._solve_pool is None:
            fired = len(injector.events)
        elif raw is not None:
            fired = len(raw.fault_events)
        elif isinstance(exc, FaultDetectedError):
            fired = len(exc.events)
        else:
            fired = 0
        if fired:
            resil["faults_injected"] += fired
            self.metrics.counter(
                "serving_faults_injected_total").inc(fired)

    def _record_deadline_miss(self, deadline_at, resil) -> None:
        if resil["deadline_missed"]:
            return
        resil["deadline_missed"] = True
        overrun = max(time.perf_counter() - deadline_at, 0.0)
        self.metrics.counter("serving_deadline_misses_total").inc()
        self.metrics.histogram(
            "serving_deadline_miss_seconds").observe(overrun)

    def _run_accelerator(self, problem, artifact, warm_start,
                         injector=None, deadline_seconds=None):
        # _ensure_artifact already verified (and memoized) the
        # artifact, so the job itself skips the re-check.
        if self._solve_pool is not None:
            return self._solve_pool.submit(
                solve_job, problem, artifact, self.settings, warm_start,
                self.pcg_eps, self.backend, False,
                injector=injector,
                deadline_seconds=deadline_seconds).result()
        return solve_job(problem, artifact, self.settings, warm_start,
                         self.pcg_eps, self.backend, verify=False,
                         injector=injector,
                         deadline_seconds=deadline_seconds)

    def _run_reference(self, problem, warm_start, algorithm="admm"):
        if self._solve_pool is not None:
            return self._solve_pool.submit(
                reference_job, problem, self.settings, warm_start,
                algorithm).result()
        return reference_job(problem, self.settings, warm_start, algorithm)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def records(self) -> list[ServeRecord]:
        with self._lock:
            return [self._records[i] for i in sorted(self._records)]

    def cache_stats(self) -> CacheStats:
        return self.cache.stats()

    def metrics_snapshot(self) -> dict:
        """Metrics + cache counters in one export (docs/SERVING.md)."""
        snap = self.metrics.snapshot()
        snap["cache"] = self.cache_stats().as_dict()
        return snap

    def amortization_report(self) -> str:
        """Cold-vs-warm setup comparison over everything served so far."""
        records = self.records()
        cold = [r for r in records if r.tier in (TIER_BUILD, TIER_DISK)]
        warm = [r for r in records if r.tier == TIER_HIT]
        lines = [f"requests served        : {len(records)}"]
        stats = self.cache_stats()
        lines.append(f"cache hit rate         : {stats.hit_rate:.1%} "
                     f"({stats.hits} hits / {stats.misses} misses)")
        if cold:
            cold_setup = float(np.mean([r.setup_seconds for r in cold]))
            lines.append(f"cold setup (mean)      : {cold_setup * 1e3:.2f} ms"
                         "  (customize + compile + bind)")
        if warm:
            warm_setup = float(np.mean([r.setup_seconds for r in warm]))
            lines.append(f"warm setup (mean)      : {warm_setup * 1e3:.2f} ms"
                         "  (fingerprint + cache lookup)")
        if cold and warm and warm_setup > 0:
            lines.append(f"setup amortization     : "
                         f"{cold_setup / warm_setup:.1f}x")
        fallback = [r for r in records if r.tier == TIER_FALLBACK]
        if fallback:
            lines.append(f"reference fallbacks    : {len(fallback)}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> None:
        """Wait for all outstanding requests and background builds.

        Re-snapshots until quiescent, so background builds scheduled by
        requests that finish *during* the drain are waited on too.
        ``timeout`` is a **total** budget across everything
        outstanding; on expiry a :class:`TimeoutError` is raised with
        the number of still-unfinished requests — never a silent
        return with work still in flight.
        """
        budget_ends = (time.monotonic() + timeout
                       if timeout is not None else None)
        waited: set[int] = set()
        while True:
            with self._lock:
                futures = [f for f in (list(self._futures.values())
                                       + list(self._background))
                           if id(f) not in waited]
            if not futures:
                return
            for future in futures:
                waited.add(id(future))
                if budget_ends is None:
                    future.exception()
                    continue
                remaining = budget_ends - time.monotonic()
                try:
                    if remaining <= 0:
                        raise _FuturesTimeout()
                    future.exception(timeout=remaining)
                except _FuturesTimeout:
                    pending = sum(1 for f in futures if not f.done())
                    raise TimeoutError(
                        f"drain timed out after {timeout:.3g}s with "
                        f"{pending} request(s) still outstanding"
                    ) from None

    def close(self, timeout: float | None = None,
              cancel_pending: bool = False) -> None:
        """Drain, persist the cache (if configured) and stop workers.

        With a ``timeout``, the drain raises :class:`TimeoutError` on
        expiry. By default that propagates with the service still
        open (callers may drain again); ``cancel_pending=True`` turns
        it into a *hard* shutdown instead — never-started work is
        cancelled at the executors so every outstanding future
        resolves (result, exception, or cancelled) and nothing leaks.
        """
        if self._closed:
            return
        try:
            self.drain(timeout=timeout)
        except TimeoutError:
            if not cancel_pending:
                raise
            self._closed = True
            self._dispatch.shutdown(wait=True, cancel_pending=True)
            if self._solve_pool is not None:
                self._solve_pool.shutdown(wait=True, cancel_pending=True)
            if self.cache.path is not None:
                self.cache.save()
            return
        self._closed = True
        if self.cache.path is not None:
            self.cache.save()
        self._dispatch.shutdown()
        if self._solve_pool is not None:
            self._solve_pool.shutdown()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
