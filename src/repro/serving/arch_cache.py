"""LRU cache of frozen architecture artifacts, keyed by structure.

One :class:`ArchArtifact` is everything the customization flow
produces for a problem structure that is reusable across numeric data:
the detached :class:`~repro.customization.ProblemCustomization`
(architecture, schedules, CVB layouts), the compiled OSQP program with
cycle costs attached, and the modeled f_max / power / resource figures
of the chosen architecture. Binding an artifact to fresh numeric data
is milliseconds (host scaling + HBM download); building one from
scratch is the full LZW search + scheduling + CVB compression flow —
the cost the cache amortizes.

Persistence: artifacts hold compiled programs and schedules that are
cheap to *re-derive* but bulky to serialize, so the JSON file stores
the *architecture decision* per structure key — the ``C{S}`` string,
width and build parameters. On a warm process start a persisted entry
lets the service skip the architecture search (the dominant cost) and
rebuild the artifact with a single :func:`evaluate_architecture` pass.
The format is documented in ``docs/SERVING.md``.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from ..customization import (ProblemCustomization, customize_problem,
                             evaluate_architecture, parse_architecture)
from ..hw import (CompiledProgram, estimate_resources, fmax_mhz,
                  fpga_power_watts)
from ..hw.accelerator import compile_for_customization
from ..hw.resources import ResourceEstimate
from .fingerprint import StructureFingerprint, fingerprint_problem

__all__ = ["ArchArtifact", "ArchCache", "CacheStats", "PersistedSpec",
           "build_artifact"]

_PERSIST_VERSION = 1

log = logging.getLogger(__name__)


@dataclass
class ArchArtifact:
    """Frozen, structure-only output of the customization flow."""

    fingerprint: StructureFingerprint
    c: int
    customization: ProblemCustomization  # detached (problem is None)
    compiled: CompiledProgram
    max_pcg_iter: int
    fmax_mhz: float
    power_watts: float
    resources: ResourceEstimate
    #: Build-time accounting, reported by the amortization benchmarks.
    customize_seconds: float = 0.0
    compile_seconds: float = 0.0
    #: Which algorithm's program this artifact carries ("admm"/"pdqp").
    algorithm: str = "admm"
    #: Set by :func:`repro.verify.ensure_artifact_verified` after the
    #: static passes accept the artifact; solve paths skip re-checking.
    verified: bool = field(default=False, compare=False)
    #: Set by :func:`repro.verify.ensure_batch_verified` (and the
    #: ``--codegen`` CLI) after the generated-C tier's static lift
    #: passes; one accept covers every batch bound to this artifact.
    codegen_verified: bool = field(default=False, compare=False)

    @property
    def architecture_string(self) -> str:
        return str(self.customization.architecture)

    @property
    def build_seconds(self) -> float:
        return self.customize_seconds + self.compile_seconds


@dataclass(frozen=True)
class PersistedSpec:
    """Disk record of one cache entry: enough to skip the search."""

    key: str
    c: int
    architecture: str
    max_pcg_iter: int
    allow_partial: bool = False
    customize_seconds: float = 0.0
    #: Algorithm of the compiled program; defaults keep v1 files valid.
    algorithm: str = "admm"


@dataclass
class CacheStats:
    """Counter snapshot; ``disk_hits`` are rebuilds from persisted specs."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    size: int = 0
    capacity: int = 0
    persisted: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "disk_hits": self.disk_hits,
                "size": self.size, "capacity": self.capacity,
                "persisted": self.persisted, "hit_rate": self.hit_rate}


def build_artifact(problem, c, cache: "ArchCache | None" = None, *,
                   fingerprint: StructureFingerprint | None = None,
                   key: str | None = None,
                   architecture=None,
                   max_admm_iter: int = 4000,
                   max_pcg_iter: int = 500,
                   allow_partial: bool = False,
                   algorithm: str = "admm",
                   metrics=None,
                   metrics_prefix: str = "serving") -> ArchArtifact:
    """Run the customization + compile flow into one frozen artifact.

    The single cold-path builder shared by :class:`SolverService` and
    the fleet layer — artifact construction without a service instance.
    Three build modes, in priority order:

    * ``architecture`` given — skip the search and bind *that*
      architecture to this problem's structure (the fleet's cross-node
      evaluation: how well does an incoming structure run on a node's
      frozen datapath). ``c`` is taken from the architecture.
    * ``cache`` + ``key`` given and the cache holds a persisted spec —
      re-derive schedules + CVB for the recorded architecture decision
      (the disk tier) and note the disk hit on the cache.
    * otherwise — the full width-``c`` customization flow
      (:func:`repro.customization.customize_problem`).

    ``metrics``, when given, receives ``{prefix}_customize_seconds`` /
    ``{prefix}_compile_seconds`` observations and a
    ``{prefix}_disk_rebuilds_total`` increment on the disk path.
    The caller is responsible for putting the artifact into a cache
    (or use :meth:`ArchCache.get_or_build` around this).
    """
    if fingerprint is None:
        fingerprint = fingerprint_problem(problem, c=architecture.c
                                          if architecture is not None else c)
    spec = (cache.persisted_spec(key)
            if cache is not None and key is not None
            and architecture is None else None)
    t0 = time.perf_counter()
    if architecture is not None:
        custom = evaluate_architecture(problem, architecture,
                                       allow_partial=allow_partial)
    elif spec is not None:
        # The architecture decision is known: skip the search and just
        # re-derive schedules + CVB layout for this structure.
        custom = evaluate_architecture(
            problem, parse_architecture(spec.architecture),
            allow_partial=allow_partial)
        cache.note_disk_hit()
        if metrics is not None:
            metrics.counter(f"{metrics_prefix}_disk_rebuilds_total").inc()
    else:
        custom = customize_problem(problem, c,
                                   allow_partial=allow_partial)
    t1 = time.perf_counter()
    if algorithm == "pdqp":
        from ..hw.pdqp import compile_pdqp_for_customization
        compiled = compile_pdqp_for_customization(
            custom, problem.n, problem.m, max_iter=max_admm_iter)
    elif algorithm == "admm":
        compiled = compile_for_customization(
            custom, problem.n, problem.m,
            max_admm_iter=max_admm_iter, max_pcg_iter=max_pcg_iter)
    else:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected 'admm' or 'pdqp'")
    t2 = time.perf_counter()
    arch = custom.architecture
    if metrics is not None:
        metrics.histogram(
            f"{metrics_prefix}_customize_seconds").observe(t1 - t0)
        metrics.histogram(
            f"{metrics_prefix}_compile_seconds").observe(t2 - t1)
    return ArchArtifact(
        fingerprint=fingerprint, c=arch.c,
        customization=custom.detach(), compiled=compiled,
        max_pcg_iter=max_pcg_iter,
        fmax_mhz=fmax_mhz(arch), power_watts=fpga_power_watts(arch),
        resources=estimate_resources(arch),
        customize_seconds=t1 - t0, compile_seconds=t2 - t1,
        algorithm=algorithm)


class ArchCache:
    """Thread-safe LRU mapping cache key -> :class:`ArchArtifact`.

    The key is chosen by the caller (the service composes the structure
    fingerprint with the build parameters, see
    :meth:`SolverService.cache_key`); the cache itself is agnostic.
    """

    def __init__(self, capacity: int = 128,
                 path: str | Path | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.path = Path(path) if path is not None else None
        self._entries: OrderedDict[str, ArchArtifact] = OrderedDict()
        self._specs: dict[str, PersistedSpec] = {}
        self._lock = threading.RLock()
        self._build_locks: dict[str, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0
        if self.path is not None and self.path.exists():
            try:
                self.load()
            except ValueError as exc:
                # A future-version file is a configuration problem,
                # but it must not take the service down at startup —
                # affected structures simply rebuild from scratch.
                log.warning("ignoring cache file %s: %s", self.path, exc)

    # ------------------------------------------------------------------
    def get(self, key: str) -> ArchArtifact | None:
        """Look up and touch; counts one hit or miss."""
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return artifact

    def peek(self, key: str) -> ArchArtifact | None:
        """Look up without touching LRU order or counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, artifact: ArchArtifact) -> None:
        with self._lock:
            self._entries[key] = artifact
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._specs[key] = PersistedSpec(
                key=key, c=artifact.c,
                architecture=artifact.architecture_string,
                max_pcg_iter=artifact.max_pcg_iter,
                customize_seconds=artifact.customize_seconds,
                algorithm=artifact.algorithm)

    def persisted_spec(self, key: str) -> PersistedSpec | None:
        """The durable architecture decision for ``key``, if any.

        Present for every entry ever ``put`` in this process plus
        everything loaded from disk — it survives LRU eviction, so an
        evicted structure still skips the search when it comes back.
        """
        with self._lock:
            return self._specs.get(key)

    def note_disk_hit(self) -> None:
        """Record that a miss was served by rebuilding a persisted spec."""
        with self._lock:
            self._disk_hits += 1

    def invalidate(self, key: str) -> bool:
        """Drop an in-memory entry (e.g. a corrupted artifact) so the
        next lookup rebuilds it; the persisted spec survives, so the
        rebuild still skips the architecture search. Returns whether
        an entry was present."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def get_or_build(self, key: str, builder) -> tuple[ArchArtifact, bool]:
        """Return ``(artifact, was_hit)``; concurrent misses build once.

        ``builder`` is called without arguments outside the cache-wide
        lock (builds are slow); a per-key lock guarantees one build per
        key even under racing workers. ``was_hit`` is True only on the
        fast path — a caller that had to wait for a racing build still
        reports a miss, because it paid the cold-path latency.
        """
        artifact = self.get(key)
        if artifact is not None:
            return artifact, True
        with self._lock:
            build_lock = self._build_locks.setdefault(key, threading.Lock())
        with build_lock:
            # Double-check: a racing worker may have built while we
            # waited; reuse its artifact but stay accounted as a miss.
            artifact = self.peek(key)
            if artifact is None:
                artifact = builder()
                self.put(key, artifact)
        with self._lock:
            self._build_locks.pop(key, None)
        return artifact, False

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=self._evictions,
                              disk_hits=self._disk_hits,
                              size=len(self._entries),
                              capacity=self.capacity,
                              persisted=len(self._specs))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------
    def save(self, path: str | Path | None = None) -> Path:
        """Write every known architecture decision as JSON.

        Crash-safe: the payload goes to a fresh temporary file in the
        target directory, is fsynced, and is renamed over the target
        atomically (then the directory entry is fsynced too). A
        process killed at *any* instant leaves either the old complete
        file or the new complete file — never a truncated one — so a
        warm restart always loads a coherent cache (and :meth:`load`
        already shrugs off pre-existing corruption).
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path given and cache has no default path")
        with self._lock:
            specs = [spec.__dict__ for spec in self._specs.values()]
        payload = {"version": _PERSIST_VERSION, "entries": specs}
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=target.name + ".", suffix=".tmp", dir=target.parent)
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(payload, indent=2, sort_keys=True))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        if hasattr(os, "O_DIRECTORY"):  # pragma: no branch - posix
            dir_fd = os.open(target.parent, os.O_RDONLY | os.O_DIRECTORY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        return target

    def load(self, path: str | Path | None = None) -> int:
        """Merge persisted specs from JSON; returns how many were read.

        Hardened against disk rot: a corrupted or truncated file (bad
        JSON, unreadable, not a dict) logs a warning and loads nothing
        — the affected structures rebuild through the normal cold path
        instead of the service crashing with a ``JSONDecodeError``.
        Individually malformed entries are skipped the same way. An
        explicit *version mismatch* on a well-formed file still raises
        ``ValueError``: that is a configuration error, not corruption.
        """
        source = Path(path) if path is not None else self.path
        if source is None:
            raise ValueError("no path given and cache has no default path")
        try:
            payload = json.loads(source.read_text())
        except (OSError, UnicodeDecodeError,
                json.JSONDecodeError) as exc:
            log.warning(
                "arch cache file %s is corrupt (%s); ignoring it — "
                "structures will rebuild", source, exc)
            return 0
        if not isinstance(payload, dict):
            log.warning(
                "arch cache file %s is corrupt (not a JSON object); "
                "ignoring it — structures will rebuild", source)
            return 0
        if payload.get("version") != _PERSIST_VERSION:
            raise ValueError(
                f"unsupported cache file version {payload.get('version')!r}")
        entries = payload.get("entries", [])
        if not isinstance(entries, list):
            log.warning(
                "arch cache file %s is corrupt (entries is not a "
                "list); ignoring it — structures will rebuild", source)
            return 0
        loaded = 0
        with self._lock:
            for raw in entries:
                try:
                    spec = PersistedSpec(**raw)
                except TypeError as exc:
                    log.warning(
                        "skipping malformed arch cache entry in %s: %s",
                        source, exc)
                    continue
                self._specs.setdefault(spec.key, spec)
                loaded += 1
        return loaded
