"""LRU cache of frozen architecture artifacts, keyed by structure.

One :class:`ArchArtifact` is everything the customization flow
produces for a problem structure that is reusable across numeric data:
the detached :class:`~repro.customization.ProblemCustomization`
(architecture, schedules, CVB layouts), the compiled OSQP program with
cycle costs attached, and the modeled f_max / power / resource figures
of the chosen architecture. Binding an artifact to fresh numeric data
is milliseconds (host scaling + HBM download); building one from
scratch is the full LZW search + scheduling + CVB compression flow —
the cost the cache amortizes.

Persistence: artifacts hold compiled programs and schedules that are
cheap to *re-derive* but bulky to serialize, so the JSON file stores
the *architecture decision* per structure key — the ``C{S}`` string,
width and build parameters. On a warm process start a persisted entry
lets the service skip the architecture search (the dominant cost) and
rebuild the artifact with a single :func:`evaluate_architecture` pass.
The format is documented in ``docs/SERVING.md``.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from ..customization import ProblemCustomization
from ..hw import CompiledProgram
from ..hw.resources import ResourceEstimate
from .fingerprint import StructureFingerprint

__all__ = ["ArchArtifact", "ArchCache", "CacheStats", "PersistedSpec"]

_PERSIST_VERSION = 1


@dataclass
class ArchArtifact:
    """Frozen, structure-only output of the customization flow."""

    fingerprint: StructureFingerprint
    c: int
    customization: ProblemCustomization  # detached (problem is None)
    compiled: CompiledProgram
    max_pcg_iter: int
    fmax_mhz: float
    power_watts: float
    resources: ResourceEstimate
    #: Build-time accounting, reported by the amortization benchmarks.
    customize_seconds: float = 0.0
    compile_seconds: float = 0.0

    @property
    def architecture_string(self) -> str:
        return str(self.customization.architecture)

    @property
    def build_seconds(self) -> float:
        return self.customize_seconds + self.compile_seconds


@dataclass(frozen=True)
class PersistedSpec:
    """Disk record of one cache entry: enough to skip the search."""

    key: str
    c: int
    architecture: str
    max_pcg_iter: int
    allow_partial: bool = False
    customize_seconds: float = 0.0


@dataclass
class CacheStats:
    """Counter snapshot; ``disk_hits`` are rebuilds from persisted specs."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    size: int = 0
    capacity: int = 0
    persisted: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "disk_hits": self.disk_hits,
                "size": self.size, "capacity": self.capacity,
                "persisted": self.persisted, "hit_rate": self.hit_rate}


class ArchCache:
    """Thread-safe LRU mapping cache key -> :class:`ArchArtifact`.

    The key is chosen by the caller (the service composes the structure
    fingerprint with the build parameters, see
    :meth:`SolverService.cache_key`); the cache itself is agnostic.
    """

    def __init__(self, capacity: int = 128,
                 path: str | Path | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.path = Path(path) if path is not None else None
        self._entries: OrderedDict[str, ArchArtifact] = OrderedDict()
        self._specs: dict[str, PersistedSpec] = {}
        self._lock = threading.RLock()
        self._build_locks: dict[str, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0
        if self.path is not None and self.path.exists():
            self.load()

    # ------------------------------------------------------------------
    def get(self, key: str) -> ArchArtifact | None:
        """Look up and touch; counts one hit or miss."""
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return artifact

    def peek(self, key: str) -> ArchArtifact | None:
        """Look up without touching LRU order or counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, artifact: ArchArtifact) -> None:
        with self._lock:
            self._entries[key] = artifact
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._specs[key] = PersistedSpec(
                key=key, c=artifact.c,
                architecture=artifact.architecture_string,
                max_pcg_iter=artifact.max_pcg_iter,
                customize_seconds=artifact.customize_seconds)

    def persisted_spec(self, key: str) -> PersistedSpec | None:
        """The durable architecture decision for ``key``, if any.

        Present for every entry ever ``put`` in this process plus
        everything loaded from disk — it survives LRU eviction, so an
        evicted structure still skips the search when it comes back.
        """
        with self._lock:
            return self._specs.get(key)

    def note_disk_hit(self) -> None:
        """Record that a miss was served by rebuilding a persisted spec."""
        with self._lock:
            self._disk_hits += 1

    def get_or_build(self, key: str, builder) -> tuple[ArchArtifact, bool]:
        """Return ``(artifact, was_hit)``; concurrent misses build once.

        ``builder`` is called without arguments outside the cache-wide
        lock (builds are slow); a per-key lock guarantees one build per
        key even under racing workers. ``was_hit`` is True only on the
        fast path — a caller that had to wait for a racing build still
        reports a miss, because it paid the cold-path latency.
        """
        artifact = self.get(key)
        if artifact is not None:
            return artifact, True
        with self._lock:
            build_lock = self._build_locks.setdefault(key, threading.Lock())
        with build_lock:
            # Double-check: a racing worker may have built while we
            # waited; reuse its artifact but stay accounted as a miss.
            artifact = self.peek(key)
            if artifact is None:
                artifact = builder()
                self.put(key, artifact)
        with self._lock:
            self._build_locks.pop(key, None)
        return artifact, False

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              evictions=self._evictions,
                              disk_hits=self._disk_hits,
                              size=len(self._entries),
                              capacity=self.capacity,
                              persisted=len(self._specs))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------
    def save(self, path: str | Path | None = None) -> Path:
        """Write every known architecture decision as JSON."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path given and cache has no default path")
        with self._lock:
            specs = [spec.__dict__ for spec in self._specs.values()]
        payload = {"version": _PERSIST_VERSION, "entries": specs}
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_suffix(target.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        tmp.replace(target)
        return target

    def load(self, path: str | Path | None = None) -> int:
        """Merge persisted specs from JSON; returns how many were read."""
        source = Path(path) if path is not None else self.path
        if source is None:
            raise ValueError("no path given and cache has no default path")
        payload = json.loads(source.read_text())
        if payload.get("version") != _PERSIST_VERSION:
            raise ValueError(
                f"unsupported cache file version {payload.get('version')!r}")
        loaded = 0
        with self._lock:
            for raw in payload.get("entries", []):
                spec = PersistedSpec(**raw)
                self._specs.setdefault(spec.key, spec)
                loaded += 1
        return loaded
