"""Persistent solver sessions: the sub-millisecond re-solve path.

A :class:`SolverSession` binds *once* to one problem structure — the
fingerprint is computed once, the cached artifact is verified once,
the simulated accelerator (machine, matrix schedules, compiled
programs, fused loop bodies) is constructed once — and then serves a
stream of same-structure re-solves. Each :meth:`SolverSession.update`
installs new numeric data **in place** (no re-fingerprint, no
re-schedule, no re-verification; the sparsity pattern is enforced) and
each :meth:`SolverSession.resolve` re-runs the resident accelerator,
by default warm-started from the previous solution with the adapted
penalty (rho for ADMM, the primal weight omega for PDQP) carried
across solves.

This is the serving-layer face of the paper's amortization argument
taken one level further: :class:`~repro.serving.service.SolverService`
amortizes the *customization flow* across requests; a session also
amortizes the *per-request host work* (fingerprint, cache lookup,
machine construction, program lowering and binding) across re-solves,
which is what MPC loops, SQP outer iterations and homotopy sweeps
actually pay per step.

Sessions keep the service's operational guarantees: every resolve runs
under the service's :class:`~repro.faults.ResiliencePolicy` (retry on
detected faults, host-side KKT re-check against silent corruption,
cooperative deadlines, degradation to the reference solver), and every
resolve is accounted in the service's records and metrics
(``serving_session_{opened,updates,resolves}_total`` counters plus a
per-algorithm resolve-latency histogram).

:class:`BatchSolverSession` is the lockstep counterpart for fleets of
same-structure streams (e.g. many MPC plants): one artifact, one
lane-minor batched run per :meth:`BatchSolverSession.resolve_all`.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import (DeadlineExceededError, FaultDetectedError,
                          ShapeError, SimulationError)
from ..faults import solution_ok
from ..qp import QProblem
from ..sparse import CSRMatrix
from .service import ServeRecord, ServeResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .service import SolverService

__all__ = ["SolverSession", "BatchSolverSession", "TIER_SESSION"]

#: Tier recorded for session re-solves — the artifact is *resident*,
#: not even looked up in the cache.
TIER_SESSION = "session"


def _vector(value, length: int, name: str) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.shape != (length,):
        raise ShapeError(
            f"{name} must have length {length}, got shape {arr.shape}")
    return arr


def updated_problem(current: QProblem, q=None, l=None, u=None,
                    P_data=None, A_data=None) -> QProblem:
    """A same-structure copy of ``current`` with new numeric data.

    Every check the full validating constructor would perform on the
    changed data runs here — a ``P_data`` that breaks symmetry or an
    inconsistent bound pair is rejected before it ever reaches a bound
    accelerator — but against the fixed pattern the checks reduce to
    vector comparisons, so this stays cheap enough for a per-step
    parametric update.
    """
    q_new = current.q if q is None else _vector(q, current.n, "q")
    l_new = current.l if l is None else _vector(l, current.m, "l")
    u_new = current.u if u is None else _vector(u, current.m, "u")
    if l is not None or u is not None:
        if np.any(np.isnan(l_new)) or np.any(np.isnan(u_new)):
            raise ShapeError("bounds must not contain NaN")
        if np.any(l_new > u_new):
            raise ShapeError("every lower bound must satisfy l <= u")
    if P_data is None and A_data is None:
        return QProblem._trusted(current.P, q_new, current.A, l_new,
                                 u_new, current.name)

    def matrix(mat: CSRMatrix, data, label: str) -> CSRMatrix:
        if data is None:
            return mat
        values = np.asarray(data, dtype=np.float64)
        if values.shape != mat.data.shape:
            raise ShapeError(
                f"{label}_data must have {mat.data.shape[0]} values "
                f"(the bound sparsity pattern), got shape {values.shape}")
        return CSRMatrix(mat.shape, values, mat.indices, mat.indptr,
                         check=False)

    p_new = matrix(current.P, P_data, "P")
    if P_data is not None:
        # The bound P's *pattern* is symmetric (validated when the
        # structure was first constructed), so new values are symmetric
        # iff they equal themselves under the transpose permutation —
        # the same comparison QProblem's validator performs, without
        # rebuilding the transpose structure.
        perm = np.argsort(current.P.indices, kind="stable")
        if not np.allclose(p_new.data, p_new.data[perm], atol=1e-9):
            raise ShapeError("P must be symmetric")
    return QProblem._trusted(p_new, q_new,
                             matrix(current.A, A_data, "A"),
                             l_new, u_new, current.name)


class SolverSession:
    """A solver handle bound to one problem structure.

    Created by :meth:`SolverService.open_session`; not meant to be
    constructed directly. Thread-compatible, not thread-safe: one
    session serves one control loop.

    Parameters
    ----------
    carry_state:
        Carry the adapted penalty parameter across re-solves (ADMM's
        rho, PDQP's primal weight omega). Default True — the whole
        point of a session is that consecutive problems are similar.
    deadline:
        Default per-resolve wall-clock budget in seconds (overridable
        per :meth:`resolve`); ``None`` falls back to the service
        resilience policy's deadline.
    """

    def __init__(self, service: "SolverService", problem: QProblem,
                 artifact, tier: str, fingerprint, c: int,
                 algorithm: str, *, carry_state: bool = True,
                 deadline: float | None = None):
        self._service = service
        self._problem = problem
        self.artifact = artifact
        self.open_tier = tier
        self.fingerprint = fingerprint
        self.c = c
        self.algorithm = algorithm
        self.carry_state = bool(carry_state)
        self.deadline = deadline
        self.updates = 0
        self.resolves = 0
        self._last: ServeResult | None = None
        self._needs_download = False
        self._closed = False
        self._accelerator = self._build_accelerator()

    # ------------------------------------------------------------------
    def _build_accelerator(self):
        service = self._service
        artifact = self.artifact
        if self.algorithm == "pdqp":
            from ..hw.pdqp import PDQPAccelerator
            from ..solver.algorithms import get_algorithm
            settings = get_algorithm("pdqp").coerce_settings(
                service.settings)
            return PDQPAccelerator(
                self._problem, customization=artifact.customization,
                settings=settings, compiled=artifact.compiled,
                backend=service.backend, verify=False)
        from ..hw.accelerator import RSQPAccelerator
        return RSQPAccelerator(
            self._problem, customization=artifact.customization,
            settings=service.settings, pcg_eps=service.pcg_eps,
            max_pcg_iter=artifact.max_pcg_iter,
            compiled=artifact.compiled, backend=service.backend,
            verify=False)

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # ------------------------------------------------------------------
    @property
    def problem(self) -> QProblem:
        """The numeric data the session is currently bound to."""
        return self._problem

    @property
    def last(self) -> ServeResult | None:
        """The most recent :class:`ServeResult`, or None."""
        return self._last

    # ------------------------------------------------------------------
    def update(self, *, q=None, l=None, u=None, P_data=None,
               A_data=None) -> None:
        """Install new numeric data in place (same sparsity pattern).

        Vector arguments replace ``q`` / ``l`` / ``u``; ``P_data`` /
        ``A_data`` replace the matrix *values* on the bound pattern
        (length must equal the pattern's nnz). The resident machine is
        re-downloaded — scaling and derived scalars are recomputed
        exactly as a fresh setup would — but nothing structural is
        touched: no re-fingerprint, no re-customization, no
        re-compilation, no re-verification.
        """
        self._ensure_open()
        if (q is None and l is None and u is None and P_data is None
                and A_data is None):
            raise ValueError("update() needs at least one of "
                             "q, l, u, P_data, A_data")
        problem = updated_problem(self._problem, q=q, l=l, u=u,
                                  P_data=P_data, A_data=A_data)
        accelerator = self._accelerator
        if self.algorithm == "pdqp":
            accelerator.refresh_numeric(problem,
                                        carry_omega=self.carry_state)
        else:
            accelerator.refresh_numeric(problem,
                                        carry_rho=self.carry_state)
        self._problem = problem
        self._needs_download = False
        self.updates += 1
        self._service.metrics.counter(
            "serving_session_updates_total").inc()

    # ------------------------------------------------------------------
    def resolve(self, *, warm_start="auto",
                deadline: float | None = None) -> ServeResult:
        """Re-solve the bound problem on the resident accelerator.

        ``warm_start`` defaults to ``"auto"``: the previous solution's
        ``(x, y)`` when one exists, cold otherwise. Pass an explicit
        ``(x0, y0)`` tuple or ``None`` to override. Runs under the
        service's resilience policy — retries, host-side KKT re-check,
        deadline enforcement and (when the policy allows) degradation
        to the reference solver all behave exactly like
        :meth:`SolverService.solve`.
        """
        self._ensure_open()
        service = self._service
        submitted = time.perf_counter()
        with service._lock:
            request_id = service._next_id
            service._next_id += 1
        if warm_start == "auto":
            warm = ((self._last.x, self._last.y)
                    if self._last is not None else None)
        else:
            warm = warm_start
        if deadline is None:
            deadline = self.deadline
        if deadline is None:
            deadline = service.resilience.deadline_seconds
        deadline_at = (submitted + deadline) if deadline is not None \
            else None

        resil = {"retries": 0, "rollbacks": 0, "faults_injected": 0,
                 "degraded": False, "deadline_missed": False}
        raw, resil = self._resolve_resilient(request_id, warm,
                                             deadline_at, resil)
        t_done = time.perf_counter()
        if resil["degraded"]:
            backend = "reference"
            converged = raw.status.is_optimal
            simulated_cycles = 0
            simulated_seconds = 0.0
            iterations = raw.info.iterations
        else:
            backend = "rsqp"
            converged = raw.converged
            simulated_cycles = raw.total_cycles
            simulated_seconds = raw.solve_seconds
            iterations = raw.admm_iterations

        solve_seconds = t_done - submitted
        record = ServeRecord(
            request_id=request_id, problem_name=self._problem.name,
            fingerprint_key=self.fingerprint.key, c=self.c,
            architecture=self.artifact.architecture_string,
            tier=TIER_SESSION, backend=backend,
            algorithm=self.algorithm,
            solve_seconds=solve_seconds,
            total_seconds=solve_seconds,
            simulated_cycles=simulated_cycles,
            simulated_seconds=simulated_seconds,
            admm_iterations=iterations, converged=converged,
            retries=resil["retries"], rollbacks=resil["rollbacks"],
            faults_injected=resil["faults_injected"],
            degraded=resil["degraded"],
            deadline_missed=resil["deadline_missed"])
        with service._lock:
            service._records[request_id] = record
        metrics = service.metrics
        metrics.counter("serving_requests_total").inc()
        metrics.counter("serving_session_resolves_total").inc()
        metrics.histogram("serving_session_resolve_seconds",
                          labels={"algorithm": self.algorithm}).observe(
                              solve_seconds)
        metrics.histogram("serving_admm_iterations").observe(iterations)
        if simulated_cycles:
            metrics.histogram("serving_simulated_cycles").observe(
                simulated_cycles)
        if not converged:
            metrics.counter("serving_unconverged_total").inc()
        result = ServeResult(x=raw.x, y=raw.y, z=raw.z,
                             converged=converged, backend=backend,
                             record=record, raw=raw)
        self._last = result
        self.resolves += 1
        return result

    def _run_once(self, warm, injector, deadline_seconds):
        """One accelerator attempt on the resident machine.

        The stats reset plus conditional re-download restore the exact
        fresh-accelerator preconditions: absolute cycle/iteration
        accounting starts at zero and every HBM bank and scalar
        register holds freshly downloaded data, so a session resolve
        is bitwise the solve a new accelerator would produce for the
        same data and warm start.
        """
        accelerator = self._accelerator
        machine = accelerator.machine
        machine.stats.reset()
        if self._needs_download:
            accelerator._download()
        accelerator.fault_injector = injector
        machine.injector = injector
        accelerator.deadline_seconds = deadline_seconds
        try:
            if warm is not None:
                x0, y0 = warm
                accelerator.warm_start(x=x0, y=y0)
            self._needs_download = True
            return accelerator.run()
        finally:
            accelerator.fault_injector = None
            machine.injector = None
            accelerator.deadline_seconds = None

    def _resolve_resilient(self, request_id, warm, deadline_at, resil):
        """The session counterpart of ``SolverService._solve_resilient``.

        Identical policy semantics (retry/backoff on detected faults,
        KKT re-check against silent corruption, cooperative deadline,
        degradation) — the only difference is that attempts re-run the
        resident accelerator instead of constructing a fresh one.
        """
        service = self._service
        res = service.resilience
        plan = service.fault_plan
        attempt = 0
        last_exc: BaseException | None = None
        while attempt <= res.max_retries:
            remaining = None
            if deadline_at is not None:
                remaining = deadline_at - time.perf_counter()
                if remaining <= 0:
                    last_exc = DeadlineExceededError(
                        f"session resolve {request_id} deadline expired "
                        f"before attempt {attempt}")
                    service._record_deadline_miss(deadline_at, resil)
                    break
            injector = (plan.injector_for(request_id, attempt)
                        if plan is not None else None)
            try:
                raw = self._run_once(warm, injector, remaining)
            except DeadlineExceededError as exc:
                last_exc = exc
                self._count_injected(injector, exc, resil)
                service._record_deadline_miss(deadline_at, resil)
                break
            except (FaultDetectedError, SimulationError) as exc:
                last_exc = exc
                self._count_injected(injector, exc, resil)
                attempt += 1
                if attempt > res.max_retries:
                    break
                resil["retries"] += 1
                service.metrics.counter("serving_retries_total").inc()
                with service._lock:
                    delay = res.backoff_seconds(attempt,
                                                service._jitter_rng)
                if remaining is not None:
                    delay = min(delay, max(remaining, 0.0))
                if delay > 0:
                    time.sleep(delay)
                continue
            self._count_injected(injector, None, resil, raw=raw)
            resil["rollbacks"] += raw.rollbacks
            if raw.rollbacks:
                service.metrics.counter(
                    "serving_fault_rollbacks_total").inc(raw.rollbacks)
            suspect = bool(raw.fault_events) or raw.rollbacks > 0
            check = (res.check == "always"
                     or (res.check == "auto" and suspect))
            if (raw.converged and check
                    and not solution_ok(
                        self._problem, raw.x, raw.y, raw.z,
                        eps_abs=service.settings.eps_abs,
                        eps_rel=service.settings.eps_rel,
                        factor=res.check_factor)):
                last_exc = FaultDetectedError(
                    f"session resolve {request_id} attempt {attempt}: "
                    "solution failed the host-side KKT re-check",
                    events=raw.fault_events)
                service.metrics.counter(
                    "serving_silent_corruption_total").inc()
                attempt += 1
                if attempt > res.max_retries:
                    break
                resil["retries"] += 1
                service.metrics.counter("serving_retries_total").inc()
                continue
            return raw, resil
        if not res.degrade:
            assert last_exc is not None
            raise last_exc
        service.metrics.counter("serving_degraded_total").inc()
        resil["degraded"] = True
        raw = service._run_reference(self._problem, warm, self.algorithm)
        return raw, resil

    def _count_injected(self, injector, exc, resil, raw=None) -> None:
        """Sessions always run in-process: read the injector directly."""
        if injector is None:
            return
        fired = len(injector.events)
        if fired:
            resil["faults_injected"] += fired
            self._service.metrics.counter(
                "serving_faults_injected_total").inc(fired)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the resident accelerator; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._accelerator = None

    def __enter__(self) -> "SolverSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (f"SolverSession({self._problem.name!r}, "
                f"algorithm={self.algorithm!r}, c={self.c}, "
                f"updates={self.updates}, resolves={self.resolves}, "
                f"{state})")


class BatchSolverSession:
    """A lockstep session over a fleet of same-structure streams.

    Binds one artifact to ``len(problems)`` lanes; every
    :meth:`resolve_all` runs one lane-minor batched solve
    (:func:`repro.batch.solve_batch_job`) over the current per-lane
    numeric data, warm-started from each lane's previous solution by
    default. Lane results are bitwise identical to solo solves on the
    same data (the batched runner's contract).
    """

    def __init__(self, service: "SolverService", problems, artifact,
                 tier: str, fingerprint, c: int, algorithm: str):
        self._service = service
        self._problems = list(problems)
        if not self._problems:
            raise ValueError("a batch session needs at least one lane")
        self.artifact = artifact
        self.open_tier = tier
        self.fingerprint = fingerprint
        self.c = c
        self.algorithm = algorithm
        self.resolves = 0
        self.updates = 0
        self._last: list | None = None
        self._closed = False

    @property
    def width(self) -> int:
        """Number of lanes."""
        return len(self._problems)

    @property
    def problems(self) -> list[QProblem]:
        return list(self._problems)

    @property
    def last(self) -> list | None:
        """Per-lane raw results of the most recent resolve, or None."""
        return self._last

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    def update(self, lane: int, *, q=None, l=None, u=None, P_data=None,
               A_data=None) -> None:
        """Install new numeric data for one lane (same pattern)."""
        self._ensure_open()
        self._problems[lane] = updated_problem(
            self._problems[lane], q=q, l=l, u=u, P_data=P_data,
            A_data=A_data)
        self.updates += 1
        self._service.metrics.counter(
            "serving_session_updates_total").inc()

    def resolve_all(self, *, warm_starts="auto") -> list:
        """One lockstep re-solve across every lane; returns raw lane
        results in lane order."""
        self._ensure_open()
        service = self._service
        from ..batch import solve_batch_job
        if warm_starts == "auto":
            warm_starts = ([(r.x, r.y) for r in self._last]
                           if self._last is not None
                           else [None] * len(self._problems))
        t_start = time.perf_counter()
        batch = solve_batch_job(self._problems, self.artifact,
                                service.settings,
                                warm_starts=warm_starts,
                                pcg_eps=service.pcg_eps, verify=False)
        elapsed = time.perf_counter() - t_start
        self._last = list(batch.results)
        self.resolves += 1
        metrics = service.metrics
        metrics.counter("serving_session_resolves_total").inc()
        metrics.histogram("serving_session_resolve_seconds",
                          labels={"algorithm": self.algorithm}).observe(
                              elapsed)
        metrics.histogram("serving_batch_width").observe(
            len(self._problems))
        return self._last

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True

    def __enter__(self) -> "BatchSolverSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
