"""Counters and histograms for the serving and fleet layers.

Deliberately tiny and dependency-free: a :class:`Counter` is a
monotonic float, a :class:`Histogram` keeps observations so snapshots
can report quantiles, and a :class:`MetricsRegistry` owns a namespace
of both and renders a point-in-time snapshot as a plain dict — the
schema documented in ``docs/SERVING.md``.

A histogram stores every observation by default (serving workloads are
thousands of solves, not billions, and exact quantiles keep the tests
sharp). Sustained fleet traffic is unbounded, so a histogram can be
created with a fixed-size *reservoir* instead: count/sum/min/max stay
exact while quantiles come from a seeded uniform reservoir sample
(Vitter's Algorithm R), bounding memory at ``reservoir`` floats no
matter how many observations arrive.

Snapshots render either human-readable (:meth:`MetricsRegistry.render`)
or in the Prometheus text exposition format
(:meth:`MetricsRegistry.render_prometheus`): counters as ``counter``
samples, histograms as ``summary`` quantile gauges.

All operations are thread-safe; the service's worker threads record
into one shared registry.
"""

from __future__ import annotations

import random
import threading
import zlib

import numpy as np

__all__ = ["Counter", "Histogram", "MetricsRegistry", "merge_counters",
           "parse_sample_name"]

#: Sentinel distinguishing "use the registry default" from an explicit
#: ``reservoir=None`` (exact mode) at histogram creation.
_UNSET = object()


def _escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text format: backslash,
    double quote and newline must be backslash-escaped inside the
    quoted value."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(labels: dict) -> str:
    """``{k="v",...}`` with keys sorted and values escaped — the one
    canonical rendering, so identical label sets always produce
    identical sample names (deterministic diffs)."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def parse_sample_name(sample: str) -> tuple[str, dict]:
    """Invert :func:`_render_labels`: ``name{k="v",...}`` -> (name,
    labels). Handles the escaped characters the renderer produces
    (backslash, quote, newline). Raises ``ValueError`` on a malformed
    sample name — merging must fail loudly, not mis-file counts."""
    brace = sample.find("{")
    if brace < 0:
        return sample, {}
    if not sample.endswith("}"):
        raise ValueError(f"malformed sample name {sample!r}")
    name, inner = sample[:brace], sample[brace + 1:-1]
    labels: dict[str, str] = {}
    i = 0
    while i < len(inner):
        eq = inner.find('="', i)
        if eq < 0:
            raise ValueError(f"malformed sample name {sample!r}")
        key = inner[i:eq]
        i = eq + 2
        value = []
        while True:
            if i >= len(inner):
                raise ValueError(f"malformed sample name {sample!r}")
            ch = inner[i]
            if ch == "\\":
                nxt = inner[i + 1:i + 2]
                value.append({"n": "\n"}.get(nxt, nxt))
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                value.append(ch)
                i += 1
        labels[key] = "".join(value)
        if i < len(inner):
            if inner[i] != ",":
                raise ValueError(f"malformed sample name {sample!r}")
            i += 1
    return name, labels


def merge_counters(registry: "MetricsRegistry", counters: dict,
                   extra_labels: dict | None = None) -> None:
    """Fold a counter snapshot (``sample_name -> value``, the
    ``snapshot()["counters"]`` shape) into ``registry``.

    ``extra_labels`` are added to every merged series — the sharded
    front door merges each worker's counters under its shard index,
    so per-shard totals stay distinguishable after the worker process
    is gone. Merging is additive and idempotent per snapshot delta;
    callers merge each worker's final snapshot exactly once.
    """
    for sample, value in counters.items():
        if value <= 0:
            continue
        name, labels = parse_sample_name(sample)
        if extra_labels:
            labels.update(extra_labels)
        registry.counter(name, labels=labels or None).inc(value)


class Counter:
    """A monotonically increasing value, optionally labeled."""

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels) if labels else {}
        #: Full Prometheus sample name, labels sorted and escaped.
        self.sample_name = name + _render_labels(self.labels)
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Distribution of observed values.

    Parameters
    ----------
    reservoir:
        ``None`` (default) keeps every observation — exact quantiles.
        A positive integer keeps at most that many values via seeded
        reservoir sampling; ``count``/``total``/min/max stay exact and
        quantiles are computed over the uniform sample.
    seed:
        Seed for the reservoir's replacement choices (combined with the
        histogram name, so sibling histograms sample independently).
        Ignored in exact mode.
    labels:
        Optional label set distinguishing series of one metric family,
        exactly like :class:`Counter` labels (e.g.
        ``algorithm="pdqp"`` on the session resolve-latency family).
    """

    def __init__(self, name: str, reservoir: int | None = None,
                 seed: int = 0, labels: dict | None = None):
        if reservoir is not None and reservoir < 1:
            raise ValueError("reservoir size must be >= 1")
        self.name = name
        self.labels = dict(labels) if labels else {}
        #: Full Prometheus sample name, labels sorted and escaped.
        self.sample_name = name + _render_labels(self.labels)
        self.reservoir = reservoir
        self._values: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._rng = random.Random(
            (int(seed) << 32) ^ zlib.crc32(self.sample_name.encode()))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if self.reservoir is None or len(self._values) < self.reservoir:
                self._values.append(value)
            else:
                # Algorithm R: keep each of the count observations with
                # probability reservoir/count.
                slot = self._rng.randrange(self._count)
                if slot < self.reservoir:
                    self._values[slot] = value

    @property
    def count(self) -> int:
        """Exact number of observations (independent of the reservoir)."""
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        """Exact sum of observations (independent of the reservoir)."""
        with self._lock:
            return self._sum

    @property
    def sample_size(self) -> int:
        """Stored values — ``count`` in exact mode, bounded otherwise."""
        with self._lock:
            return len(self._values)

    def percentile(self, q: float) -> float:
        """Quantile ``q`` in percent (50 = median); NaN when empty.

        Exact in exact mode; estimated from the reservoir sample in
        bounded mode.
        """
        with self._lock:
            if not self._values:
                return float("nan")
            return float(np.percentile(self._values, q))

    def summary(self) -> dict:
        with self._lock:
            if not self._count:
                return {"count": 0, "sum": 0.0, "min": None, "max": None,
                        "mean": None, "p50": None, "p95": None}
            arr = np.asarray(self._values)
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count,
                "p50": float(np.percentile(arr, 50)),
                "p95": float(np.percentile(arr, 95)),
            }


class MetricsRegistry:
    """A namespace of counters and histograms with snapshot export.

    ``default_reservoir`` applies to histograms created through
    :meth:`histogram` without an explicit ``reservoir`` argument —
    fleet deployments cap every histogram in one place while the
    serving tests keep exact quantiles.
    """

    def __init__(self, default_reservoir: int | None = None,
                 seed: int = 0):
        self.default_reservoir = default_reservoir
        self.seed = int(seed)
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        """Get or create a counter; ``labels`` distinguishes series of
        one metric family (e.g. ``reason="linger"`` vs ``"full"``).
        The registry key is the canonical sample name — sorted label
        keys, escaped values — so lookup order never creates
        duplicate series."""
        key = name + _render_labels(labels or {})
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter(name, labels)
            return self._counters[key]

    def histogram(self, name: str, labels: dict | None = None,
                  reservoir=_UNSET) -> Histogram:
        """Get or create a histogram; ``labels`` distinguishes series
        of one family exactly like :meth:`counter` labels do."""
        key = name + _render_labels(labels or {})
        with self._lock:
            if key not in self._histograms:
                size = (self.default_reservoir if reservoir is _UNSET
                        else reservoir)
                self._histograms[key] = Histogram(name, reservoir=size,
                                                  seed=self.seed,
                                                  labels=labels)
            return self._histograms[key]

    def snapshot(self) -> dict:
        """Point-in-time export: ``{"counters": {...}, "histograms": {...}}``."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(
                counters.items())},
            "histograms": {name: h.summary() for name, h in sorted(
                histograms.items())},
        }

    def render(self) -> str:
        """Human-readable snapshot (the CLI's metrics section)."""
        snap = self.snapshot()
        lines = []
        for name, value in snap["counters"].items():
            lines.append(f"{name:<40s} {value:g}")
        for name, s in snap["histograms"].items():
            if not s["count"]:
                lines.append(f"{name:<40s} (empty)")
                continue
            lines.append(
                f"{name:<40s} count={s['count']} mean={s['mean']:.6g} "
                f"p50={s['p50']:.6g} p95={s['p95']:.6g} max={s['max']:.6g}")
        return "\n".join(lines)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Counters render as ``counter`` samples; each histogram renders
        as a ``summary``: ``{quantile="0.5"}`` / ``{quantile="0.95"}``
        gauges plus the exact ``_sum`` and ``_count`` series. Scrape it
        from the CLIs with ``--metrics-format prometheus``.

        Output is deterministic: families and their labeled series are
        sorted by sample name (label values escaped at creation), and
        one ``# TYPE`` line heads each family however many series it
        has — identical metric state always diffs clean.
        """
        snap = self.snapshot()
        lines = []
        last_family = None
        for name, value in snap["counters"].items():
            family = name.split("{", 1)[0]
            if family != last_family:
                lines.append(f"# TYPE {family} counter")
                last_family = family
            lines.append(f"{name} {value:.10g}")
        last_family = None
        for name, s in snap["histograms"].items():
            family, _, rest = name.partition("{")
            labels = ("{" + rest) if rest else ""
            if family != last_family:
                lines.append(f"# TYPE {family} summary")
                last_family = family
            if s["count"]:
                for q, key in (("0.5", "p50"), ("0.95", "p95")):
                    sample = (f'{family}{labels[:-1]},quantile="{q}"}}'
                              if labels else f'{family}{{quantile="{q}"}}')
                    lines.append(f"{sample} {s[key]:.10g}")
            lines.append(f"{family}_sum{labels} {s['sum']:.10g}")
            lines.append(f"{family}_count{labels} {s['count']}")
        return "\n".join(lines) + "\n"
