"""Counters and histograms for the serving layer.

Deliberately tiny and dependency-free: a :class:`Counter` is a
monotonic float, a :class:`Histogram` keeps every observation (the
serving workloads are thousands of solves, not billions) so snapshots
can report exact quantiles, and a :class:`MetricsRegistry` owns a
namespace of both and renders a point-in-time snapshot as a plain
dict — the schema documented in ``docs/SERVING.md``.

All operations are thread-safe; the service's worker threads record
into one shared registry.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing value."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Exact distribution of observed values."""

    def __init__(self, name: str):
        self.name = name
        self._values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._values)

    @property
    def total(self) -> float:
        with self._lock:
            return float(sum(self._values))

    def percentile(self, q: float) -> float:
        """Quantile ``q`` in percent (50 = median); NaN when empty."""
        with self._lock:
            if not self._values:
                return float("nan")
            return float(np.percentile(self._values, q))

    def summary(self) -> dict:
        with self._lock:
            if not self._values:
                return {"count": 0, "sum": 0.0, "min": None, "max": None,
                        "mean": None, "p50": None, "p95": None}
            arr = np.asarray(self._values)
            return {
                "count": int(arr.size),
                "sum": float(arr.sum()),
                "min": float(arr.min()),
                "max": float(arr.max()),
                "mean": float(arr.mean()),
                "p50": float(np.percentile(arr, 50)),
                "p95": float(np.percentile(arr, 95)),
            }


class MetricsRegistry:
    """A namespace of counters and histograms with snapshot export."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name)
            return self._histograms[name]

    def snapshot(self) -> dict:
        """Point-in-time export: ``{"counters": {...}, "histograms": {...}}``."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(
                counters.items())},
            "histograms": {name: h.summary() for name, h in sorted(
                histograms.items())},
        }

    def render(self) -> str:
        """Human-readable snapshot (the CLI's metrics section)."""
        snap = self.snapshot()
        lines = []
        for name, value in snap["counters"].items():
            lines.append(f"{name:<40s} {value:g}")
        for name, s in snap["histograms"].items():
            if not s["count"]:
                lines.append(f"{name:<40s} (empty)")
                continue
            lines.append(
                f"{name:<40s} count={s['count']} mean={s['mean']:.6g} "
                f"p50={s['p50']:.6g} p95={s['p95']:.6g} max={s['max']:.6g}")
        return "\n".join(lines)
