"""Checksummed ``multiprocessing.shared_memory`` artifact store.

Frozen :class:`~repro.serving.arch_cache.ArchArtifact` payloads —
schedules, gather/segment/CVB arrays, compiled-program metadata — are
built once per structure and reused many times; this store publishes
each one into a named shared-memory segment so a pool of worker
*processes* binds without rebuilding or copying through pipes.

Segment layout (all little-endian)::

    +---------+---------+-------+------------+-------------+----------+
    | magic 8 | version | flags | generation | payload_len | digest32 |
    | bytes   | u32     | u32   | u64        | u64         | blake2b  |
    +---------+---------+-------+------------+-------------+----------+
    | pickled ArchArtifact payload (payload_len bytes)                |
    +-----------------------------------------------------------------+

Integrity protocol — the process boundary is hostile (a worker can be
SIGKILLed mid-anything, a segment can rot):

* the writer fills the payload first and writes the header **last**,
  so a torn publish is detectable as a header mismatch;
* every publish bumps a monotonically increasing per-key *generation*
  and creates a **fresh** segment (old generations are unlinked), so a
  reader can never observe an in-place overwrite half-applied;
* readers get a :class:`SegmentRef` (name + expected generation +
  expected digest) through the request channel and validate magic,
  version, generation, length *and* the blake2b digest of the payload
  on attach — any mismatch raises
  :class:`~repro.exceptions.ShmIntegrityError` and the segment is
  quarantined and rebuilt from the cold path, never served
  (``docs/FAULTS.md``: ``shm-corrupt`` extends the PR 5
  ``artifact-poison`` semantics across the process boundary).

The owning process unlinks every segment on :meth:`ShmArtifactStore.
close` — graceful drain leaves nothing behind in ``/dev/shm`` (the
sharded tests assert exactly that).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import secrets
import struct
import threading
import zlib
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

from ..exceptions import ShmIntegrityError

__all__ = ["SegmentRef", "ShmArtifactStore", "attach_artifact"]

#: Serializes the register() monkeypatch in :func:`_attach_untracked`
#: (pre-3.13 fallback) against concurrent attaches in one process.
_TRACKER_GUARD = threading.Lock()

_MAGIC = b"RSQPSHM\x01"
_VERSION = 1
#: magic, version, flags, generation, payload_len, blake2b-32 digest.
_HEADER = struct.Struct("<8sIIQQ32s")


def _digest(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=32).digest()


@dataclass(frozen=True)
class SegmentRef:
    """Everything a reader needs to attach and *trust* one segment.

    Travels with the request message; ``generation`` and ``digest``
    are re-checked against the segment header on attach, so a stale or
    torn segment can never masquerade as the published artifact.
    """

    key: str
    name: str
    generation: int
    digest: str  # hex of the payload blake2b-32
    payload_len: int


class ShmArtifactStore:
    """Publish-once, attach-many shared store of frozen artifacts.

    One instance per front-door process owns every segment it creates
    (tracked for unlink-on-close); worker processes only ever *attach*
    via the module-level :func:`attach_artifact` with a
    :class:`SegmentRef` handed to them over the request channel.
    """

    def __init__(self, namespace: str | None = None):
        #: Short unique prefix; segment names must stay well under the
        #: POSIX shm name limit, so keys are crc32-compressed into it.
        self.namespace = namespace or f"rsqp{secrets.token_hex(4)}"
        self._lock = threading.Lock()
        self._segments: dict[str, tuple[SegmentRef, shared_memory.SharedMemory]] = {}
        self._generations: dict[str, int] = {}
        self._publishes = 0
        self._quarantines = 0
        self._closed = False

    # ------------------------------------------------------------------
    def _segment_name(self, key: str, generation: int) -> str:
        return f"{self.namespace}k{zlib.crc32(key.encode()):08x}g{generation}"

    def publish(self, key: str, artifact) -> SegmentRef:
        """Serialize ``artifact`` into a fresh checksummed segment.

        Re-publishing a key bumps its generation, creates a new segment
        and unlinks the previous one; readers holding the old
        :class:`SegmentRef` fail closed with a *generation* mismatch
        instead of reading torn bytes.
        """
        if self._closed:
            raise RuntimeError("store is closed")
        payload = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
        digest = _digest(payload)
        with self._lock:
            generation = self._generations.get(key, 0) + 1
            self._generations[key] = generation
            name = self._segment_name(key, generation)
            seg = shared_memory.SharedMemory(
                create=True, size=_HEADER.size + len(payload), name=name)
            # Payload first, header last: a reader that somehow attaches
            # mid-publish sees a zero/garbage header, not a valid one.
            seg.buf[_HEADER.size:_HEADER.size + len(payload)] = payload
            seg.buf[:_HEADER.size] = _HEADER.pack(
                _MAGIC, _VERSION, 0, generation, len(payload), digest)
            ref = SegmentRef(key=key, name=name, generation=generation,
                             digest=digest.hex(), payload_len=len(payload))
            previous = self._segments.pop(key, None)
            self._segments[key] = (ref, seg)
            self._publishes += 1
        if previous is not None:
            _destroy(previous[1])
        return ref

    def ref(self, key: str) -> SegmentRef | None:
        """The current :class:`SegmentRef` for ``key``, if published."""
        with self._lock:
            entry = self._segments.get(key)
            return entry[0] if entry is not None else None

    def quarantine(self, key: str) -> bool:
        """Unlink a (suspected corrupt) segment so it can never be
        attached again; the next :meth:`publish` bumps the generation.
        Returns whether a segment was present."""
        with self._lock:
            entry = self._segments.pop(key, None)
            if entry is not None:
                self._quarantines += 1
        if entry is None:
            return False
        _destroy(entry[1])
        return True

    # -- fault injection hooks -----------------------------------------
    def corrupt(self, key: str, *, offset: int = 0, nbytes: int = 8) -> bool:
        """Flip ``nbytes`` payload bytes in place (``shm-corrupt``).

        The header checksum is deliberately left stale, so the next
        attach fails closed. Returns whether a segment was corrupted.
        """
        with self._lock:
            entry = self._segments.get(key)
            if entry is None:
                return False
            ref, seg = entry
            start = _HEADER.size + (offset % max(ref.payload_len, 1))
            end = min(start + nbytes, _HEADER.size + ref.payload_len)
            for i in range(start, end):
                seg.buf[i] ^= 0xFF
        return True

    # ------------------------------------------------------------------
    def segment_names(self) -> list[str]:
        """Names of every live segment this store owns (leak checks)."""
        with self._lock:
            return sorted(ref.name for ref, _ in self._segments.values())

    def stats(self) -> dict:
        with self._lock:
            return {"segments": len(self._segments),
                    "publishes": self._publishes,
                    "quarantines": self._quarantines}

    def close(self) -> None:
        """Unlink every segment; idempotent. Part of graceful drain —
        after this, ``/dev/shm`` holds nothing of ours."""
        with self._lock:
            entries = list(self._segments.values())
            self._segments.clear()
            self._closed = True
        for _, seg in entries:
            _destroy(seg)

    def __enter__(self) -> "ShmArtifactStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass


def _destroy(seg: shared_memory.SharedMemory) -> None:
    try:
        seg.close()
    finally:
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach without registering with the resource tracker.

    Attaching processes must not own the segment's lifetime: before
    Python 3.13 every ``SharedMemory(name)`` registers with the
    resource tracker, whose exit-time cleanup would unlink segments the
    publisher still serves (and spam leak warnings). Registration is
    suppressed rather than undone after the fact — forked workers share
    the publisher's tracker process, so an ``unregister`` here would
    drop the name the *publisher* registered and its own unlink would
    then trip a tracker KeyError. The publisher is the single owner;
    readers attach untracked.
    """
    if os.name == "nt":  # pragma: no cover - windows has no tracker
        return shared_memory.SharedMemory(name=name)
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        with _TRACKER_GUARD:
            original = resource_tracker.register
            resource_tracker.register = lambda *a, **kw: None
            try:
                return shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original


def attach_artifact(ref: SegmentRef):
    """Validate + deserialize the artifact behind ``ref``.

    Every check fails closed with
    :class:`~repro.exceptions.ShmIntegrityError` carrying a stable
    ``reason`` code; the caller quarantines and falls back to the cold
    path. The payload is copied out before unpickling, so the segment
    handle is released whatever happens.
    """
    try:
        seg = _attach_untracked(ref.name)
    except FileNotFoundError:
        raise ShmIntegrityError(
            f"segment {ref.name} does not exist (unlinked or never "
            "published)", reason="missing") from None
    try:
        if len(seg.buf) < _HEADER.size:
            raise ShmIntegrityError(
                f"segment {ref.name} is smaller than its header",
                reason="length")
        magic, version, _flags, generation, payload_len, digest = \
            _HEADER.unpack(bytes(seg.buf[:_HEADER.size]))
        if magic != _MAGIC:
            raise ShmIntegrityError(
                f"segment {ref.name} has a bad magic (torn publish?)",
                reason="magic")
        if version != _VERSION:
            raise ShmIntegrityError(
                f"segment {ref.name} has unsupported version {version}",
                reason="version")
        if generation != ref.generation:
            raise ShmIntegrityError(
                f"segment {ref.name} generation {generation} != expected "
                f"{ref.generation} (stale or torn publish)",
                reason="generation")
        if payload_len != ref.payload_len or \
                _HEADER.size + payload_len > len(seg.buf):
            raise ShmIntegrityError(
                f"segment {ref.name} payload length {payload_len} "
                "disagrees with its reference", reason="length")
        payload = bytes(seg.buf[_HEADER.size:_HEADER.size + payload_len])
    finally:
        seg.close()
    actual = _digest(payload)
    if actual != digest or actual.hex() != ref.digest:
        raise ShmIntegrityError(
            f"segment {ref.name} failed its blake2b payload check "
            "(corrupt bytes are never deserialized)", reason="checksum")
    return pickle.loads(payload)
