"""Process supervision for sharded serving: heartbeats, restarts, drain.

A :class:`ShardSupervisor` owns N worker *processes* (the shards of
:class:`~repro.serving.sharded.ShardedSolverService`) and keeps them
alive through the failure modes a real multi-process deployment sees:

* **crash** — the process died (segfault, OOM SIGKILL): detected by
  ``Process.is_alive()`` going false, restarted with exponential
  backoff;
* **stall** — the process is alive but stopped heartbeating: deadline
  tiered. Past the *soft* timeout the supervisor requests cooperative
  cancellation (``cancel_event``) and counts a heartbeat miss — a
  worker that resumes heartbeating recovers without a restart. Past
  the *hard* timeout the worker is SIGKILLed and restarted;
* **flapping** — a per-shard :class:`~repro.faults.CircuitBreaker`
  opens after ``breaker_threshold`` consecutive failures; the shard is
  marked ``failed`` and only re-probed after the breaker's reset
  window (the front door routes around failed shards meanwhile).

Every incarnation of a shard gets **fresh queues**: a SIGKILL can tear
a pipe mid-write, so transport channels are never reused across
restarts — the front door keeps the authoritative copy of every
in-flight request and requeues on the ``on_shard_down`` callback.

:meth:`drain` is the graceful path: send each live worker the
:data:`SHUTDOWN` sentinel, join with a budget, escalate
terminate→kill for stragglers, and reap every child (``join`` calls
``waitpid``) — no zombies, asserted by the sharded tests.
"""

from __future__ import annotations

import multiprocessing
import sys
import threading
import time

from ..faults.breaker import OPEN, CircuitBreaker

__all__ = ["ShardHandle", "ShardSupervisor", "SHUTDOWN",
           "STARTING", "HEALTHY", "SUSPECT", "RESTARTING", "FAILED",
           "STOPPED"]

#: Sentinel request message: the worker loop exits cleanly on receipt.
SHUTDOWN = "__rsqp_shutdown__"

STARTING = "starting"      # spawned, no heartbeat observed yet
HEALTHY = "healthy"        # heartbeating within the soft timeout
SUSPECT = "suspect"        # soft timeout passed; cancel requested
RESTARTING = "restarting"  # dead; a replacement is backoff-scheduled
FAILED = "failed"          # breaker open; re-probed after its window
STOPPED = "stopped"        # drained


def default_start_method() -> str:
    """``fork`` where it exists (fast, shares the warmed import state);
    ``spawn`` elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    if sys.platform.startswith("linux") and "fork" in methods:
        return "fork"
    return "spawn"


class ShardHandle:
    """One incarnation of one shard: process + its private channels."""

    def __init__(self, index: int, generation: int, ctx):
        self.index = index
        #: Incarnation counter — bumped on every restart. Results from
        #: an older generation's collector are ignored by the front
        #: door once the incarnation is declared dead.
        self.generation = generation
        self.request_q = ctx.Queue()
        self.result_q = ctx.Queue()
        #: Worker-written wall-clock timestamp (cross-process ``'d'``).
        self.heartbeat = ctx.Value("d", 0.0)
        #: Cooperative-cancel poke; the worker clears it to acknowledge.
        self.cancel_event = ctx.Event()
        self.process = None
        self.state = STARTING
        self.started_at = 0.0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def discard_queues(self) -> None:
        """Abandon the (possibly torn) channels of a dead incarnation.

        ``cancel_join_thread`` keeps the parent from blocking on a
        feeder flushing into a pipe nobody will ever read.
        """
        for q in (self.request_q, self.result_q):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:  # pragma: no cover - already torn down
                pass


class ShardSupervisor:
    """Health-check N shard processes; restart, back off, drain.

    Parameters
    ----------
    shards:
        Number of worker processes.
    target:
        Module-level callable run in each worker:
        ``target(index, generation, request_q, result_q, heartbeat,
        cancel_event, config)``. Must be picklable for ``spawn``.
    config:
        Picklable payload handed to every worker.
    heartbeat_interval:
        How often workers promise to touch their heartbeat; the
        monitor polls at a fraction of it.
    soft_timeout / hard_timeout:
        Heartbeat-age tiers: soft → cooperative cancel + heartbeat
        miss; hard → SIGKILL + restart. ``hard_timeout`` must exceed
        ``soft_timeout``.
    restart_backoff_base/factor/max:
        Exponential backoff between restarts of one shard (seconds).
    breaker_threshold / breaker_reset_seconds:
        Per-shard circuit breaker: consecutive failures to open, and
        the probation window before a half-open probe restart.
    on_shard_up / on_shard_down:
        Callbacks ``(handle)`` / ``(handle, reason)`` invoked from the
        monitor thread. ``on_shard_down`` fires once per death with
        reason ``"crash"`` or ``"stall"`` — the front door requeues
        that incarnation's in-flight work there.
    metrics:
        Optional :class:`~repro.serving.metrics.MetricsRegistry`;
        restarts and heartbeat misses are counted per shard
        (``serving_shard_restarts_total{shard="i"}``, ...).
    """

    def __init__(self, shards: int, target, config=None, *,
                 start_method: str | None = None,
                 heartbeat_interval: float = 0.05,
                 soft_timeout: float = 1.0,
                 hard_timeout: float = 3.0,
                 restart_backoff_base: float = 0.05,
                 restart_backoff_factor: float = 2.0,
                 restart_backoff_max: float = 1.0,
                 breaker_threshold: int = 5,
                 breaker_reset_seconds: float = 30.0,
                 poll_interval: float | None = None,
                 clock=time.time,
                 metrics=None,
                 on_shard_up=None,
                 on_shard_down=None):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if hard_timeout <= soft_timeout:
            raise ValueError("hard_timeout must exceed soft_timeout")
        self.shards = int(shards)
        self.target = target
        self.config = config
        self.ctx = multiprocessing.get_context(
            start_method or default_start_method())
        self.heartbeat_interval = float(heartbeat_interval)
        self.soft_timeout = float(soft_timeout)
        self.hard_timeout = float(hard_timeout)
        self.restart_backoff_base = float(restart_backoff_base)
        self.restart_backoff_factor = float(restart_backoff_factor)
        self.restart_backoff_max = float(restart_backoff_max)
        self.poll_interval = (float(poll_interval) if poll_interval
                              else max(min(heartbeat_interval,
                                           soft_timeout / 4.0), 0.005))
        self._clock = clock
        self.metrics = metrics
        self.on_shard_up = on_shard_up
        self.on_shard_down = on_shard_down
        self.breakers = [CircuitBreaker(
            failure_threshold=breaker_threshold,
            reset_seconds=breaker_reset_seconds, name=f"shard-{i}")
            for i in range(self.shards)]
        self._handles: list[ShardHandle | None] = [None] * self.shards
        self._generations = [0] * self.shards
        self._consecutive_failures = [0] * self.shards
        self._restart_at = [0.0] * self.shards
        self._restarts = [0] * self.shards
        self._heartbeat_misses = [0] * self.shards
        self._lock = threading.RLock()
        self._monitor: threading.Thread | None = None
        self._stop = threading.Event()
        self._draining = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every shard and begin monitoring."""
        with self._lock:
            for index in range(self.shards):
                self._spawn(index)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="rsqp-shard-supervisor",
            daemon=True)
        self._monitor.start()

    def _spawn(self, index: int) -> ShardHandle:
        self._generations[index] += 1
        handle = ShardHandle(index, self._generations[index], self.ctx)
        now = self._clock()
        # Seed the heartbeat so a slow-starting worker is measured from
        # its spawn instant, not from epoch 0 (= instant hard timeout).
        handle.heartbeat.value = now
        handle.started_at = now
        process = self.ctx.Process(
            target=self.target,
            args=(index, handle.generation, handle.request_q,
                  handle.result_q, handle.heartbeat, handle.cancel_event,
                  self.config),
            name=f"rsqp-shard-{index}-g{handle.generation}")
        process.start()
        handle.process = process
        self._handles[index] = handle
        if self.on_shard_up is not None:
            self.on_shard_up(handle)
        return handle

    # ------------------------------------------------------------------
    # introspection (used by the front door's router)
    # ------------------------------------------------------------------
    def handle(self, index: int) -> ShardHandle | None:
        with self._lock:
            return self._handles[index]

    def _state_of(self, index: int) -> str:
        handle = self._handles[index]
        if handle is not None:
            return handle.state
        return FAILED if self.breakers[index].state == OPEN else RESTARTING

    def states(self) -> list[str]:
        with self._lock:
            return [self._state_of(i) for i in range(self.shards)]

    def routable_indices(self) -> list[int]:
        """Shards a new request may be dispatched to right now."""
        with self._lock:
            return [i for i, h in enumerate(self._handles)
                    if h is not None and h.alive
                    and h.state in (STARTING, HEALTHY, SUSPECT)]

    def stats(self) -> dict:
        with self._lock:
            return {
                "restarts": list(self._restarts),
                "heartbeat_misses": list(self._heartbeat_misses),
                "states": [self._state_of(i) for i in range(self.shards)],
                "breaker_states": [b.state for b in self.breakers],
            }

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.check(self._clock())
            except Exception:  # pragma: no cover - monitor must survive
                pass

    def check(self, now: float | None = None) -> None:
        """One health sweep; public so tests can drive it directly."""
        now = self._clock() if now is None else now
        with self._lock:
            if self._draining:
                return
            for index in range(self.shards):
                self._check_shard(index, now)

    def _check_shard(self, index: int, now: float) -> None:
        handle = self._handles[index]
        if handle is None:
            # Dead with a restart scheduled (or breaker-failed).
            if self.breakers[index].state == OPEN:
                if self.breakers[index].allows(now):
                    self._spawn(index)  # half-open probe
                return
            if now >= self._restart_at[index]:
                self._spawn(index)
            return
        if not handle.alive:
            self._declare_down(index, handle, "crash", now)
            return
        age = now - float(handle.heartbeat.value)
        if age > self.hard_timeout:
            # Stalled past the hard tier: kill, then restart.
            handle.process.kill()
            handle.process.join(timeout=5.0)
            self._declare_down(index, handle, "stall", now)
        elif age > self.soft_timeout:
            if handle.state != SUSPECT:
                handle.state = SUSPECT
                handle.cancel_event.set()  # cooperative-cancel poke
                self._heartbeat_misses[index] += 1
                self._count(index, "serving_heartbeat_misses_total")
        else:
            if handle.state in (STARTING, SUSPECT):
                handle.state = HEALTHY
                self.breakers[index].record_success(now)
                self._consecutive_failures[index] = 0

    def _declare_down(self, index: int, handle: ShardHandle,
                      reason: str, now: float) -> None:
        if handle.process is not None:
            handle.process.join(timeout=5.0)  # reap
        handle.state = RESTARTING
        handle.discard_queues()
        self._handles[index] = None
        self._consecutive_failures[index] += 1
        breaker = self.breakers[index]
        breaker.record_failure(now)
        self._restarts[index] += 1
        self._count(index, "serving_shard_restarts_total",
                    extra={"reason": reason})
        if breaker.state == OPEN:
            # Flapping: stop restarting until the breaker's window.
            pass
        else:
            backoff = min(
                self.restart_backoff_base * self.restart_backoff_factor
                ** max(self._consecutive_failures[index] - 1, 0),
                self.restart_backoff_max)
            self._restart_at[index] = now + backoff
        if self.on_shard_down is not None:
            self.on_shard_down(handle, reason)

    def _count(self, index: int, name: str, extra: dict | None = None
               ) -> None:
        if self.metrics is None:
            return
        labels = {"shard": str(index)}
        if extra:
            labels.update(extra)
        self.metrics.counter(name, labels=labels).inc()

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------
    def drain(self, timeout: float = 10.0) -> dict:
        """Graceful stop: sentinel → join → terminate → kill → reap.

        Returns ``{shard_index: exitcode}`` for every shard that had a
        live incarnation. After this returns there are no live shard
        processes and no zombies (every child was ``join``-ed).
        """
        with self._lock:
            self._draining = True
            handles = [h for h in self._handles if h is not None]
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        for handle in handles:
            if handle.alive:
                try:
                    handle.request_q.put(SHUTDOWN)
                except Exception:  # pragma: no cover - torn queue
                    pass
        deadline = time.monotonic() + timeout
        exitcodes: dict[int, int | None] = {}
        for handle in handles:
            if handle.process is None:
                continue
            budget = max(deadline - time.monotonic(), 0.0)
            handle.process.join(timeout=budget)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            if handle.process.is_alive():  # pragma: no cover - stubborn
                handle.process.kill()
                handle.process.join(timeout=5.0)
            exitcodes[handle.index] = handle.process.exitcode
            handle.state = STOPPED
            handle.discard_queues()
        with self._lock:
            self._handles = [None] * self.shards
        return exitcodes
