"""CLI demo: replay a benchmark-suite workload through the service.

Builds a repeated-structure workload (the paper's amortization
scenario): ``--structures`` problems per family from the benchmark
suite, each replayed ``--repeats`` times with perturbed numeric data
but identical sparsity. The whole stream goes through one
:class:`~repro.serving.SolverService`, then the throughput and
amortization report is printed.

Examples::

    python -m repro.serving
    python -m repro.serving --families control,lasso --repeats 10
    python -m repro.serving --workers 4 --cache-path /tmp/arch.json
    python -m repro.serving --cold-policy fallback
    python -m repro.serving --shards 4   # process-sharded front door
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from ..problems import FAMILIES, generate, perturb_numeric, suite_sizes
from ..solver import OSQPSettings
from .service import SolverService
from .sharded import ShardedSolverService

DEFAULT_FAMILIES = "control,lasso,svm"


def build_workload(families: list[str], structures: int, repeats: int,
                   scale: float, seed: int) -> list:
    """``structures`` templates per family, ``repeats`` variants each."""
    rng = np.random.default_rng(seed)
    problems = []
    for family in families:
        sizes = suite_sizes(family, structures, scale)
        for index, size in enumerate(sizes):
            template = generate(family, size, seed=seed + index)
            template.name = f"{family}[{index:02d}]"
            for rep in range(repeats):
                variant = (template if rep == 0 else perturb_numeric(
                    template, seed=int(rng.integers(2 ** 31))))
                problems.append(variant)
    order = rng.permutation(len(problems))
    return [problems[i] for i in order]


def _run_sharded(args, problems, settings) -> int:
    """Replay the workload through the process-sharded front door."""
    t0 = time.perf_counter()
    with ShardedSolverService(shards=args.shards, settings=settings,
                              c=args.c, cache_path=args.cache_path,
                              backend=args.backend) as service:
        results = service.solve_batch(problems)
        elapsed = time.perf_counter() - t0

        converged = sum(r.converged for r in results)
        degraded = sum(r.record.degraded for r in results)
        retried = sum(r.record.retries > 0 for r in results)
        print(f"\nconverged              : {converged}/{len(results)}")
        print(f"wall time              : {elapsed:.2f} s "
              f"({len(results) / elapsed:.1f} solves/s)")
        print(f"retried / degraded     : {retried} / {degraded}")
        stats = service.stats()
        sup = stats["supervisor"]
        print(f"shard restarts         : {sum(sup['restarts'])} "
              f"(states: {', '.join(sup['states'])})")
        store = stats["store"]
        print(f"shm store              : {store['publishes']} publishes, "
              f"{store['segments']} live segments, "
              f"{store['quarantines']} quarantined")
        print("\nmetrics:")
        if args.metrics_format == "prometheus":
            print(service.metrics.render_prometheus(), end="")
        else:
            print(service.metrics.render())
        cache = stats["cache"]
        print(f"\ncache: {cache['size']}/{cache['capacity']} entries, "
              f"{cache['evictions']} evictions, "
              f"{cache['disk_hits']} disk rebuilds")
        if args.cache_path:
            print(f"cache persisted to {args.cache_path}")
    return 0 if converged == len(results) else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Replay a repeated-structure QP workload through "
                    "the RSQP solver service.")
    parser.add_argument("--families", default=DEFAULT_FAMILIES,
                        help="comma-separated families "
                             f"(default {DEFAULT_FAMILIES}; "
                             f"available: {','.join(sorted(FAMILIES))})")
    parser.add_argument("--structures", type=int, default=2,
                        help="distinct problem structures per family")
    parser.add_argument("--repeats", type=int, default=8,
                        help="numeric variants per structure")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="size multiplier on the suite instances")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--mode", choices=("thread", "process", "serial"),
                        default="thread")
    parser.add_argument("--shards", type=int, default=0,
                        help="run the process-sharded front door with N "
                             "supervised worker shards instead of the "
                             "single-process service (0 = off)")
    parser.add_argument("--c", type=int, default=None,
                        help="datapath width (default: auto by nnz)")
    parser.add_argument("--cache-path", default=None,
                        help="JSON persistence file for the arch cache")
    parser.add_argument("--backend", choices=("interpret", "compiled"),
                        default="compiled",
                        help="accelerator execution backend "
                             "(default compiled)")
    parser.add_argument("--cold-policy", choices=("build", "fallback"),
                        default="build")
    parser.add_argument("--metrics-format", choices=("plain", "prometheus"),
                        default="plain",
                        help="render metrics human-readable (plain) or in "
                             "Prometheus text exposition format")
    parser.add_argument("--eps", type=float, default=1e-3,
                        help="solver eps_abs/eps_rel")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    families = [f.strip() for f in args.families.split(",") if f.strip()]
    unknown = sorted(set(families) - set(FAMILIES))
    if unknown:
        parser.error(f"unknown families {', '.join(unknown)} "
                     f"(available: {','.join(sorted(FAMILIES))})")
    problems = build_workload(families, args.structures, args.repeats,
                              args.scale, args.seed)
    total_nnz = sum(p.nnz for p in problems)
    lane = (f"{args.shards} process shards" if args.shards > 0
            else f"{args.mode} mode, {args.workers} workers")
    print(f"workload: {len(problems)} solves, "
          f"{len(families) * args.structures} structures, "
          f"{total_nnz} total nnz ({lane})")

    settings = OSQPSettings(eps_abs=args.eps, eps_rel=args.eps)
    if args.shards > 0:
        return _run_sharded(args, problems, settings)
    t0 = time.perf_counter()
    with SolverService(c=args.c, settings=settings, workers=args.workers,
                       mode=args.mode, cache_path=args.cache_path,
                       cold_policy=args.cold_policy,
                       backend=args.backend) as service:
        results = service.solve_batch(problems)
        service.drain()  # fallback mode: let background builds finish
        elapsed = time.perf_counter() - t0

        converged = sum(r.converged for r in results)
        print(f"\nconverged              : {converged}/{len(results)}")
        print(f"wall time              : {elapsed:.2f} s "
              f"({len(results) / elapsed:.1f} solves/s)")
        sim = [r.record.simulated_seconds for r in results
               if r.backend == "rsqp"]
        if sim:
            print(f"simulated device time  : {sum(sim) * 1e3:.2f} ms total "
                  f"(mean {np.mean(sim) * 1e6:.0f} us/solve)")
        print()
        print(service.amortization_report())
        print("\nmetrics:")
        if args.metrics_format == "prometheus":
            print(service.metrics.render_prometheus(), end="")
        else:
            print(service.metrics.render())
        cache = service.cache_stats()
        print(f"\ncache: {cache.size}/{cache.capacity} entries, "
              f"{cache.evictions} evictions, "
              f"{cache.disk_hits} disk rebuilds")
        if args.cache_path:
            print(f"cache persisted to {args.cache_path}")
    return 0 if converged == len(results) else 1


if __name__ == "__main__":
    raise SystemExit(main())
