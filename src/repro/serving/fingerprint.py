"""Canonical structure fingerprint of a :class:`~repro.qp.QProblem`.

The whole serving layer rests on one observation from the paper: a
customized architecture is a function of the problem's *sparsity
structure* only — the MAC-tree structure set, the SpMV schedules
(``E_p``) and the CVB layout (``E_c``) never look at numeric values.
Two problems with identical ``P``/``A`` patterns therefore share one
architecture, one compiled program and one set of cycle costs, no
matter how their data differ (MPC re-solves, lasso regularization
paths, SQP inner problems).

The fingerprint key is a stable 128-bit blake2b digest over the exact
structure:

* the dimensions ``(n, m)``,
* ``P``'s CSR pattern (``indptr`` + ``indices``),
* ``A``'s CSR pattern (``indptr`` + ``indices``).

Numeric arrays (``data``, ``q``, ``l``, ``u``) are deliberately
excluded; so are the bounds' equality/one-sided patterns, which affect
the per-solve host setup (rho vector) but never the architecture.
The KKT structure is a function of the ``P`` and ``A`` patterns, so
hashing both subsumes it; the human-readable sparsity *strings* of
``P``, ``A`` and the full KKT matrix (paper eq. 2) are carried as
metadata for observability and reports, not folded into the key —
they are bucketed (lossy) encodings and additionally depend on the
display width ``c``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..encoding import encode_row_nnz
from ..qp import QProblem

__all__ = ["StructureFingerprint", "fingerprint_problem", "sparsity_string"]

#: Version tag mixed into the digest so a change to the hashed fields
#: can never silently alias keys from an older persistence file.
_DIGEST_VERSION = b"rsqp-structure-fingerprint-v1"


@dataclass(frozen=True)
class StructureFingerprint:
    """Structure identity of a QP plus human-readable summaries.

    ``key`` alone decides cache identity; the remaining fields describe
    the structure for logs, reports and the persistence file.
    """

    key: str
    n: int
    m: int
    nnz_p: int
    nnz_a: int
    p_string: str
    a_string: str
    kkt_string: str

    @property
    def nnz(self) -> int:
        """Total non-zeros ``nnz(P) + nnz(A)`` — the paper's size measure."""
        return self.nnz_p + self.nnz_a

    def __str__(self) -> str:
        return (f"{self.key[:12]} (n={self.n}, m={self.m}, "
                f"nnz={self.nnz})")


def sparsity_string(row_nnz: np.ndarray, c: int) -> str:
    """Bucketed sparsity string for a sequence of per-row nnz counts.

    Same alphabet as :func:`repro.encoding.encode_row_nnz` (``a`` for
    <=1 non-zero, doubling per letter, ``$`` for full-width chunks).
    """
    return "".join(encode_row_nnz(int(k), c) for k in row_nnz)


def _kkt_row_nnz(problem: QProblem) -> np.ndarray:
    """Per-row non-zero counts of the full KKT matrix (paper eq. 2).

    ``K = [[P + sigma I, A'], [A, -rho^-1 I]]`` — derived purely from
    the ``P``/``A`` patterns without assembling the matrix:
    row ``i < n`` holds ``P``'s row-i off/on-diagonal entries, the
    regularized diagonal (merged if ``P`` stores it explicitly) and
    column ``i`` of ``A``; row ``n + j`` holds ``A``'s row ``j`` plus
    its own ``-rho^-1`` diagonal entry.
    """
    n, m = problem.n, problem.m
    p_rows = np.diff(problem.P.indptr)
    rows, cols, _ = problem.P.to_coo()
    diag_present = np.zeros(n, dtype=bool)
    diag_present[rows[rows == cols]] = True
    at_rows = np.bincount(problem.A.indices, minlength=n)
    top = p_rows + np.where(diag_present, 0, 1) + at_rows
    bottom = np.diff(problem.A.indptr) + 1
    return np.concatenate([top, bottom])


def fingerprint_problem(problem: QProblem, *,
                        c: int = 16) -> StructureFingerprint:
    """Fingerprint a QP's structure.

    Parameters
    ----------
    problem:
        The QP; only its dimensions and CSR patterns are read.
    c:
        Datapath width used for the *display* sparsity strings. It
        does not enter the key — two calls with different ``c`` return
        the same ``key`` with differently bucketed string summaries,
        so the serving cache stays consistent however the width is
        later chosen.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(_DIGEST_VERSION)
    h.update(np.int64(problem.n).tobytes())
    h.update(np.int64(problem.m).tobytes())
    for matrix in (problem.P, problem.A):
        h.update(np.ascontiguousarray(matrix.indptr, dtype=np.int64)
                 .tobytes())
        h.update(np.ascontiguousarray(matrix.indices, dtype=np.int64)
                 .tobytes())
    return StructureFingerprint(
        key=h.hexdigest(),
        n=problem.n,
        m=problem.m,
        nnz_p=problem.P.nnz,
        nnz_a=problem.A.nnz,
        p_string=sparsity_string(np.diff(problem.P.indptr), c),
        a_string=sparsity_string(np.diff(problem.A.indptr), c),
        kkt_string=sparsity_string(_kkt_row_nnz(problem), c),
    )
