"""Crash-tolerant process-sharded serving over shared-memory artifacts.

:class:`ShardedSolverService` is the multi-process front door of the
serving layer: requests are fingerprinted once
(:mod:`repro.serving.fingerprint`) and routed *by structure* to one of
N worker **processes**, each running a full single-process
:class:`~repro.serving.service.SolverService` — so every per-shard
guard built in earlier PRs (static verification, KKT re-check, retry /
degrade under :class:`~repro.faults.ResiliencePolicy`) holds unchanged
inside each shard.

The pieces:

* **artifact flow** — the front door builds each structure's frozen
  artifact once (parent-side :class:`~repro.serving.arch_cache.
  ArchCache`, verified before publication) and publishes it into a
  checksummed :class:`~repro.serving.shm_store.ShmArtifactStore`
  segment; workers attach by :class:`~repro.serving.shm_store.
  SegmentRef` and validate generation + blake2b digest on every bind.
  A failed check comes back as a structured error: the segment is
  quarantined, the artifact rebuilt from the cold path and
  republished, the request requeued — torn or poisoned bytes are
  never served.
* **supervision** — a :class:`~repro.serving.supervisor.
  ShardSupervisor` heartbeats every worker; crashes and stalls are
  detected (deadline-tiered: cooperative cancel, then SIGKILL) and the
  shard restarts under exponential backoff + a per-shard circuit
  breaker. The front door owns the authoritative in-flight table —
  queues are transport only — so every request of a dead incarnation
  is requeued (re-solved and **KKT re-checked** on arrival) or
  degraded to the reference solver. No request is ever silently lost.
* **coalescing** — same-structure requests co-batch through
  :class:`~repro.batch.coalescer.Coalescer` keyed by artifact cache
  key, so mixed fingerprints never co-batch and a batch never spans
  shards; :meth:`drain` flushes every queued lane before shutdown.
* **fault vocabulary** — ``worker-crash`` / ``worker-stall`` /
  ``shm-corrupt`` faults from a :class:`~repro.faults.FaultPlan` are
  turned into per-request directives, so ``python -m repro.faults``
  drives this lane deterministically.

Sync and async front doors share one pipeline: :meth:`submit` /
:meth:`result` / :meth:`solve` block on :class:`concurrent.futures.
Future`\\ s, while :meth:`solve_async` awaits the same future from any
asyncio event loop.

Graceful :meth:`close`: intake stops, coalesced batches flush, workers
get the shutdown sentinel and are reaped, shared-memory segments are
unlinked — no zombies, no leaked segments (asserted by the tests).
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time
import zlib
from concurrent.futures import Future

from ..exceptions import ShardCrashedError, ShmIntegrityError
from ..experiments.runner import choose_width
from ..faults import ResiliencePolicy, solution_ok
from ..solver import OSQPSettings, available_algorithms, choose_algorithm
from .arch_cache import ArchCache, build_artifact
from .fingerprint import fingerprint_problem
from .metrics import MetricsRegistry, merge_counters
from .pool import WorkerPool, reference_job
from .service import ServeRecord, ServeResult
from .shm_store import ShmArtifactStore, attach_artifact
from .supervisor import SHUTDOWN, ShardSupervisor

__all__ = ["ShardedSolverService"]

#: Dispatch-queue sentinel: flush every coalesced group (drain path).
_FLUSH = object()

#: ServeRecord tier for requests answered by the parent's reference
#: fallback after their shard died (distinct from the cold-structure
#: ``fallback`` tier of the single-process service).
TIER_DEGRADED = "degraded"


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _heartbeat_loop(heartbeat, cancel_event, interval, state) -> None:
    """Touch the shared heartbeat; clearing ``cancel_event`` is the
    liveness acknowledgement to a supervisor soft-timeout poke. A
    ``worker-stall`` directive pauses updates via ``state`` so the
    supervisor's tiers see exactly the scheduled silence."""
    while not state["stop"]:
        now = time.time()
        if now >= state["pause_until"]:
            heartbeat.value = now
            if cancel_event.is_set():
                cancel_event.clear()
        time.sleep(interval)


def _shard_worker_main(index, generation, request_q, result_q,
                       heartbeat, cancel_event, config) -> None:
    """One shard: a serial :class:`SolverService` behind two queues.

    Module-level so every start method can spawn it. The worker never
    builds artifacts — it attaches the checksummed segment named in
    each batch message and binds it into its local cache under the
    parent's cache key (the parent verified the artifact before
    publishing, and ``verified`` rides along in the pickle, so solves
    skip re-verification). All messages are tagged with this
    incarnation's ``generation``; fault *directives* arrive per lane,
    already filtered to this request + attempt by the front door.
    """
    from .service import SolverService
    service = SolverService(
        c=config["c"], settings=config["settings"], workers=1,
        mode="serial", cache_capacity=config["cache_capacity"],
        cold_policy="build", pcg_eps=config["pcg_eps"],
        max_pcg_iter=config["max_pcg_iter"], backend=config["backend"],
        verify=config["verify"], fault_plan=config["fault_plan"],
        resilience=config["resilience"], algorithm=config["algorithm"],
        max_batch=config["max_batch"])
    state = {"stop": False, "pause_until": 0.0}
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(heartbeat, cancel_event, config["heartbeat_interval"],
              state),
        name="rsqp-shard-heartbeat", daemon=True)
    beat.start()
    result_q.put(("hello", generation, os.getpid()))
    try:
        while True:
            try:
                msg = request_q.get(timeout=0.1)
            except queue.Empty:
                continue
            if msg == SHUTDOWN:
                break
            kind, body = msg
            if kind != "batch":  # pragma: no cover - protocol guard
                continue
            _serve_batch(service, state, generation, result_q, body)
    finally:
        state["stop"] = True
        try:
            result_q.put(("bye", generation, {
                "counters": service.metrics.snapshot()["counters"],
                "cache": service.cache_stats().as_dict(),
            }))
        except Exception:  # pragma: no cover - torn pipe at shutdown
            pass


def _serve_batch(service, state, generation, result_q, body) -> None:
    key, ref, lanes = body["key"], body["ref"], body["lanes"]
    if service.cache.peek(key) is None:
        try:
            artifact = attach_artifact(ref)
        except ShmIntegrityError as exc:
            # Fail closed: report every lane so the front door can
            # quarantine + rebuild + requeue. Nothing was solved.
            for lane in lanes:
                result_q.put(("error", generation, lane["rid"],
                              "shm-integrity", exc.reason, str(exc)))
            return
        service.cache.put(key, artifact)
    plain = (service.fault_plan is None
             and all(not lane["directives"] for lane in lanes))
    if plain and len(lanes) > 1:
        # One lockstep batched run; lane results are bitwise identical
        # to solo solves (repro.batch), so this is purely a throughput
        # move.
        try:
            results = service.solve_batch(
                [lane["problem"] for lane in lanes],
                warm_starts=[lane["warm_start"] for lane in lanes],
                deadlines=[lane["deadline_seconds"] for lane in lanes],
                request_ids=[lane["rid"] for lane in lanes])
        except Exception as exc:
            for lane in lanes:
                result_q.put(("error", generation, lane["rid"],
                              "exception", type(exc).__name__, str(exc)))
            return
        for lane, result in zip(lanes, results):
            result.raw = None  # backend-native result is not picklable
            result_q.put(("result", generation, lane["rid"], result))
        return
    for lane in lanes:
        for directive in lane["directives"]:
            if directive["kind"] == "worker-crash":
                # The scheduled SIGKILL: the request is in flight, the
                # supervisor must notice, restart, and the front door
                # must requeue every lane of this incarnation.
                os.kill(os.getpid(), signal.SIGKILL)
            elif directive["kind"] == "worker-stall":
                # Go silent: pause heartbeats and stop processing for
                # the scheduled duration. Whether this ends in a
                # cooperative recovery or a SIGKILL is the supervisor's
                # tiering decision, not ours.
                state["pause_until"] = time.time() + directive["duration"]
                time.sleep(directive["duration"])
        try:
            result = service.solve(
                lane["problem"], warm_start=lane["warm_start"],
                deadline=lane["deadline_seconds"],
                request_id=lane["rid"])
            result.raw = None
            result_q.put(("result", generation, lane["rid"], result))
        except Exception as exc:
            result_q.put(("error", generation, lane["rid"], "exception",
                          type(exc).__name__, str(exc)))


# ----------------------------------------------------------------------
# front door
# ----------------------------------------------------------------------
class ShardedSolverService:
    """Supervised worker shards behind one structure-routed front door.

    Parameters mirror :class:`~repro.serving.service.SolverService`
    where they configure the per-shard services (``c``, ``settings``,
    ``pcg_eps``, ``max_pcg_iter``, ``backend``, ``verify``,
    ``fault_plan``, ``resilience``, ``algorithm``); the rest shape the
    sharded deployment itself:

    shards:
        Worker process count. Structure keys route by crc32 modulo
        ``shards``; a request for an unroutable shard falls over to
        any live shard (artifacts travel by shared memory, so any
        shard can serve any structure).
    max_batch / max_linger:
        Coalescing bounds per (structure, shard) group.
    heartbeat_interval / soft_timeout / hard_timeout / restart_* /
    breaker_*:
        Supervision knobs, passed to
        :class:`~repro.serving.supervisor.ShardSupervisor`.
    route_wait_seconds:
        How long a flush may wait for *any* routable shard (restarts
        in progress) before its lanes degrade to the reference solver.
    """

    def __init__(self, shards: int = 2, *, c: int | None = None,
                 settings: OSQPSettings | None = None,
                 cache_capacity: int = 128, cache_path=None,
                 pcg_eps: float = 1e-7, max_pcg_iter: int = 500,
                 backend: str = "compiled", verify: bool = True,
                 fault_plan=None,
                 resilience: ResiliencePolicy | None = None,
                 algorithm: str = "auto",
                 max_batch: int = 8, max_linger: float = 0.003,
                 start_method: str | None = None,
                 heartbeat_interval: float = 0.05,
                 soft_timeout: float = 1.0, hard_timeout: float = 3.0,
                 restart_backoff_base: float = 0.05,
                 restart_backoff_max: float = 1.0,
                 breaker_threshold: int = 5,
                 breaker_reset_seconds: float = 30.0,
                 route_wait_seconds: float = 5.0):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if algorithm != "auto" and algorithm not in available_algorithms():
            raise ValueError(
                f"algorithm must be 'auto' or one of "
                f"{available_algorithms()}, got {algorithm!r}")
        self.shards = int(shards)
        self.c = c
        self.settings = settings if settings is not None else OSQPSettings()
        self.pcg_eps = float(pcg_eps)
        self.max_pcg_iter = int(max_pcg_iter)
        self.backend = backend
        self.verify = bool(verify)
        self.fault_plan = fault_plan if fault_plan else None
        self.resilience = (resilience if resilience is not None
                           else ResiliencePolicy())
        self.algorithm = algorithm
        self.max_batch = int(max_batch)
        self.max_linger = float(max_linger)
        self.route_wait_seconds = float(route_wait_seconds)

        self.cache = ArchCache(capacity=cache_capacity, path=cache_path)
        self.metrics = MetricsRegistry()
        self.store = ShmArtifactStore()
        # Parent-side reference fallback for degraded requests.
        self._fallback_pool = WorkerPool(workers=2, mode="thread")

        from ..batch.coalescer import Coalescer
        self._coalescer = Coalescer(max_batch=self.max_batch,
                                    max_linger=self.max_linger)
        self._co_lock = threading.Lock()

        self._lock = threading.RLock()
        self._next_id = 0
        self._futures: dict[int, Future] = {}
        self._inflight: dict[int, dict] = {}
        self._records: dict[int, ServeRecord] = {}
        self._dispatch_q: queue.Queue = queue.Queue()
        self._intake_closed = False
        self._closed = False
        self._stop_dispatch = threading.Event()
        self._stop_collectors = threading.Event()
        self._collectors: list[threading.Thread] = []

        worker_config = {
            "c": c, "settings": self.settings, "pcg_eps": self.pcg_eps,
            "max_pcg_iter": self.max_pcg_iter, "backend": backend,
            "verify": self.verify, "fault_plan": self.fault_plan,
            "resilience": self.resilience, "algorithm": algorithm,
            "cache_capacity": int(cache_capacity),
            "max_batch": self.max_batch,
            "heartbeat_interval": float(heartbeat_interval),
        }
        self.supervisor = ShardSupervisor(
            self.shards, _shard_worker_main, worker_config,
            start_method=start_method,
            heartbeat_interval=heartbeat_interval,
            soft_timeout=soft_timeout, hard_timeout=hard_timeout,
            restart_backoff_base=restart_backoff_base,
            restart_backoff_max=restart_backoff_max,
            breaker_threshold=breaker_threshold,
            breaker_reset_seconds=breaker_reset_seconds,
            metrics=self.metrics,
            on_shard_up=self._on_shard_up,
            on_shard_down=self._on_shard_down)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="rsqp-shard-dispatch",
            daemon=True)
        self._dispatcher.start()
        self.supervisor.start()

    # ------------------------------------------------------------------
    # request lifecycle (sync + async front doors)
    # ------------------------------------------------------------------
    def width_for(self, problem) -> int:
        return self.c if self.c is not None else choose_width(problem.nnz)

    def cache_key(self, fingerprint, c: int,
                  algorithm: str = "admm") -> str:
        """Identical composition to :meth:`SolverService.cache_key`, so
        the parent's published segments land under the exact key the
        worker-side services compute for the same problem."""
        base = f"{fingerprint.key}:c{c}:pcg{self.max_pcg_iter}"
        return base if algorithm == "admm" else f"{base}:{algorithm}"

    def submit(self, problem, *, warm_start: tuple | None = None,
               deadline: float | None = None) -> int:
        """Enqueue one solve; returns a request id for :meth:`result`."""
        if self._intake_closed:
            raise RuntimeError("service is closed to new requests")
        if deadline is None:
            deadline = self.resilience.deadline_seconds
        now_epoch = time.time()
        with self._lock:
            rid = self._next_id
            self._next_id += 1
            future: Future = Future()
            entry = {
                "rid": rid, "problem": problem, "warm_start": warm_start,
                "deadline_epoch": (now_epoch + deadline
                                   if deadline is not None else None),
                "deadline_mono": (time.monotonic() + deadline
                                  if deadline is not None else None),
                "submitted_perf": time.perf_counter(),
                "attempt": 0, "key": None, "c": None,
                "fingerprint": None, "algorithm": None,
                "shard": None, "generation": None, "future": future,
            }
            self._futures[rid] = future
            self._inflight[rid] = entry
        self.metrics.counter("serving_requests_total").inc()
        self._dispatch_q.put(entry)
        return rid

    def result(self, request_id: int,
               timeout: float | None = None) -> ServeResult:
        """Block for a submitted request's result (re-entrant)."""
        with self._lock:
            future = self._futures.get(request_id)
        if future is None:
            raise KeyError(f"unknown request id {request_id}")
        return future.result(timeout=timeout)

    def solve(self, problem, *, warm_start: tuple | None = None,
              timeout: float | None = None,
              deadline: float | None = None) -> ServeResult:
        """Synchronous convenience: submit + result."""
        return self.result(self.submit(problem, warm_start=warm_start,
                                       deadline=deadline),
                           timeout=timeout)

    async def solve_async(self, problem, *,
                          warm_start: tuple | None = None,
                          deadline: float | None = None) -> ServeResult:
        """Awaitable front door: same pipeline, asyncio-native waiting
        (``asyncio.gather`` over many of these keeps every shard busy
        without blocking the event loop)."""
        import asyncio
        rid = self.submit(problem, warm_start=warm_start,
                          deadline=deadline)
        with self._lock:
            future = self._futures[rid]
        return await asyncio.wrap_future(future)

    def solve_batch(self, problems, *, warm_starts=None, deadlines=None,
                    timeout: float | None = None) -> list[ServeResult]:
        """Submit many, wait for all; results in submission order."""
        problems = list(problems)
        if warm_starts is None:
            warm_starts = [None] * len(problems)
        if deadlines is None:
            deadlines = [None] * len(problems)
        if not (len(warm_starts) == len(deadlines) == len(problems)):
            raise ValueError("per-request argument lists must match the "
                             "number of problems")
        rids = [self.submit(p, warm_start=w, deadline=dl)
                for p, w, dl in zip(problems, warm_starts, deadlines)]
        return [self.result(rid, timeout=timeout) for rid in rids]

    # ------------------------------------------------------------------
    # dispatcher (single thread: owns the coalescer and routing)
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stop_dispatch.is_set():
            try:
                item = self._dispatch_q.get(timeout=0.01)
            except queue.Empty:
                item = None
            try:
                if item is _FLUSH:
                    with self._co_lock:
                        groups = self._coalescer.flush_all()
                    for key, entries in groups:
                        self._ship(key, entries, "drain")
                elif item is not None:
                    self._route(item)
                with self._co_lock:
                    due = self._coalescer.due()
                for key, entries in due:
                    self._ship(key, entries, "due")
            except Exception as exc:  # pragma: no cover - last resort
                if item is not None and item is not _FLUSH:
                    self._fail(item, exc)

    def _route(self, entry: dict) -> None:
        with self._lock:
            if self._inflight.get(entry["rid"]) is not entry:
                return  # already answered (e.g. degraded meanwhile)
        if entry["key"] is None:
            problem = entry["problem"]
            c = self.width_for(problem)
            fingerprint = fingerprint_problem(problem, c=c)
            algorithm = choose_algorithm(
                problem, override=None if self.algorithm == "auto"
                else self.algorithm)
            entry.update(key=self.cache_key(fingerprint, c, algorithm),
                         c=c, fingerprint=fingerprint,
                         algorithm=algorithm)
        try:
            self._ensure_published(entry)
        except Exception as exc:
            self._fail(entry, exc)
            return
        plan = self.fault_plan
        if (plan is not None and entry["attempt"] == 0
                and not entry.get("corrupted")
                and plan.shm_corrupts_for(entry["rid"])):
            # Scheduled shm-corrupt: flip payload bytes in place; the
            # worker's checksum validation must catch it on attach.
            entry["corrupted"] = True
            if self.store.corrupt(entry["key"]):
                self.metrics.counter(
                    "serving_shm_corrupt_injected_total").inc()
        with self._co_lock:
            full = self._coalescer.offer(entry["key"], entry,
                                         deadline_at=entry["deadline_mono"])
        if full is not None:
            self._ship(entry["key"], full, "full")

    def _ensure_published(self, entry: dict) -> None:
        """Build (once) + verify + publish the entry's artifact."""
        key = entry["key"]
        if self.store.ref(key) is not None:
            return
        problem, fingerprint = entry["problem"], entry["fingerprint"]
        c, algorithm = entry["c"], entry["algorithm"]

        def builder():
            return build_artifact(
                problem, c, self.cache, fingerprint=fingerprint, key=key,
                max_admm_iter=self.settings.max_iter,
                max_pcg_iter=self.max_pcg_iter, metrics=self.metrics,
                algorithm=algorithm)

        artifact, was_hit = self.cache.get_or_build(key, builder)
        self.metrics.counter(
            "serving_cache_hits_total" if was_hit
            else "serving_cache_misses_total").inc()
        if self.verify:
            from ..exceptions import VerificationError
            from ..verify import ensure_artifact_verified
            try:
                ensure_artifact_verified(artifact, context=key)
            except VerificationError:
                self.metrics.counter("serving_verify_rejects_total").inc()
                self.cache.invalidate(key)
                artifact, _ = self.cache.get_or_build(key, builder)
                ensure_artifact_verified(artifact, context=key)
                self.metrics.counter(
                    "serving_artifact_rebuilds_total").inc()
        self.store.publish(key, artifact)
        self.metrics.counter("serving_shm_publishes_total").inc()

    def _pick_shard(self, key: str) -> int | None:
        """Structure-affine routing with live-shard fallback."""
        preferred = zlib.crc32(key.encode()) % self.shards
        deadline = time.monotonic() + self.route_wait_seconds
        while not self._stop_dispatch.is_set():
            routable = self.supervisor.routable_indices()
            if routable:
                if preferred in routable:
                    return preferred
                return routable[preferred % len(routable)]
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.01)
        return None

    def _ship(self, key: str, entries: list, reason: str) -> None:
        self.metrics.counter("serving_batch_flushes_total",
                             labels={"reason": reason}).inc()
        live = []
        now = time.time()
        for entry in entries:
            if (entry["deadline_epoch"] is not None
                    and now >= entry["deadline_epoch"]):
                # Expired while queued: degrade, never drop silently.
                self.metrics.counter("serving_deadline_misses_total").inc()
                self._degrade(entry, "deadline", expired=True)
            else:
                live.append(entry)
        if not live:
            return
        index = self._pick_shard(key)
        if index is None:
            for entry in live:
                self._degrade(entry, "no-routable-shard")
            return
        handle = self.supervisor.handle(index)
        if handle is None:
            for entry in live:
                self._retry_or_degrade(entry, "shard-vanished")
            return
        plan = self.fault_plan
        lanes = []
        with self._lock:
            for entry in live:
                if self._inflight.get(entry["rid"]) is not entry:
                    continue
                entry["shard"] = index
                entry["generation"] = handle.generation
                directives = [
                    {"kind": f.kind, "duration": f.duration}
                    for f in (plan.process_faults_for(
                        entry["rid"], entry["attempt"])
                        if plan is not None else [])]
                remaining = None
                if entry["deadline_epoch"] is not None:
                    remaining = max(entry["deadline_epoch"] - time.time(),
                                    1e-3)
                lanes.append({"rid": entry["rid"],
                              "problem": entry["problem"],
                              "warm_start": entry["warm_start"],
                              "deadline_seconds": remaining,
                              "directives": directives,
                              "attempt": entry["attempt"]})
        if not lanes:
            return
        message = ("batch", {"key": key, "ref": self.store.ref(key),
                             "lanes": lanes})
        try:
            handle.request_q.put(message)
        except Exception:
            for entry in live:
                self._retry_or_degrade(entry, "enqueue-failed")
            return
        self.metrics.histogram("serving_batch_width").observe(len(lanes))

    # ------------------------------------------------------------------
    # collectors + completion paths
    # ------------------------------------------------------------------
    def _on_shard_up(self, handle) -> None:
        collector = threading.Thread(
            target=self._collector_loop, args=(handle,),
            name=f"rsqp-shard-collect-{handle.index}-g{handle.generation}",
            daemon=True)
        collector.start()
        self._collectors.append(collector)

    def _collector_loop(self, handle) -> None:
        while not self._stop_collectors.is_set():
            try:
                msg = handle.result_q.get(timeout=0.2)
            except queue.Empty:
                if not handle.alive:
                    # Incarnation is gone; drain stragglers and exit
                    # (the supervisor's on_shard_down already requeued
                    # whatever never produced a result).
                    while True:
                        try:
                            msg = handle.result_q.get_nowait()
                        except Exception:
                            return
                        self._on_message(handle, msg)
                continue
            except (OSError, ValueError, EOFError):
                return  # queue discarded under us — incarnation is dead
            self._on_message(handle, msg)
            if msg and msg[0] == "bye":
                return

    def _on_message(self, handle, msg) -> None:
        try:
            kind = msg[0]
            if kind == "result":
                _, generation, rid, result = msg
                self._complete(rid, result)
            elif kind == "error":
                _, generation, rid, ekind, detail, text = msg
                self._on_error(handle, rid, ekind, detail, text)
            elif kind == "bye":
                _, generation, stats = msg
                merge_counters(self.metrics, stats.get("counters", {}),
                               extra_labels={"shard": str(handle.index)})
        except Exception:  # pragma: no cover - collector must survive
            pass

    def _complete(self, rid: int, result: ServeResult) -> None:
        with self._lock:
            entry = self._inflight.get(rid)
            if entry is None:
                return  # late duplicate after a requeue already answered
            del self._inflight[rid]
        if entry["attempt"] > 0:
            # A requeued request's answer is re-checked on the host —
            # the crash/restart path must uphold the same zero-silent-
            # corruption guarantee as a clean solve.
            if not solution_ok(entry["problem"], result.x, result.y,
                               result.z,
                               eps_abs=self.settings.eps_abs,
                               eps_rel=self.settings.eps_rel,
                               factor=self.resilience.check_factor):
                self.metrics.counter(
                    "serving_silent_corruption_total").inc()
                with self._lock:
                    self._inflight[rid] = entry
                self._retry_or_degrade(entry, "kkt-recheck")
                return
        record = result.record
        record.retries += entry["attempt"]
        with self._lock:
            self._records[rid] = record
        self.metrics.histogram("serving_e2e_seconds").observe(
            time.perf_counter() - entry["submitted_perf"])
        entry["future"].set_result(result)

    def _on_error(self, handle, rid: int, ekind: str, detail: str,
                  text: str) -> None:
        with self._lock:
            entry = self._inflight.get(rid)
        if entry is None:
            return
        if ekind == "shm-integrity":
            # The checksummed segment failed validation in the worker:
            # quarantine it, drop the parent's in-memory copy, and
            # requeue — the next route rebuilds from the cold path and
            # republishes under a bumped generation.
            self.metrics.counter(
                "serving_shm_checksum_failures_total",
                labels={"reason": detail}).inc()
            key = entry["key"]
            if key is not None:
                self.store.quarantine(key)
                self.cache.invalidate(key)
                self.metrics.counter("serving_shm_rebuilds_total").inc()
            self._retry_or_degrade(entry, f"shm-{detail}")
        else:
            self._retry_or_degrade(entry, f"worker-{detail}")

    def _on_shard_down(self, handle, reason: str) -> None:
        """Supervisor callback: requeue the dead incarnation's work."""
        with self._lock:
            victims = [entry for entry in self._inflight.values()
                       if entry.get("shard") == handle.index
                       and entry.get("generation") == handle.generation]
        for entry in victims:
            self._retry_or_degrade(entry, reason)

    def _retry_or_degrade(self, entry: dict, reason: str) -> None:
        with self._lock:
            if self._inflight.get(entry["rid"]) is not entry:
                return
            previous_shard = entry.get("shard")
            entry["attempt"] += 1
            entry["shard"] = None
            entry["generation"] = None
            attempt = entry["attempt"]
        expired = (entry["deadline_epoch"] is not None
                   and time.time() >= entry["deadline_epoch"])
        if expired or attempt > self.resilience.max_retries:
            self._degrade(entry, reason, expired=expired)
            return
        self.metrics.counter(
            "serving_shard_requeues_total",
            labels={"shard": str(previous_shard)
                    if previous_shard is not None else "unrouted"}).inc()
        self._dispatch_q.put(entry)

    def _degrade(self, entry: dict, reason: str,
                 expired: bool = False) -> None:
        if not self.resilience.degrade:
            self._fail(entry, ShardCrashedError(
                f"request {entry['rid']} lost to {reason} and the "
                "resilience policy does not degrade"))
            return

        def run():
            rid = entry["rid"]
            try:
                raw = reference_job(entry["problem"], self.settings,
                                    entry["warm_start"],
                                    entry.get("algorithm") or "admm")
                if not solution_ok(entry["problem"], raw.x, raw.y, raw.z,
                                   eps_abs=self.settings.eps_abs,
                                   eps_rel=self.settings.eps_rel,
                                   factor=self.resilience.check_factor):
                    # The reference answer is the last resort either
                    # way, but a KKT violation is still accounted.
                    self.metrics.counter(
                        "serving_silent_corruption_total").inc()
                total = time.perf_counter() - entry["submitted_perf"]
                fingerprint = entry.get("fingerprint")
                record = ServeRecord(
                    request_id=rid,
                    problem_name=entry["problem"].name,
                    fingerprint_key=(fingerprint.key
                                     if fingerprint is not None else ""),
                    c=entry.get("c") or 0,
                    architecture="", tier=TIER_DEGRADED,
                    backend="reference",
                    algorithm=entry.get("algorithm") or "admm",
                    solve_seconds=total, total_seconds=total,
                    admm_iterations=raw.info.iterations,
                    converged=raw.status.is_optimal,
                    retries=entry["attempt"], degraded=True,
                    deadline_missed=expired)
                with self._lock:
                    self._inflight.pop(rid, None)
                    self._records[rid] = record
                self.metrics.counter("serving_degraded_total").inc()
                entry["future"].set_result(ServeResult(
                    x=raw.x, y=raw.y, z=raw.z,
                    converged=raw.status.is_optimal,
                    backend="reference", record=record, raw=None))
            except Exception as exc:  # pragma: no cover - last resort
                self._fail(entry, exc)

        self._fallback_pool.submit(run)

    def _fail(self, entry: dict, exc: BaseException) -> None:
        with self._lock:
            self._inflight.pop(entry["rid"], None)
        if not entry["future"].done():
            entry["future"].set_exception(exc)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def records(self) -> list[ServeRecord]:
        with self._lock:
            return [self._records[i] for i in sorted(self._records)]

    def stats(self) -> dict:
        with self._lock:
            inflight = len(self._inflight)
        return {"inflight": inflight,
                "supervisor": self.supervisor.stats(),
                "store": self.store.stats(),
                "cache": self.cache.stats().as_dict()}

    def metrics_snapshot(self) -> dict:
        snap = self.metrics.snapshot()
        snap["cache"] = self.cache.stats().as_dict()
        snap["store"] = self.store.stats()
        return snap

    # ------------------------------------------------------------------
    # drain + close
    # ------------------------------------------------------------------
    def drain(self, timeout: float = 60.0) -> None:
        """Stop intake, flush every coalesced group, wait for every
        in-flight request (including requeues triggered *during* the
        drain). Raises :class:`TimeoutError` with the outstanding count
        rather than returning with work still in flight."""
        self._intake_closed = True
        self._dispatch_q.put(_FLUSH)
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                pending = len(self._inflight)
            with self._co_lock:
                queued = self._coalescer.pending
            if pending == 0 and queued == 0 and self._dispatch_q.empty():
                return
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"drain timed out after {timeout:.3g}s with "
                    f"{pending} request(s) still in flight")
            time.sleep(0.01)

    def close(self, timeout: float = 60.0) -> None:
        """Graceful shutdown: drain, stop workers (sentinel → join →
        kill), reap every child, unlink every shared-memory segment.
        Idempotent. Requests still unanswerable after the drain budget
        fail with :class:`~repro.exceptions.ShardCrashedError` — never
        silently dropped."""
        if self._closed:
            return
        self._closed = True
        drain_error = None
        try:
            self.drain(timeout=timeout)
        except TimeoutError as exc:
            drain_error = exc
        self._stop_dispatch.set()
        self._dispatcher.join(timeout=5.0)
        with self._lock:
            leftovers = list(self._inflight.values())
        for entry in leftovers:
            self._fail(entry, ShardCrashedError(
                f"request {entry['rid']} still in flight when the "
                "service closed"))
        self.supervisor.drain(timeout=max(timeout / 2.0, 5.0))
        self._stop_collectors.set()
        for collector in self._collectors:
            collector.join(timeout=2.0)
        if self.cache.path is not None:
            self.cache.save()
        self._fallback_pool.shutdown()
        self.store.close()
        if drain_error is not None:
            raise drain_error

    def __enter__(self) -> "ShardedSolverService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
