"""Health-check-driven circuit breaker for fleet routing.

Classic three-state machine over an *explicitly passed* clock (works
identically for the fleet's simulated time and wall time):

* **closed** — healthy; requests route normally. Consecutive failures
  at or above ``failure_threshold`` open the circuit.
* **open** — unhealthy; :meth:`allows` refuses until
  ``reset_seconds`` have elapsed since opening.
* **half-open** — probation after the reset window: one probe request
  is allowed through; success closes the circuit, failure re-opens it
  (and restarts the window).

A node death (:meth:`trip`) opens immediately regardless of the
failure count. All transitions are recorded for tests and reports.
"""

from __future__ import annotations

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    def __init__(self, failure_threshold: int = 3,
                 reset_seconds: float = 0.01, name: str = ""):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_seconds < 0:
            raise ValueError("reset_seconds must be non-negative")
        self.failure_threshold = int(failure_threshold)
        self.reset_seconds = float(reset_seconds)
        self.name = name
        self.state = CLOSED
        self.opens = 0
        self.transitions: list[tuple[float, str]] = []
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    # ------------------------------------------------------------------
    def _set_state(self, now: float, state: str) -> None:
        if state != self.state:
            self.state = state
            self.transitions.append((float(now), state))
            if state == OPEN:
                self.opens += 1

    def allows(self, now: float) -> bool:
        """May a request route through this node right now?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now >= self._opened_at + self.reset_seconds:
                self._set_state(now, HALF_OPEN)
                self._probing = False
            else:
                return False
        # half-open: admit exactly one probe until its verdict lands
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self, now: float) -> None:
        self._failures = 0
        self._probing = False
        self._set_state(now, CLOSED)

    def record_failure(self, now: float) -> None:
        self._failures += 1
        if self.state == HALF_OPEN or self._failures >= \
                self.failure_threshold:
            self._open(now)

    def trip(self, now: float) -> None:
        """Open immediately (e.g. the node died under us)."""
        self._open(now)

    def _open(self, now: float) -> None:
        self._opened_at = float(now)
        self._probing = False
        # Re-opening from half-open must restart the reset window even
        # though the nominal state doesn't change through OPEN twice.
        if self.state == OPEN:
            self.transitions.append((float(now), OPEN))
            self.opens += 1
        else:
            self._set_state(now, OPEN)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CircuitBreaker({self.name or '?'}, {self.state}, "
                f"failures={self._failures})")
