"""Recovery and resilience policies (the knobs, not the machinery).

:class:`RecoveryPolicy` governs the accelerator's *internal* recovery:
checkpoint/rollback of ADMM state at adaptive-rho segment boundaries
(see :class:`repro.hw.accelerator.RSQPAccelerator`). Rollback cost is
bounded — at most one segment of iterations is re-run per rollback,
never the whole problem.

:class:`ResiliencePolicy` governs the serving layer's *external*
resilience: how many times a failed solve is retried (exponential
backoff with deterministic seeded jitter), whether the service
degrades to the reference solver once retries are exhausted, the
default per-request deadline, and when returned solutions are
re-checked against the problem's KKT conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RecoveryPolicy", "ResiliencePolicy"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Accelerator-side checkpoint/rollback limits."""

    #: Rollbacks allowed per solve before the run raises
    #: FaultDetectedError (each re-runs at most one ADMM segment).
    max_rollbacks: int = 3
    #: A segment whose on-chip worst-residual grows by more than this
    #: factor over the previous segment's is treated as diverged.
    divergence_factor: float = 1e6


@dataclass(frozen=True)
class ResiliencePolicy:
    """Serving-side retry / degrade / deadline / check policy."""

    #: Retries after the first failed attempt (so max_retries + 1
    #: accelerator attempts total before degradation).
    max_retries: int = 2
    #: First backoff sleep; subsequent retries multiply by
    #: ``backoff_factor``. Kept tiny by default — these are simulated
    #: accelerators, the backoff only needs to exist and be bounded.
    backoff_base_seconds: float = 1e-4
    backoff_factor: float = 2.0
    #: Uniform jitter fraction added on top (0.5 -> up to +50%).
    backoff_jitter: float = 0.5
    #: Default per-request deadline; None = no deadline.
    deadline_seconds: float | None = None
    #: Degrade to the reference solver after retries are exhausted
    #: (False re-raises the last failure instead).
    degrade: bool = True
    #: When to re-check a returned solution against the unscaled KKT
    #: residuals: "auto" (only when faults were injected into the
    #: attempt), "always", or "never".
    check: str = "auto"
    #: Slack factor on eps_abs/eps_rel for the KKT re-check.
    check_factor: float = 100.0
    #: Seed of the jitter stream (deterministic backoff schedules).
    seed: int = 0

    def __post_init__(self):
        if self.check not in ("auto", "always", "never"):
            raise ValueError(
                f"check must be 'auto', 'always' or 'never', "
                f"got {self.check!r}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def jitter_rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def backoff_seconds(self, attempt: int, rng=None) -> float:
        """Sleep before retry ``attempt`` (1-based), with jitter."""
        base = self.backoff_base_seconds * \
            self.backoff_factor ** max(attempt - 1, 0)
        if rng is None or self.backoff_jitter <= 0:
            return base
        return base * (1.0 + self.backoff_jitter * float(rng.random()))
