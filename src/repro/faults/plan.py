"""Deterministic, seed-driven fault schedules.

A :class:`FaultPlan` is a frozen list of :class:`Fault` records drawn
once from a seeded generator. Faults are addressed *logically* — by
request index, attempt number, and a per-op-class sequence number
(the Nth SpMV / HBM load / CVB duplication of a solve) — never by
wall-clock time or memory address. Because the interpreter and the
compiled backend execute the identical instruction sequence with
identical bits, the same plan injects the same corruption into both,
which is what keeps the differential-testing contract alive under
injection and makes chaos reports reproducible across backends.

Fault taxonomy (see ``docs/FAULTS.md``):

``mac-flip``
    A single-bit flip in the MAC-tree output of one SpMV — one element
    of the result vector is corrupted as it leaves the datapath.
``hbm-read``
    A single-bit flip in one element of an HBM -> VB load (problem
    data or iterates read back on chip).
``cvb-read``
    A single-bit flip in one element of a CVB duplication (the vector
    an SpMV is about to multiply).
``node-stall``
    A fleet node hangs at a simulated instant for a duration; its
    in-flight and queued requests must be requeued elsewhere.
``artifact-poison``
    A cached architecture artifact is corrupted in place (its compiled
    cycle bookkeeping no longer matches its schedules); the static
    verifier must catch it before any solve runs.
``worker-crash``
    A sharded-serving worker process is SIGKILLed mid-solve (an OOM
    kill, a segfault); the supervisor must detect, restart, and
    requeue/degrade its in-flight requests.
``worker-stall``
    A worker hangs for ``duration`` seconds without heartbeating; the
    supervisor's deadline tiers decide — a short stall recovers
    cooperatively, one past the hard timeout is killed + restarted.
``shm-corrupt``
    The shared-memory artifact segment a request is about to bind is
    corrupted in place; the reader's checksum must detect it, the
    segment is quarantined and rebuilt from the cold path, never
    served.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = ["Fault", "FaultPlan", "FAULT_KINDS", "HW_KINDS",
           "PROCESS_KINDS"]

#: Every fault kind a plan may carry.
FAULT_KINDS = ("mac-flip", "hbm-read", "cvb-read", "node-stall",
               "artifact-poison", "worker-crash", "worker-stall",
               "shm-corrupt")

#: Kinds injected into the accelerator datapath (via FaultInjector).
HW_KINDS = ("mac-flip", "hbm-read", "cvb-read")

#: Process-level kinds driven by the sharded serving lane
#: (:mod:`repro.serving.sharded`), addressed by request index.
PROCESS_KINDS = ("worker-crash", "worker-stall", "shm-corrupt")

#: Datapath channel each hw kind corrupts.
KIND_CHANNEL = {"mac-flip": "spmv", "hbm-read": "load",
                "cvb-read": "cvb"}

#: ``Fault.attempt`` value meaning "fire on every attempt".
EVERY_ATTEMPT = -1


@dataclass(frozen=True)
class Fault:
    """One scheduled fault. Unused fields stay at their defaults.

    ``attempt`` selects which retry of the request the fault fires on:
    ``0`` (default) only the first attempt — so a retry of the same
    request runs clean, modeling a *transient* upset — and
    ``EVERY_ATTEMPT`` (-1) every attempt, modeling a persistent defect.
    """

    kind: str
    #: Request index the fault targets (hw + poison kinds).
    request: int = -1
    #: Which attempt of the request (0 = first only, -1 = all).
    attempt: int = 0
    #: Per-op-class sequence number of the corrupted op within the
    #: solve (the Nth SpMV / load / VecDup executed).
    op_index: int = 0
    #: Element of the target vector to corrupt.
    element: int = 0
    #: Bit of the float64 to flip (0..63).
    bit: int = 51
    #: Simulated instant a node-stall begins.
    time: float = 0.0
    #: Simulated stall duration.
    duration: float = 0.0
    #: Node id a node-stall targets.
    node: int = -1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0 <= self.bit <= 63:
            raise ValueError(f"bit must be in [0, 63], got {self.bit}")

    def fires_on(self, attempt: int) -> bool:
        return self.attempt == EVERY_ATTEMPT or self.attempt == attempt


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, seeded schedule of faults.

    Determinism guarantee: a plan is a pure function of its
    constructor arguments (or of ``(seed, requests, rates)`` through
    :meth:`generate`), and fault firing depends only on logical
    coordinates — so identical seeds produce identical injected
    corruption, identical recovery paths, and identical chaos reports,
    on either execution backend.
    """

    seed: int = 0
    faults: tuple = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    # ------------------------------------------------------------------
    def hw_faults_for(self, request: int, attempt: int = 0) -> list:
        """Datapath faults that fire for one (request, attempt)."""
        return [f for f in self.faults
                if f.kind in HW_KINDS and f.request == request
                and f.fires_on(attempt)]

    def injector_for(self, request: int, attempt: int = 0):
        """A fresh :class:`~repro.faults.inject.FaultInjector` for one
        solve attempt, or None when no datapath fault targets it (the
        zero-overhead path — no hook is armed at all)."""
        faults = self.hw_faults_for(request, attempt)
        if not faults:
            return None
        from .inject import FaultInjector
        return FaultInjector(faults)

    def stalls(self) -> list:
        """All node-stall faults, ordered by time."""
        return sorted((f for f in self.faults if f.kind == "node-stall"),
                      key=lambda f: (f.time, f.node))

    def poisons_for(self, request: int) -> list:
        """Artifact-poison faults targeting one request index."""
        return [f for f in self.faults
                if f.kind == "artifact-poison" and f.request == request]

    def process_faults_for(self, request: int, attempt: int = 0) -> list:
        """Worker crash/stall faults firing for one (request, attempt).

        The sharded front door turns these into per-request directives:
        a crash SIGKILLs the worker mid-solve, a stall suspends its
        heartbeats for ``duration`` seconds. The default transient
        semantics hold — a requeued request (attempt > 0) runs clean
        unless the fault is ``EVERY_ATTEMPT``.
        """
        return [f for f in self.faults
                if f.kind in ("worker-crash", "worker-stall")
                and f.request == request and f.fires_on(attempt)]

    def shm_corrupts_for(self, request: int) -> list:
        """``shm-corrupt`` faults targeting one request index."""
        return [f for f in self.faults
                if f.kind == "shm-corrupt" and f.request == request]

    def count_by_kind(self) -> dict:
        counts: dict[str, int] = {}
        for f in self.faults:
            counts[f.kind] = counts.get(f.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, seed: int, requests: int, *,
                 mac_rate: float = 0.05,
                 hbm_rate: float = 0.03,
                 cvb_rate: float = 0.02,
                 persistent_rate: float = 0.1,
                 poisons: int = 2,
                 stalls: int = 2,
                 nodes: int = 1,
                 horizon: float = 1.0,
                 stall_duration: float = 0.05,
                 op_span: int = 64,
                 worker_crashes: int = 0,
                 worker_stalls: int = 0,
                 shm_corrupts: int = 0,
                 worker_stall_seconds: float = 0.2) -> "FaultPlan":
        """Draw a plan from a seeded generator.

        Each request independently suffers each datapath fault kind
        with the given per-request probability; a ``persistent_rate``
        fraction of those fire on every attempt (retries do not clear
        them). ``poisons`` artifact poisonings and ``stalls`` node
        stalls (across ``nodes`` node ids, within ``horizon`` simulated
        seconds) are spread over the request stream. ``op_span`` bounds
        the per-class op index drawn — ops past the end of a short
        solve simply never fire, which is fine: the report counts
        *observed* injections.

        ``worker_crashes`` / ``worker_stalls`` / ``shm_corrupts``
        schedule that many process-level faults at distinct request
        indices for the sharded lane (stalls last
        ``worker_stall_seconds``). They are drawn *after* everything
        above, so plans generated with the historical arguments are
        bit-identical to pre-process-vocabulary plans.
        """
        rng = np.random.default_rng(seed)
        faults: list[Fault] = []
        rates = (("mac-flip", mac_rate), ("hbm-read", hbm_rate),
                 ("cvb-read", cvb_rate))
        for request in range(requests):
            for kind, rate in rates:
                if rng.random() >= rate:
                    continue
                attempt = (EVERY_ATTEMPT
                           if rng.random() < persistent_rate else 0)
                faults.append(Fault(
                    kind=kind, request=request, attempt=attempt,
                    op_index=int(rng.integers(0, op_span)),
                    element=int(rng.integers(0, 1 << 30)),
                    bit=int(rng.integers(0, 63))))
        if requests > 0:
            for _ in range(poisons):
                faults.append(Fault(kind="artifact-poison",
                                    request=int(rng.integers(0, requests))))
        for _ in range(stalls):
            faults.append(Fault(
                kind="node-stall",
                node=int(rng.integers(0, max(nodes, 1))),
                time=float(rng.uniform(0.0, horizon)),
                duration=float(stall_duration)))
        if requests > 0:
            process_kinds = (("worker-crash", worker_crashes),
                             ("worker-stall", worker_stalls),
                             ("shm-corrupt", shm_corrupts))
            taken: set[int] = set()
            for kind, count in process_kinds:
                count = min(int(count), requests - len(taken))
                if count <= 0:
                    continue
                # Distinct request indices across all process kinds, so
                # one request never suffers a crash *and* a stall — the
                # directive semantics stay unambiguous per request.
                available = np.array(
                    [r for r in range(requests) if r not in taken])
                picks = rng.choice(available, size=count, replace=False)
                for request in sorted(int(p) for p in picks):
                    taken.add(request)
                    faults.append(Fault(
                        kind=kind, request=request,
                        duration=(float(worker_stall_seconds)
                                  if kind == "worker-stall" else 0.0)))
        return cls(seed=seed, faults=tuple(faults))

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {"seed": self.seed,
                "faults": [asdict(f) for f in self.faults]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        return cls(seed=int(payload.get("seed", 0)),
                   faults=tuple(Fault(**raw)
                                for raw in payload.get("faults", [])))
