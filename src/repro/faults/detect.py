"""Host-side silent-corruption detection: the KKT re-check.

ADMM is self-correcting for transient *iterate* corruption — a flipped
bit in ``x`` washes out over subsequent iterations — but corruption of
the *problem data* the accelerator loaded (q, l, u, the
preconditioner) makes it converge, confidently, to the solution of a
different problem. The on-chip termination check cannot see that: it
uses the same corrupted buffers. The only trustworthy referee is the
host, which still holds the pristine problem: recompute the unscaled
KKT residuals from the returned iterates and the original data.

This mirrors the reference solver's termination criterion
(:meth:`repro.solver.osqp.OSQPSolver._residuals`, unscaled inf-norm
form) with a slack factor, plus an explicit bound-violation term —
``z`` must actually lie in ``[l, u]``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kkt_residuals", "solution_ok"]


def _abs_max(v: np.ndarray) -> float:
    return float(np.abs(v).max()) if v.size else 0.0


def kkt_residuals(problem, x, y, z) -> dict:
    """Unscaled KKT residuals of ``(x, y, z)`` on the original problem.

    Returns primal/dual inf-norm residuals, the norms entering the
    relative tolerances, and the inf-norm violation of ``l <= z <= u``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    z = np.asarray(z, dtype=np.float64)
    ax = problem.A.matvec(x)
    px = problem.P.matvec(x)
    aty = problem.A.rmatvec(y)
    pri_res = _abs_max(ax - z)
    pri_norm = max(_abs_max(ax), _abs_max(z))
    dua_res = _abs_max(px + problem.q + aty)
    dua_norm = max(_abs_max(px), _abs_max(aty), _abs_max(problem.q))
    bound_violation = _abs_max(
        z - np.clip(z, problem.l, problem.u)) if z.size else 0.0
    return {"pri_res": pri_res, "pri_norm": pri_norm,
            "dua_res": dua_res, "dua_norm": dua_norm,
            "bound_violation": bound_violation}


def solution_ok(problem, x, y, z, *, eps_abs: float, eps_rel: float,
                factor: float = 100.0) -> bool:
    """Does ``(x, y, z)`` satisfy the KKT conditions within slack?

    ``factor`` loosens the solver's own tolerances: the accelerator
    terminates on *scaled* 2-norm residuals, so an honest solution can
    miss the unscaled inf-norm tolerance by a modest margin — but a
    solve poisoned by data corruption misses it by orders of
    magnitude. Non-finite iterates always fail.
    """
    for v in (x, y, z):
        if v is None or not np.all(np.isfinite(v)):
            return False
    r = kkt_residuals(problem, x, y, z)
    pri_tol = factor * (eps_abs + eps_rel * r["pri_norm"])
    dua_tol = factor * (eps_abs + eps_rel * r["dua_norm"])
    return (r["pri_res"] <= pri_tol and r["dua_res"] <= dua_tol
            and r["bound_violation"] <= pri_tol)
