"""CLI: chaos replay — a skewed QP stream under a deterministic
fault plan, asserting the end-to-end resilience SLOs.

Up to three stages share one workload (the fleet CLI's Zipf-skewed
stream):

1. **serving chaos** — every request through a serial-mode
   :class:`~repro.serving.SolverService` with datapath bit-flips and
   artifact poisoning armed; the service detects, retries and
   degrades, and the CLI independently re-checks every returned
   solution against the KKT conditions.
2. **fleet chaos** — the same stream replayed through a
   :class:`~repro.fleet.FleetService` with node-stall faults: nodes
   crash mid-service, in-flight work is requeued, circuit breakers
   steer traffic, and exhausted requests degrade to the spill lane.
3. **sharded chaos** (``--shards N``) — the stream through a
   :class:`~repro.serving.ShardedSolverService` of N worker
   *processes* with the process-level vocabulary armed:
   ``worker-crash`` (SIGKILL mid-flight), ``worker-stall``
   (heartbeat silence, tier-resolved by the supervisor) and
   ``shm-corrupt`` (checksummed shared-memory segment corrupted in
   place, quarantined + rebuilt, never served). The supervisor
   restarts, the front door requeues/degrades, and the same SLO
   gates apply.

The serving/fleet report sections contain only deterministic
quantities (counts and simulated-clock values, never wall-clock
times), so identical seeds produce byte-identical reports — including
across the two execution backends (``--both-backends`` asserts
exactly that). The sharded section gates on the same availability +
zero-silent-corruption SLOs; its supervision counters (restarts,
requeues) are reported but not byte-stable, since crash timing
decides how many innocent-bystander lanes die with a shard.

SLO gates (exit code 1 on violation):

* availability — answered / submitted — at least ``--min-availability``
  in every stage;
* **zero silent wrong answers**: every converged, non-degraded
  solution must satisfy the KKT re-check.

Examples::

    python -m repro.faults --seed 0 --requests 200
    python -m repro.faults --requests 64 --both-backends
    python -m repro.faults --requests 32 --skip-fleet --shards 2 \\
        --worker-crashes 2 --shm-corrupts 1
    python -m repro.faults --report chaos_report.json
"""

from __future__ import annotations

import argparse
import json
import time

from ..fleet import AdmissionController, FleetService
from ..fleet.__main__ import DEFAULT_FAMILIES, build_workload
from ..problems import FAMILIES
from ..serving import ShardedSolverService, SolverService
from ..solver import OSQPSettings
from .detect import solution_ok
from .plan import FaultPlan
from .policy import ResiliencePolicy


def serving_chaos(args, problems, backend: str) -> dict:
    """One serial-mode serving replay under the plan; returns the
    deterministic report section."""
    plan = FaultPlan.generate(
        args.seed, len(problems), mac_rate=args.mac_rate,
        hbm_rate=args.hbm_rate, cvb_rate=args.cvb_rate,
        persistent_rate=args.persistent_rate, poisons=args.poisons,
        stalls=0)
    settings = OSQPSettings(eps_abs=args.eps, eps_rel=args.eps)
    resilience = ResiliencePolicy(
        max_retries=args.max_retries, backoff_base_seconds=0.0,
        seed=args.seed)
    answered = failed = silent = 0
    with SolverService(mode="serial", settings=settings, c=args.c,
                       backend=backend, fault_plan=plan,
                       resilience=resilience) as service:
        ids = [service.submit(p) for p in problems]
        for request_id, problem in zip(ids, problems):
            try:
                result = service.result(request_id)
            except Exception:
                failed += 1
                continue
            answered += 1
            if (result.converged and not result.record.degraded
                    and not solution_ok(
                        problem, result.x, result.y, result.z,
                        eps_abs=settings.eps_abs,
                        eps_rel=settings.eps_rel,
                        factor=args.check_factor)):
                silent += 1
        records = service.records()
        counters = service.metrics_snapshot()["counters"]
    return {
        "backend": backend,
        "plan": plan.count_by_kind(),
        "requests": len(problems),
        "answered": answered,
        "failed": failed,
        "availability": answered / len(problems) if problems else 1.0,
        "silent_wrong": silent,
        "degraded": sum(r.degraded for r in records),
        "retries": sum(r.retries for r in records),
        "rollbacks": sum(r.rollbacks for r in records),
        "faults_injected": sum(r.faults_injected for r in records),
        "converged": sum(r.converged for r in records),
        "counters": {name: value for name, value in counters.items()
                     if name.startswith("serving_")},
    }


def fleet_chaos(args, templates, problems, backend: str) -> dict:
    """Calibrated fleet replay with node-stall chaos; returns the
    deterministic report section."""
    horizon = len(problems) / args.rate
    plan = FaultPlan.generate(
        args.seed + 1, len(problems), mac_rate=args.mac_rate,
        hbm_rate=args.hbm_rate, cvb_rate=args.cvb_rate,
        persistent_rate=args.persistent_rate, poisons=0,
        stalls=args.stalls, nodes=args.nodes, horizon=horizon,
        stall_duration=args.stall_duration)
    settings = OSQPSettings(eps_abs=args.eps, eps_rel=args.eps)
    silent = 0
    with FleetService(policy="match", c=args.c, settings=settings,
                      solve_mode="calibrated",
                      admission=AdmissionController(),
                      seed=args.seed, backend=backend,
                      fault_plan=plan) as fleet:
        for index in range(args.nodes):
            fleet.commission(templates[index % len(templates)])
        ids = fleet.replay_open(problems, rate=args.rate,
                                seed=args.seed)
        for request_id, problem in zip(ids, problems):
            result = fleet.result(request_id)
            record = result.record
            # Calibrated repeats reuse the calibration solve of a
            # *different* numeric instance — only dedicated numeric
            # solves can be KKT-checked against their own problem.
            if (record.converged and record.lane == "node"
                    and not record.calibrated
                    and not solution_ok(
                        problem, result.x, result.y, result.z,
                        eps_abs=settings.eps_abs,
                        eps_rel=settings.eps_rel,
                        factor=args.check_factor)):
                silent += 1
        report = fleet.fleet_report()
    answered = report["requests"] - report["shed"]
    degraded = sum(r.degraded for r in fleet.records())
    return {
        "backend": backend,
        "plan": plan.count_by_kind(),
        "requests": report["requests"],
        "answered": answered,
        "availability": (answered / report["requests"]
                         if report["requests"] else 1.0),
        "silent_wrong": silent,
        "completed": report["completed"],
        "spilled": report["spilled"],
        "shed": report["shed"],
        "converged": report["converged"],
        "degraded": degraded,
        "faults": report["faults"],
    }


def sharded_chaos(args, problems) -> dict:
    """Process-sharded replay under the process-level vocabulary:
    worker crashes (SIGKILL), worker stalls (heartbeat silence) and
    shared-memory corruption — supervised restart, requeue/degrade,
    checksum quarantine. Returns the report section."""
    plan = FaultPlan.generate(
        args.seed + 2, len(problems),
        mac_rate=0.0, hbm_rate=0.0, cvb_rate=0.0, poisons=0, stalls=0,
        worker_crashes=args.worker_crashes,
        worker_stalls=args.worker_stalls,
        shm_corrupts=args.shm_corrupts,
        worker_stall_seconds=args.worker_stall_seconds)
    settings = OSQPSettings(eps_abs=args.eps, eps_rel=args.eps)
    resilience = ResiliencePolicy(
        max_retries=args.max_retries, backoff_base_seconds=0.0,
        seed=args.seed)
    answered = failed = silent = 0
    with ShardedSolverService(
            shards=args.shards, settings=settings, c=args.c,
            backend=args.backend, fault_plan=plan,
            resilience=resilience,
            soft_timeout=args.soft_timeout,
            hard_timeout=args.hard_timeout,
            restart_backoff_base=0.02) as service:
        rids = [service.submit(p) for p in problems]
        for rid, problem in zip(rids, problems):
            try:
                result = service.result(rid, timeout=300)
            except Exception:
                failed += 1
                continue
            answered += 1
            if (result.converged and not result.record.degraded
                    and not solution_ok(
                        problem, result.x, result.y, result.z,
                        eps_abs=settings.eps_abs,
                        eps_rel=settings.eps_rel,
                        factor=args.check_factor)):
                silent += 1
        records = service.records()
        stats = service.stats()
        counters = service.metrics_snapshot()["counters"]

    def family_total(prefix: str) -> float:
        return sum(v for k, v in counters.items()
                   if k.split("{", 1)[0] == prefix)

    return {
        "shards": args.shards,
        "plan": plan.count_by_kind(),
        "requests": len(problems),
        "answered": answered,
        "failed": failed,
        "availability": answered / len(problems) if problems else 1.0,
        "silent_wrong": silent,
        "degraded": sum(r.degraded for r in records),
        "restarts": sum(stats["supervisor"]["restarts"]),
        "heartbeat_misses": sum(stats["supervisor"]["heartbeat_misses"]),
        "requeues": int(family_total("serving_shard_requeues_total")),
        "shm_corrupts_injected": int(
            family_total("serving_shm_corrupt_injected_total")),
        "shm_checksum_failures": int(
            family_total("serving_shm_checksum_failures_total")),
        "shm_quarantines": stats["store"]["quarantines"],
        "converged": sum(r.converged for r in records),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Chaos replay: a skewed QP stream under a "
                    "deterministic fault plan, gated on availability "
                    "and zero-silent-corruption SLOs.")
    parser.add_argument("--requests", type=int, default=64,
                        help="total requests per stage")
    parser.add_argument("--structures", type=int, default=4)
    parser.add_argument("--families", default=DEFAULT_FAMILIES,
                        help="comma-separated families "
                             f"(available: {','.join(sorted(FAMILIES))})")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="size multiplier on the suite instances")
    parser.add_argument("--skew", type=float, default=1.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", choices=("interpret", "compiled"),
                        default="compiled")
    parser.add_argument("--both-backends", action="store_true",
                        help="run the serving stage on both backends "
                             "and require byte-identical reports")
    parser.add_argument("--skip-fleet", action="store_true",
                        help="serving stage only")
    # fault plan shape
    parser.add_argument("--mac-rate", type=float, default=0.05,
                        help="per-request probability of a MAC-tree flip")
    parser.add_argument("--hbm-rate", type=float, default=0.03)
    parser.add_argument("--cvb-rate", type=float, default=0.02)
    parser.add_argument("--persistent-rate", type=float, default=0.1,
                        help="fraction of datapath faults that fire on "
                             "every retry, not just the first attempt")
    parser.add_argument("--poisons", type=int, default=2,
                        help="artifact poisonings in the serving stage")
    parser.add_argument("--stalls", type=int, default=2,
                        help="node stalls in the fleet stage")
    parser.add_argument("--stall-duration", type=float, default=0.05,
                        help="simulated node outage length (seconds)")
    # sharded stage (process-level vocabulary)
    parser.add_argument("--shards", type=int, default=0,
                        help="run the sharded chaos stage with this "
                             "many worker processes (0 = skip)")
    parser.add_argument("--worker-crashes", type=int, default=2,
                        help="scheduled worker SIGKILLs (sharded stage)")
    parser.add_argument("--worker-stalls", type=int, default=1,
                        help="scheduled worker heartbeat stalls")
    parser.add_argument("--shm-corrupts", type=int, default=1,
                        help="scheduled shared-memory corruptions")
    parser.add_argument("--worker-stall-seconds", type=float,
                        default=0.5,
                        help="worker stall length; between the soft "
                             "and hard timeouts it recovers "
                             "cooperatively, past hard it is killed")
    parser.add_argument("--soft-timeout", type=float, default=0.25,
                        help="shard heartbeat soft timeout (seconds)")
    parser.add_argument("--hard-timeout", type=float, default=2.0,
                        help="shard heartbeat hard timeout (seconds)")
    # resilience + fleet knobs
    parser.add_argument("--max-retries", type=int, default=2)
    parser.add_argument("--check-factor", type=float, default=100.0,
                        help="KKT re-check slack over solver tolerance")
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--rate", type=float, default=2000.0,
                        help="fleet open-loop arrival rate")
    parser.add_argument("--c", type=int, default=None)
    parser.add_argument("--eps", type=float, default=1e-3)
    # SLOs + output
    parser.add_argument("--min-availability", type=float, default=0.99)
    parser.add_argument("--report", default=None,
                        help="write the chaos report to this JSON file")
    args = parser.parse_args(argv)

    families = [f.strip() for f in args.families.split(",") if f.strip()]
    unknown = sorted(set(families) - set(FAMILIES))
    if unknown:
        parser.error(f"unknown families {', '.join(unknown)} "
                     f"(available: {','.join(sorted(FAMILIES))})")
    templates, problems = build_workload(
        families, args.structures, args.requests, args.scale, args.skew,
        args.seed)
    print(f"chaos workload: {len(problems)} requests over "
          f"{len(templates)} structures (seed {args.seed})")

    report: dict = {"seed": args.seed, "requests": args.requests}
    backends = (["interpret", "compiled"] if args.both_backends
                else [args.backend])
    serving_reports = {}
    for backend in backends:
        t0 = time.perf_counter()
        serving_reports[backend] = serving_chaos(args, problems, backend)
        elapsed = time.perf_counter() - t0
        s = serving_reports[backend]
        print(f"\n=== serving chaos [{backend}] "
              f"({elapsed:.2f} s wall) ===")
        print(f"availability           : {s['availability']:.2%} "
              f"({s['answered']}/{s['requests']} answered)")
        print(f"faults injected        : {s['faults_injected']} "
              f"(plan: {s['plan']})")
        print(f"retries / rollbacks    : {s['retries']} / "
              f"{s['rollbacks']}")
        print(f"degraded answers       : {s['degraded']}")
        print(f"silent wrong answers   : {s['silent_wrong']}")
    report["serving"] = serving_reports[backends[-1]]

    backends_identical = True
    if args.both_backends:
        lhs, rhs = (dict(serving_reports[b], backend="") for b in backends)
        backends_identical = lhs == rhs
        report["backends_identical"] = backends_identical
        print(f"\nbackend report identity: "
              f"{'OK' if backends_identical else 'MISMATCH'}")

    if not args.skip_fleet:
        t0 = time.perf_counter()
        fleet_section = fleet_chaos(args, templates, problems,
                                    args.backend)
        elapsed = time.perf_counter() - t0
        report["fleet"] = fleet_section
        f = fleet_section
        print(f"\n=== fleet chaos [{args.backend}] "
              f"({elapsed:.2f} s wall) ===")
        print(f"availability           : {f['availability']:.2%} "
              f"({f['answered']}/{f['requests']} answered)")
        print(f"lanes                  : {f['completed']} node, "
              f"{f['spilled']} spilled, {f['shed']} shed")
        print(f"node failures          : "
              f"{f['faults']['node_failures']} "
              f"({f['faults']['requeues']} requeues, "
              f"{f['faults']['breaker_opens']} breaker opens)")
        print(f"degraded answers       : {f['degraded']}")
        print(f"silent wrong answers   : {f['silent_wrong']}")

    if args.shards > 0:
        t0 = time.perf_counter()
        sharded_section = sharded_chaos(args, problems)
        elapsed = time.perf_counter() - t0
        report["sharded"] = sharded_section
        d = sharded_section
        print(f"\n=== sharded chaos [{args.shards} shards, "
              f"{args.backend}] ({elapsed:.2f} s wall) ===")
        print(f"availability           : {d['availability']:.2%} "
              f"({d['answered']}/{d['requests']} answered)")
        print(f"plan                   : {d['plan']}")
        print(f"shard restarts         : {d['restarts']} "
              f"({d['requeues']} requeues, "
              f"{d['heartbeat_misses']} heartbeat misses)")
        print(f"shm checksum failures  : {d['shm_checksum_failures']} "
              f"({d['shm_quarantines']} quarantined + rebuilt)")
        print(f"degraded answers       : {d['degraded']}")
        print(f"silent wrong answers   : {d['silent_wrong']}")

    # -- SLO gates -----------------------------------------------------
    violations = []
    for name in [k for k in ("serving", "fleet", "sharded")
                 if k in report]:
        section = report[name]
        if section["availability"] < args.min_availability:
            violations.append(
                f"{name} availability {section['availability']:.2%} "
                f"< {args.min_availability:.2%}")
        if section["silent_wrong"]:
            violations.append(
                f"{name} returned {section['silent_wrong']} silent "
                f"wrong answer(s)")
    sharded = report.get("sharded")
    if sharded and sharded["shm_checksum_failures"] < \
            sharded["shm_corrupts_injected"]:
        # Every injected segment corruption must be *detected* by a
        # reader checksum — an undetected one is a served lie waiting
        # to happen.
        violations.append(
            f"sharded detected only {sharded['shm_checksum_failures']} "
            f"of {sharded['shm_corrupts_injected']} injected shm "
            "corruption(s)")
    if not backends_identical:
        violations.append("serving chaos reports differ across backends")
    report["slo"] = {"min_availability": args.min_availability,
                     "violations": violations}

    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"\nreport written to {args.report}")

    if violations:
        print("\nSLO VIOLATIONS:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("\nall SLOs met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
