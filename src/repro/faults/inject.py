"""The shared datapath injection hook both backends call.

A :class:`FaultInjector` is armed on a :class:`~repro.hw.machine.
Machine` (``machine.injector``). Both execution backends call the same
three hooks at the same logical points of the instruction stream:

* :meth:`on_spmv` — after an SpMV writes its result vector
  (``mac-flip``: a MAC-tree upset corrupts one output element);
* :meth:`on_load` — after an HBM -> VB ``DataTransfer`` load
  (``hbm-read``: the read returns corrupted bits);
* :meth:`on_cvb` — after a ``VecDup`` fills a CVB bank group
  (``cvb-read``: the duplication latches corrupted bits).

Each hook counts ops per channel; a fault fires when its
``(channel, op_index)`` coordinate comes up. Corruption is a single
XOR on the float64 bit pattern (viewed as uint64), applied in place —
identical on both backends because both hand the hook the same buffer
contents at the same op count. Every firing is recorded in
:attr:`FaultInjector.events` (with before/after bit patterns), which
is how the serving and fleet layers account injected faults even when
the solve subsequently fails.

The injector also carries ``poison_artifact`` — the artifact-poison
corruption shared by the serving layer and the chaos CLI.
"""

from __future__ import annotations

import numpy as np

from .plan import KIND_CHANNEL

__all__ = ["FaultInjector", "flip_bit", "poison_artifact"]


def flip_bit(buf: np.ndarray, element: int, bit: int) -> tuple:
    """XOR one bit of ``buf[element]`` in place; returns (before, after).

    The element index is reduced modulo the buffer length, so plans
    can draw indices without knowing vector sizes — both backends see
    the same length, hence the same element.
    """
    if buf.size == 0:
        return 0.0, 0.0
    idx = int(element) % buf.size
    view = buf.view(np.uint64)
    before = float(buf[idx])
    view[idx] ^= np.uint64(1) << np.uint64(int(bit))
    return before, float(buf[idx])


class FaultInjector:
    """Per-solve fault firing state; arm one per solve attempt."""

    def __init__(self, faults):
        self._by_site: dict[tuple[str, int], list] = {}
        for fault in faults:
            channel = KIND_CHANNEL.get(fault.kind)
            if channel is None:
                raise ValueError(
                    f"not a datapath fault kind: {fault.kind!r}")
            self._by_site.setdefault(
                (channel, fault.op_index), []).append(fault)
        self._counts = {"spmv": 0, "load": 0, "cvb": 0}
        #: One dict per fired fault: kind/site/op/element/bit plus the
        #: before/after float values of the corrupted element.
        self.events: list[dict] = []

    def __bool__(self) -> bool:
        return bool(self._by_site)

    # -- the three hook points ------------------------------------------
    def on_spmv(self, name: str, buf: np.ndarray) -> None:
        self._fire("spmv", name, buf)

    def on_load(self, name: str, buf: np.ndarray) -> None:
        self._fire("load", name, buf)

    def on_cvb(self, name: str, buf: np.ndarray) -> None:
        self._fire("cvb", name, buf)

    # -------------------------------------------------------------------
    def _fire(self, channel: str, name: str, buf: np.ndarray) -> None:
        index = self._counts[channel]
        self._counts[channel] = index + 1
        faults = self._by_site.get((channel, index))
        if not faults:
            return
        for fault in faults:
            before, after = flip_bit(buf, fault.element, fault.bit)
            self.events.append({
                "kind": fault.kind, "channel": channel, "site": name,
                "op_index": index,
                "element": int(fault.element) % max(buf.size, 1),
                "bit": int(fault.bit),
                "before": before, "after": after})


def poison_artifact(artifact) -> dict:
    """Corrupt a cached artifact's compiled cycle bookkeeping in place.

    Desyncs the compiled program's per-section analytic cost from its
    schedules (the kind of silent metadata rot a bit-flip in a cache
    produces) and clears the artifact's memoized ``verified`` flag so
    the next pre-solve verification actually re-checks — and rejects —
    it. Returns an event record for fault accounting.
    """
    compiled = artifact.compiled
    # Bump the main iteration-loop body, whatever the algorithm
    # ("admm_body" for ADMM programs, "pdhg_body" for PDQP ones).
    section = getattr(compiled, "body_section", "admm_body")
    before = int(compiled.section_cycles.get(section, 0))
    compiled.section_cycles[section] = before + 1
    artifact.verified = False
    return {"kind": "artifact-poison",
            "site": artifact.fingerprint.key, "section": section,
            "before": before, "after": before + 1}
