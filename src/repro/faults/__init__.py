"""Deterministic fault injection + end-to-end resilience.

The fault model and the machinery that survives it, spanning four
layers (see ``docs/FAULTS.md``):

* :mod:`repro.faults.plan` — seeded :class:`FaultPlan` schedules;
* :mod:`repro.faults.inject` — the :class:`FaultInjector` datapath
  hook shared bit-for-bit by both execution backends, plus artifact
  poisoning;
* :mod:`repro.faults.detect` — host-side KKT re-check that catches
  silently wrong solutions;
* :mod:`repro.faults.policy` — :class:`RecoveryPolicy` (accelerator
  checkpoint/rollback) and :class:`ResiliencePolicy` (serving retry /
  degrade / deadline);
* :mod:`repro.faults.breaker` — :class:`CircuitBreaker` for fleet
  routing health.

``python -m repro.faults`` runs the chaos replay: a skewed workload
under a nonzero plan, asserting the availability and
no-silent-corruption SLOs.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .detect import kkt_residuals, solution_ok
from .inject import FaultInjector, flip_bit, poison_artifact
from .plan import (EVERY_ATTEMPT, FAULT_KINDS, HW_KINDS, PROCESS_KINDS,
                   Fault, FaultPlan)
from .policy import RecoveryPolicy, ResiliencePolicy

__all__ = [
    "Fault", "FaultPlan", "FAULT_KINDS", "HW_KINDS", "PROCESS_KINDS",
    "EVERY_ATTEMPT",
    "FaultInjector", "flip_bit", "poison_artifact",
    "kkt_residuals", "solution_ok",
    "RecoveryPolicy", "ResiliencePolicy",
    "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN",
]
