"""Per-structure algorithm auto-selection (the ``algorithm="auto"`` policy).

The serving layer customizes an architecture per problem *structure*;
this module picks which algorithm to run on it. The heuristic uses
only cheap structural features (no factorization, no solve) and is
calibrated against measured accelerator cycles on the benchmark suite
(``benchmarks/test_solver_pdqp.py``):

* **Scale** — on large structured problems ADMM's per-outer-iteration
  PCG sweep runs to hundreds or thousands of inner iterations and
  dominates the cycle count; PDQP replaces it with a fixed handful of
  SpMVs on the raw ``P``/``A`` structures and wins 1.5–15x. Below the
  size floor either algorithm finishes in negligible cycles and the
  battle-tested ADMM path is kept.
* **Conditioning proxy** — the spread of the positive diagonal of
  ``P``. First-order PDHG iteration counts degrade with conditioning
  (step sizes shrink as ``1/lambda_max``) while ADMM's Krylov inner
  solver is far less sensitive, so an extreme spread keeps ADMM.
* **Quadratic density** — a dense ``P`` usually means significant
  off-diagonal spectral structure the diagonal proxy cannot see; the
  PCG path handles such spectra, PDHG stalls on them. Dense
  quadratics stay on ADMM.

Everything the gates do not confidently hand to PDQP defaults to ADMM
— the heuristic is deliberately conservative so that ``auto`` never
loses more than noise against the always-ADMM policy (a benchmark
acceptance gate, see ``benchmarks/test_solver_pdqp.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..qp import QProblem
from .algorithms import available_algorithms

__all__ = ["StructureFeatures", "structure_features", "choose_algorithm",
           "SIZE_THRESHOLD", "COND_PROXY_THRESHOLD", "P_DENSITY_THRESHOLD"]

#: Combined dimension ``n + m`` below which the problem is small enough
#: that ADMM is kept regardless of structure.
SIZE_THRESHOLD = 300
#: P-diagonal spread at or beyond which first-order PDHG is presumed to
#: stall and ADMM is kept.
COND_PROXY_THRESHOLD = 1e6
#: nnz(P) / n^2 density at or beyond which ``P`` counts as dense (hidden
#: off-diagonal spectrum) and ADMM is kept.
P_DENSITY_THRESHOLD = 0.25


@dataclass(frozen=True)
class StructureFeatures:
    """Cheap structural features driving algorithm selection."""

    n: int
    m: int
    nnz: int
    p_nnz: int
    #: nnz(P) / n^2 — dense quadratics hide off-diagonal spectrum from
    #: the diagonal conditioning proxy.
    p_density: float
    #: max/min of the positive diagonal of ``P`` (1.0 when empty) — a
    #: free stand-in for the conditioning PDHG step sizes pay for.
    cond_proxy: float


def structure_features(problem: QProblem) -> StructureFeatures:
    """Extract selection features from a problem (O(nnz), no solves)."""
    diag = problem.P.diagonal()
    positive = diag[diag > 0.0]
    if positive.size:
        cond_proxy = float(positive.max() / positive.min())
    else:
        cond_proxy = 1.0
    n = problem.n
    return StructureFeatures(n=n, m=problem.m,
                             nnz=problem.P.nnz + problem.A.nnz,
                             p_nnz=problem.P.nnz,
                             p_density=problem.P.nnz / max(n * n, 1),
                             cond_proxy=cond_proxy)


def choose_algorithm(problem: QProblem,
                     override: Optional[str] = None) -> str:
    """Pick ``"admm"`` or ``"pdqp"`` for this problem structure.

    ``override`` short-circuits the heuristic with an explicit
    algorithm name (anything but ``None``/``"auto"``); unknown names
    raise ``ValueError`` against the registry.
    """
    if override is not None and override != "auto":
        if override not in available_algorithms():
            raise ValueError(
                f"unknown algorithm {override!r}; available: "
                f"{', '.join(available_algorithms())} (or 'auto')")
        return override
    features = structure_features(problem)
    if features.n + features.m < SIZE_THRESHOLD:
        return "admm"
    if features.cond_proxy >= COND_PROXY_THRESHOLD:
        return "admm"
    if features.p_density >= P_DENSITY_THRESHOLD:
        return "admm"
    return "pdqp"
