"""Solver settings, mirroring OSQP's defaults where the paper relies on them."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OSQPSettings"]

#: Bounds on the ADMM step size, as in OSQP.
RHO_MIN = 1e-6
RHO_MAX = 1e6
#: Multiplier applied to rho on equality-constraint rows.
RHO_EQ_FACTOR = 1e3


@dataclass
class OSQPSettings:
    """Settings for :class:`repro.solver.OSQPSolver`.

    Defaults follow OSQP v1.0: ``alpha = 1.6``, ``sigma = 1e-6``,
    ``rho = 0.1`` with per-row adjustment for equality constraints.

    Attributes
    ----------
    linsys:
        ``"pcg"`` for the indirect backend the paper accelerates, or
        ``"ldl"`` for the direct QDLDL-style backend.
    scaling:
        Number of Ruiz equilibration iterations (0 disables scaling).
    check_termination:
        Residuals (and infeasibility certificates) are evaluated every
        this many iterations.
    adaptive_rho_interval:
        Iterations between step-size adaptations (0 disables).
    pcg_adaptive:
        Tie the inner PCG tolerance to the outer ADMM residuals
        (inexact-ADMM schedule, as cuOSQP does).
    polish:
        Attempt an active-set polish after convergence.
    """

    rho: float = 0.1
    sigma: float = 1e-6
    alpha: float = 1.6
    max_iter: int = 4000
    time_limit: float = 0.0  # seconds; 0 disables
    eps_abs: float = 1e-3
    eps_rel: float = 1e-3
    eps_prim_inf: float = 1e-4
    eps_dual_inf: float = 1e-4
    scaling: int = 10
    scaled_termination: bool = False
    check_termination: int = 25
    adaptive_rho: bool = True
    adaptive_rho_interval: int = 50
    adaptive_rho_tolerance: float = 5.0
    linsys: str = "pcg"
    ordering: str = "auto"
    pcg_eps: float = 1e-5
    pcg_eps_min: float = 1e-10
    pcg_eps_factor: float = 0.15
    pcg_decay: float = 0.35
    pcg_adaptive: bool = True
    pcg_max_iter: int = 5000
    polish: bool = False
    polish_delta: float = 1e-6
    polish_refine_iter: int = 3
    record_history: bool = False
    verbose: bool = False
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.rho <= 0:
            raise ValueError("rho must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if not 0.0 < self.alpha < 2.0:
            raise ValueError("alpha must lie in (0, 2)")
        if self.max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        if self.time_limit < 0:
            raise ValueError("time_limit must be non-negative")
        if self.eps_abs < 0 or self.eps_rel < 0:
            raise ValueError("tolerances must be non-negative")
        if self.eps_abs == 0 and self.eps_rel == 0:
            raise ValueError("eps_abs and eps_rel cannot both be zero")
        if self.check_termination < 1:
            raise ValueError("check_termination must be at least 1")
        if self.linsys not in ("pcg", "ldl"):
            raise ValueError("linsys must be 'pcg' or 'ldl'")
        if self.ordering not in ("auto", "natural", "mindeg"):
            raise ValueError("ordering must be 'auto', 'natural' or 'mindeg'")
        if self.scaling < 0:
            raise ValueError("scaling must be non-negative")
